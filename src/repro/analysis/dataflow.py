"""Static taint analysis over DEX bytecode.

One genuine engine, configurable along the axes where FlowDroid,
DroidSafe and HornDroid differ (see :mod:`repro.analysis.static_tools`):
flow sensitivity, field sensitivity, implicit flows, constant-string
reflection resolution, callback/thread/ICC modelling and array precision.

The engine is a context-insensitive, call-site-inlining abstract
interpreter: register states map registers to abstract values (taint tags
plus lightweight constants used for reflection and dispatch), heaps for
static/instance fields and ICC are global and monotonic, and the whole
entry-point schedule is iterated to a fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.sources_sinks import (
    SINK_SIGNATURES,
    SOURCE_SIGNATURES,
)
from repro.dex.instructions import Instruction
from repro.dex.structures import DexFile, MethodRef

Tags = frozenset
_EMPTY: Tags = frozenset()

_FRAMEWORK_PREFIXES = ("Ljava/", "Landroid/", "Ldalvik/", "Ljavax/")

_LIFECYCLE_ORDER = (
    "onCreate", "onStart", "onResume", "onRestart",
    "onPause", "onStop", "onDestroy",
)

_CALLBACK_NAMES = {
    "onClick", "onLongClick", "onCheckedChanged", "onItemClick",
    "onTouch", "onKey", "onFocusChange", "run", "handleMessage",
    "onLocationChanged", "doInBackground", "onPostExecute",
}


@dataclass(frozen=True)
class DetectedFlow:
    """One reported source-to-sink flow."""

    source_tag: str
    sink_signature: str
    sink_method: str
    sink_pc: int

    def brief(self) -> str:
        sink = self.sink_signature.split(";->")[1].split("(")[0]
        return f"{self.source_tag} -> {sink} in {self.sink_method}"


@dataclass(frozen=True)
class AnalysisConfig:
    """Capability profile of one static analysis tool."""

    name: str
    flow_sensitive: bool = True
    field_sensitive: bool = True
    implicit_flows: bool = False
    resolve_constant_reflection: bool = True
    handle_callbacks: bool = True
    model_threads: bool = True
    model_icc: bool = False
    precise_arrays: bool = False
    max_call_depth: int = 24
    max_block_visits: int = 40


@dataclass(frozen=True)
class AbsVal:
    """Abstract register value: taint plus constants for resolution."""

    tags: Tags = _EMPTY
    const_string: str | None = None
    concrete_type: str | None = None  # from new-instance / const-class
    reflect_class: str | None = None  # java.lang.Class constant
    reflect_method: tuple[str, str] | None = None  # (class desc, name)
    runnable_type: str | None = None  # Thread bound to a Runnable

    def with_tags(self, tags: Tags) -> "AbsVal":
        if tags == self.tags:
            return self
        return replace(self, tags=tags)

    def join(self, other: "AbsVal") -> "AbsVal":
        return AbsVal(
            self.tags | other.tags,
            self.const_string if self.const_string == other.const_string else None,
            self.concrete_type if self.concrete_type == other.concrete_type else None,
            self.reflect_class if self.reflect_class == other.reflect_class else None,
            self.reflect_method if self.reflect_method == other.reflect_method else None,
            self.runnable_type if self.runnable_type == other.runnable_type else None,
        )


_BOTTOM = AbsVal()


class _RegState:
    """Register file of abstract values plus the implicit-flow context."""

    def __init__(self, size: int, weak_updates: bool = False) -> None:
        self.regs: list[AbsVal] = [_BOTTOM] * size
        self.result: AbsVal = _BOTTOM  # pending invoke result
        self.implicit: Tags = _EMPTY
        # Flow-insensitive mode: assignments JOIN instead of replacing, so
        # statement order stops mattering (and kills stop killing).
        self.weak_updates = weak_updates

    def copy(self) -> "_RegState":
        clone = _RegState(0)
        clone.regs = list(self.regs)
        clone.result = self.result
        clone.implicit = self.implicit
        clone.weak_updates = self.weak_updates
        return clone

    def get(self, index: int) -> AbsVal:
        if 0 <= index < len(self.regs):
            return self.regs[index]
        return _BOTTOM

    def set(self, index: int, value: AbsVal) -> None:
        if 0 <= index < len(self.regs):
            if self.weak_updates:
                # Taint accumulates (no strong kills), but resolution
                # metadata (constants, types) tracks the latest write so
                # reflection / ICC stay resolvable under flow-insensitivity.
                joined = self.regs[index].join(value)
                value = replace(
                    joined,
                    const_string=value.const_string,
                    concrete_type=value.concrete_type,
                    reflect_class=value.reflect_class,
                    reflect_method=value.reflect_method,
                    runnable_type=value.runnable_type,
                )
            self.regs[index] = value

    def join(self, other: "_RegState") -> tuple["_RegState", bool]:
        changed = False
        joined = self.copy()
        for i, (a, b) in enumerate(zip(self.regs, other.regs)):
            merged = a.join(b)
            if merged != a:
                joined.regs[i] = merged
                changed = True
        merged_result = self.result.join(other.result)
        if merged_result != self.result:
            joined.result = merged_result
            changed = True
        implicit = self.implicit | other.implicit
        if implicit != self.implicit:
            joined.implicit = implicit
            changed = True
        return joined, changed


class StaticTaintAnalysis:
    """Whole-program analysis of one APK's visible DEX files."""

    def __init__(self, dex_files: list[DexFile], config: AnalysisConfig) -> None:
        self.config = config
        self.dex_files = dex_files
        # signature -> (dex, method_ref, code)
        self.methods: dict[str, tuple] = {}
        # descriptor -> (dex, class_def)
        self.classes: dict[str, tuple] = {}
        self.superclass: dict[str, str | None] = {}
        self.interfaces: dict[str, tuple[str, ...]] = {}
        for dex in dex_files:
            self._index_dex(dex)
        self.flows: set[DetectedFlow] = set()
        # Monotonic heaps.
        self.static_heap: dict[tuple[str, str], Tags] = {}
        self.field_heap: dict[object, Tags] = {}
        self.array_heap: dict[str, Tags] = {}  # per method+pc alloc key
        self.icc_heap: dict[str, Tags] = {}  # target activity -> intent taint
        self.thrown_tags: Tags = _EMPTY  # taint carried by thrown exceptions
        self._heap_version = 0
        self._summary_cache: dict = {}
        self._cfg_cache: dict[str, ControlFlowGraph] = {}

    # -- indexing ----------------------------------------------------------

    def _index_dex(self, dex: DexFile) -> None:
        for class_def in dex.class_defs:
            descriptor = dex.class_descriptor(class_def)
            self.classes.setdefault(descriptor, (dex, class_def))
            from repro.dex.constants import NO_INDEX

            self.superclass[descriptor] = (
                dex.type_descriptor(class_def.superclass_idx)
                if class_def.superclass_idx != NO_INDEX
                else None
            )
            self.interfaces[descriptor] = tuple(
                dex.type_descriptor(i) for i in class_def.interfaces
            )
            for method in class_def.all_methods():
                ref = dex.method_ref(method.method_idx)
                self.methods.setdefault(
                    ref.signature, (dex, ref, method.code)
                )

    def is_subtype(self, descriptor: str, ancestor: str) -> bool:
        walker: str | None = descriptor
        seen = set()
        while walker is not None and walker not in seen:
            if walker == ancestor:
                return True
            seen.add(walker)
            for iface in self.interfaces.get(walker, ()):
                if iface == ancestor or self.is_subtype(iface, ancestor):
                    return True
            walker = self.superclass.get(walker)
        return False

    def resolve_method(self, ref: MethodRef) -> list[str]:
        """Resolve a call to candidate app-method signatures (CHA-style)."""
        exact = ref.signature
        if exact in self.methods:
            return [exact]
        # Walk up the hierarchy of the named class.
        walker = self.superclass.get(ref.class_desc)
        seen = set()
        while walker is not None and walker not in seen:
            seen.add(walker)
            candidate = MethodRef(
                walker, ref.name, ref.param_descs, ref.return_desc
            ).signature
            if candidate in self.methods:
                return [candidate]
            walker = self.superclass.get(walker)
        # Subclass overrides (virtual dispatch over-approximation).
        candidates = []
        for descriptor in self.classes:
            if self.is_subtype(descriptor, ref.class_desc):
                candidate = MethodRef(
                    descriptor, ref.name, ref.param_descs, ref.return_desc
                ).signature
                if candidate in self.methods:
                    candidates.append(candidate)
        return candidates

    # -- entry points -----------------------------------------------------------

    def entry_points(self) -> list[str]:
        entries: list[str] = []
        activity_like = []
        for descriptor in sorted(self.classes):
            if self.is_framework_subtype(descriptor):
                activity_like.append(descriptor)
        for descriptor in activity_like:
            for name in _LIFECYCLE_ORDER:
                for signature, (dex, ref, code) in self.methods.items():
                    if (
                        ref.class_desc == descriptor
                        and ref.name == name
                        and code is not None
                    ):
                        entries.append(signature)
        if self.config.handle_callbacks:
            for signature, (dex, ref, code) in sorted(self.methods.items()):
                if (
                    ref.name in _CALLBACK_NAMES
                    and code is not None
                    and signature not in entries
                ):
                    entries.append(signature)
        # <clinit> of every class runs eventually.
        for signature, (dex, ref, code) in sorted(self.methods.items()):
            if ref.name == "<clinit>" and code is not None:
                entries.insert(0, signature)
        return entries

    def is_framework_subtype(self, descriptor: str) -> bool:
        walker: str | None = descriptor
        seen = set()
        while walker is not None and walker not in seen:
            seen.add(walker)
            parent = self.superclass.get(walker)
            if parent is None:
                return False
            if parent.startswith(("Landroid/app/", "Landroid/content/")):
                return True
            walker = parent
        return False

    # -- driver ----------------------------------------------------------------

    def run(self) -> list[DetectedFlow]:
        entries = self.entry_points()
        # A flow-sensitive analysis without cross-component feedback needs a
        # single pass over the (lifecycle-ordered) entry points; iterating
        # the global heap to a fixpoint is what makes order-insensitive
        # tools report flows against statement order.
        rounds = 1 if (self.config.flow_sensitive and not self.config.model_icc) else 4
        for _round in range(rounds):
            version = self._heap_version
            flow_count = len(self.flows)
            self._summary_cache.clear()
            for signature in entries:
                self._analyze(signature, (_EMPTY,) * 8, depth=0)
            if self._heap_version == version and len(self.flows) == flow_count:
                break
        return sorted(self.flows, key=lambda f: (f.source_tag, f.sink_signature,
                                                 f.sink_method, f.sink_pc))

    # -- heap helpers --------------------------------------------------------------

    def _heap_get(self, heap: dict, key) -> Tags:
        return heap.get(key, _EMPTY)

    def _heap_add(self, heap: dict, key, tags: Tags) -> None:
        if not tags:
            return
        current = heap.get(key, _EMPTY)
        merged = current | tags
        if merged != current:
            heap[key] = merged
            self._heap_version += 1

    def _field_key(self, class_desc: str, name: str):
        if self.config.field_sensitive:
            return (class_desc, name)
        return class_desc  # object-level blur: all fields share one cell

    # -- per-method analysis ----------------------------------------------------------

    def _analyze(self, signature: str, arg_tags: tuple, depth: int) -> Tags:
        """Analyze one method given argument taints; returns return-taint."""
        entry = self.methods.get(signature)
        if entry is None or entry[2] is None:
            return _EMPTY
        if depth > self.config.max_call_depth:
            return Tags().union(*arg_tags) if arg_tags else _EMPTY
        cache_key = (signature, arg_tags, self._heap_version)
        cached = self._summary_cache.get(cache_key)
        if cached is not None:
            return cached
        self._summary_cache[cache_key] = _EMPTY  # cycle breaker
        dex, ref, code = entry
        cfg = self._cfg_cache.get(signature)
        if cfg is None:
            cfg = ControlFlowGraph(code)
            self._cfg_cache[signature] = cfg
        result = self._interpret(signature, dex, ref, code, cfg, arg_tags, depth)
        self._summary_cache[(signature, arg_tags, self._heap_version)] = result
        return result

    def _initial_state(self, code, arg_tags: tuple) -> _RegState:
        state = _RegState(code.registers_size)
        base = code.registers_size - code.ins_size
        for i in range(code.ins_size):
            tags = arg_tags[i] if i < len(arg_tags) else _EMPTY
            state.set(base + i, AbsVal(tags))
        return state

    def _interpret(
        self, signature, dex, ref, code, cfg: ControlFlowGraph, arg_tags, depth
    ) -> Tags:
        if self.config.flow_sensitive:
            return self._interpret_flow_sensitive(
                signature, dex, code, cfg, arg_tags, depth
            )
        return self._interpret_flow_insensitive(
            signature, dex, code, cfg, arg_tags, depth
        )

    def _interpret_flow_sensitive(
        self, signature, dex, code, cfg, arg_tags, depth
    ) -> Tags:
        entry_block = cfg.entry_block()
        if entry_block is None:
            return _EMPTY
        in_states: dict[int, _RegState] = {
            entry_block.start_pc: self._initial_state(code, arg_tags)
        }
        visits: dict[int, int] = {}
        worklist = [entry_block.start_pc]
        return_tags: Tags = _EMPTY
        while worklist:
            start_pc = worklist.pop(0)
            visits[start_pc] = visits.get(start_pc, 0) + 1
            if visits[start_pc] > self.config.max_block_visits:
                continue
            block = cfg.blocks[start_pc]
            state = in_states[start_pc].copy()
            if block.is_handler:
                # The caught exception value is untainted by default.
                pass
            branch_implicit = _EMPTY
            for pc, ins in block.instructions:
                ret = self._transfer(signature, dex, state, pc, ins, depth)
                if ret is not None:
                    return_tags |= ret
                if ins.opcode.is_conditional_branch and self.config.implicit_flows:
                    cond_tags = _EMPTY
                    regs = (
                        ins.operands[:-1]
                        if ins.opcode.fmt in ("21t", "22t")
                        else ()
                    )
                    for reg in regs:
                        cond_tags |= state.get(reg).tags
                    branch_implicit = cond_tags
            for successor in block.successors:
                succ_state = state.copy()
                if branch_implicit:
                    succ_state.implicit = succ_state.implicit | branch_implicit
                existing = in_states.get(successor)
                if existing is None:
                    in_states[successor] = succ_state
                    worklist.append(successor)
                else:
                    joined, changed = existing.join(succ_state)
                    if changed:
                        in_states[successor] = joined
                        worklist.append(successor)
        return return_tags

    def _interpret_flow_insensitive(
        self, signature, dex, code, cfg, arg_tags, depth
    ) -> Tags:
        """Statement-bag fixpoint: order does not matter, joins everywhere."""
        state = self._initial_state(code, arg_tags)
        state.weak_updates = True
        return_tags: Tags = _EMPTY
        for _iteration in range(3):
            before = [v for v in state.regs]
            for block in cfg.reverse_postorder():
                for pc, ins in block.instructions:
                    ret = self._transfer(signature, dex, state, pc, ins, depth)
                    if ret is not None:
                        return_tags |= ret
            if state.regs == before:
                break
        return return_tags

    # -- instruction transfer ----------------------------------------------------------

    def _transfer(
        self, signature, dex, state: _RegState, pc: int, ins: Instruction, depth
    ) -> Tags | None:
        """Apply ``ins`` to ``state``; returns tags for return instructions."""
        name = ins.name
        ops = ins.operands
        implicit = state.implicit if self.config.implicit_flows else _EMPTY

        if name.startswith("move-result"):
            state.set(ops[0], state.result)
            return None
        if name == "move-exception":
            # Exceptional flow: the caught object may carry any taint that
            # reached a throw site (coarse single-cell model).
            state.set(ops[0], AbsVal(self.thrown_tags | implicit))
            return None
        if name.startswith("move"):
            state.set(ops[0], state.get(ops[1]))
            return None
        if name.startswith("return"):
            if name == "return-void":
                return implicit
            return state.get(ops[0]).tags | implicit
        if name in ("const-string", "const-string/jumbo"):
            state.set(ops[0], AbsVal(implicit, const_string=dex.string(ops[1])))
            return None
        if name == "const-class":
            state.set(
                ops[0],
                AbsVal(implicit, reflect_class=dex.type_descriptor(ops[1])),
            )
            return None
        if name.startswith("const"):
            state.set(ops[0], AbsVal(implicit))
            return None
        if name == "new-instance":
            state.set(
                ops[0],
                AbsVal(implicit, concrete_type=dex.type_descriptor(ops[1])),
            )
            return None
        if name == "new-array":
            state.set(ops[0], AbsVal(implicit))
            return None
        if name == "throw":
            tags = state.get(ops[0]).tags | implicit
            if tags and not tags <= self.thrown_tags:
                self.thrown_tags = self.thrown_tags | tags
                self._heap_version += 1
            return None
        if name in ("check-cast", "monitor-enter", "monitor-exit", "nop",
                    "fill-array-data", "packed-switch", "sparse-switch"):
            return None
        if name == "instance-of" or name == "array-length":
            state.set(ops[0], AbsVal(state.get(ops[1]).tags | implicit))
            return None
        if name.startswith("aget"):
            dst, array_reg, index_reg = ops
            key = self._array_key(signature, state, array_reg, index_reg)
            tags = self._heap_get(self.array_heap, key)
            # Register-carried array taint represents content that arrived
            # from elsewhere (parameters, aliases); it always flows.
            tags |= state.get(array_reg).tags
            if not self.config.precise_arrays:
                # Index-insensitive: the whole array is one taint cell
                # (classic FP source on ArrayAccess-style samples).
                tags |= self._heap_get(self.array_heap, ("any", signature, array_reg))
            state.set(dst, AbsVal(tags | implicit))
            return None
        if name.startswith("aput"):
            src, array_reg, index_reg = ops
            tags = state.get(src).tags | implicit
            key = self._array_key(signature, state, array_reg, index_reg)
            self._heap_add(self.array_heap, key, tags)
            self._heap_add(
                self.array_heap, ("any", signature, array_reg), tags
            )
            if not self.config.precise_arrays:
                # Blur the whole array object; the precise model keeps
                # content in per-index cells (and the "any" summary used at
                # call boundaries) instead.
                array_val = state.get(array_reg)
                state.set(array_reg, array_val.with_tags(array_val.tags | tags))
            return None
        if name.startswith("iget"):
            dst, obj_reg, field_idx = ops
            field_ref = dex.field_ref(field_idx)
            key = self._field_key(field_ref.class_desc, field_ref.name)
            tags = self._heap_get(self.field_heap, key)
            tags |= state.get(obj_reg).tags  # object-carried taint
            state.set(dst, AbsVal(tags | implicit))
            return None
        if name.startswith("iput"):
            src, obj_reg, field_idx = ops
            field_ref = dex.field_ref(field_idx)
            key = self._field_key(field_ref.class_desc, field_ref.name)
            tags = state.get(src).tags | implicit
            self._heap_add(self.field_heap, key, tags)
            if not self.config.field_sensitive:
                obj = state.get(obj_reg)
                state.set(obj_reg, obj.with_tags(obj.tags | tags))
            return None
        if name.startswith("sget"):
            dst, field_idx = ops
            field_ref = dex.field_ref(field_idx)
            tags = self._heap_get(
                self.static_heap, (field_ref.class_desc, field_ref.name)
            )
            state.set(dst, AbsVal(tags | implicit))
            return None
        if name.startswith("sput"):
            src, field_idx = ops
            field_ref = dex.field_ref(field_idx)
            self._heap_add(
                self.static_heap,
                (field_ref.class_desc, field_ref.name),
                state.get(src).tags | implicit,
            )
            return None
        if ins.opcode.is_invoke:
            self._transfer_invoke(signature, dex, state, pc, ins, depth)
            return None
        if name.startswith("filled-new-array"):
            tags = _EMPTY
            for reg in ins.invoke_registers:
                tags |= state.get(reg).tags
            state.result = AbsVal(tags | implicit)
            return None
        if ins.opcode.is_branch:
            return None
        # Arithmetic / compare / conversions: dst <- union of source regs.
        dst = ops[0]
        tags = implicit
        for reg in _source_registers(ins):
            tags |= state.get(reg).tags
        state.set(dst, AbsVal(tags))
        return None

    def _array_key(self, signature, state, array_reg, index_reg):
        if self.config.precise_arrays:
            # Integers lose constness through the transfer functions, so
            # the index register number is the (weak) precision proxy.
            return ("arr", signature, array_reg, index_reg)
        return ("arr", signature, array_reg)

    # -- invokes --------------------------------------------------------------------------

    def _transfer_invoke(self, signature, dex, state, pc, ins, depth) -> None:
        config = self.config
        ref = dex.method_ref(ins.pool_index)
        callee_sig = ref.signature
        regs = ins.invoke_registers
        is_static_call = "static" in ins.name
        arg_vals = [state.get(r) for r in regs]
        # Array contents travel with the array: union in the per-register
        # content summary so flows survive call boundaries (and sinks taking
        # whole arrays) even under the precise array model.
        array_content = [
            self._heap_get(self.array_heap, ("any", signature, r)) for r in regs
        ]
        arg_tags = (
            Tags().union(*(v.tags for v in arg_vals), *array_content)
            if arg_vals
            else _EMPTY
        )
        implicit = state.implicit if config.implicit_flows else _EMPTY

        # 1. Sinks.
        if callee_sig in SINK_SIGNATURES:
            for tag in sorted(arg_tags | implicit):
                self._report(tag, callee_sig, signature, pc)
            state.result = AbsVal(_EMPTY)
            return
        # 2. Sources.
        if callee_sig in SOURCE_SIGNATURES:
            tag = SOURCE_SIGNATURES[callee_sig]
            state.result = AbsVal(frozenset({tag}) | implicit)
            return
        # 3. Reflection.
        if ref.class_desc == "Ljava/lang/Class;" and ref.name == "forName":
            value = arg_vals[0] if arg_vals else _BOTTOM
            reflect_class = None
            if config.resolve_constant_reflection and value.const_string:
                reflect_class = "L" + value.const_string.replace(".", "/") + ";"
            state.result = AbsVal(arg_tags, reflect_class=reflect_class)
            return
        if ref.class_desc == "Ljava/lang/Class;" and ref.name in (
            "getMethod", "getDeclaredMethod"
        ):
            receiver = arg_vals[0] if arg_vals else _BOTTOM
            name_val = arg_vals[1] if len(arg_vals) > 1 else _BOTTOM
            reflect_method = None
            if (
                config.resolve_constant_reflection
                and receiver.reflect_class
                and name_val.const_string
            ):
                reflect_method = (receiver.reflect_class, name_val.const_string)
            state.result = AbsVal(arg_tags, reflect_method=reflect_method)
            return
        if (
            ref.class_desc == "Ljava/lang/reflect/Method;"
            and ref.name == "invoke"
        ):
            method_val = arg_vals[0] if arg_vals else _BOTTOM
            passed = (
                Tags().union(
                    *(v.tags for v in arg_vals[1:]), *array_content[1:]
                )
                if len(arg_vals) > 1
                else _EMPTY
            )
            if method_val.reflect_method is not None:
                target = self._find_by_name(*method_val.reflect_method)
                if target is not None:
                    param_count = self.methods[target][1].param_descs
                    callee_args = tuple([passed] * (len(param_count) + 1))
                    result = self._analyze(target, callee_args, depth + 1)
                    state.result = AbsVal(result | implicit)
                    return
            # Unresolvable reflection: the tool loses the flow (paper §IV-D).
            state.result = AbsVal(implicit)
            return
        # 4. Threads / runnables / handlers.
        if config.model_threads and self._maybe_thread(
            signature, ref, arg_vals, state, regs, depth
        ):
            state.result = AbsVal(implicit)
            return
        # 5. ICC: bind component classes onto intents, launch targets.
        if ref.class_desc == "Landroid/content/Intent;" and ref.name == "<init>":
            if (
                config.model_icc
                and len(arg_vals) > 2
                and arg_vals[2].reflect_class
                and regs
            ):
                receiver = state.get(regs[0])
                state.set(
                    regs[0],
                    replace(receiver, reflect_class=arg_vals[2].reflect_class),
                )
            state.result = AbsVal(implicit)
            return
        if config.model_icc and self._maybe_icc(ref, arg_vals):
            state.result = AbsVal(implicit)
            return
        # 6. Application bytecode.
        candidates = self.resolve_method(ref)
        app_candidates = [c for c in candidates if self.methods[c][2] is not None]
        if app_candidates:
            enriched = [
                v.with_tags(v.tags | content)
                for v, content in zip(arg_vals, array_content)
            ]
            word_tags = self._arg_word_tags(ref, enriched, is_static_call)
            result: Tags = _EMPTY
            for candidate in app_candidates[:4]:
                result |= self._analyze(candidate, word_tags, depth + 1)
            state.result = AbsVal(result | implicit)
            return
        # 7. Framework default taint wrapper: result and receiver get the
        # union of argument taints (string builders, collections, intents...).
        if ref.name == "getIntent" and not ref.param_descs:
            # ICC receive point: the intent that launched this component.
            tags = self._heap_get(self.icc_heap, signature.split("->")[0])
            state.result = AbsVal(tags | arg_tags | implicit)
            return
        # Widget text is modelled as a global field (the FlowDroid-style
        # "taint wrapper"): setText stores, getText loads.  Dynamic trackers
        # lack this model — the Button1/Button3 difference of Table IV.
        if ref.name == "setText" and len(arg_vals) > 1:
            self._heap_add(
                self.field_heap,
                self._field_key("Landroid/widget/TextView;", "text"),
                arg_vals[1].tags | implicit,
            )
            state.result = AbsVal(implicit)
            return
        if ref.name == "getText":
            tags = self._heap_get(
                self.field_heap,
                self._field_key("Landroid/widget/TextView;", "text"),
            )
            state.result = AbsVal(tags | implicit)
            return
        state.result = AbsVal(arg_tags | implicit)
        if not is_static_call and regs:
            receiver = state.get(regs[0])
            state.set(regs[0], receiver.with_tags(receiver.tags | arg_tags))

    def _arg_word_tags(self, ref: MethodRef, arg_vals, is_static_call) -> tuple:
        words: list[Tags] = []
        index = 0
        if not is_static_call:
            if arg_vals:
                words.append(arg_vals[0].tags)
            index = 1
        for param in ref.param_descs:
            value = arg_vals[index] if index < len(arg_vals) else _BOTTOM
            words.append(value.tags)
            index += 1
            if param in ("J", "D"):
                words.append(_EMPTY)
                index += 1
        return tuple(words)

    def _find_by_name(self, class_desc: str, method_name: str) -> str | None:
        walker: str | None = class_desc
        seen = set()
        while walker is not None and walker not in seen:
            seen.add(walker)
            for signature, (dex, ref, code) in self.methods.items():
                if ref.class_desc == walker and ref.name == method_name:
                    return signature
            walker = self.superclass.get(walker)
        return None

    def _maybe_thread(self, signature, ref, arg_vals, state, regs, depth) -> bool:
        if ref.class_desc == "Ljava/lang/Thread;" and ref.name == "<init>":
            if len(arg_vals) > 1 and arg_vals[1].concrete_type:
                receiver = state.get(regs[0])
                state.set(
                    regs[0],
                    replace(receiver, runnable_type=arg_vals[1].concrete_type),
                )
            return True
        if ref.name == "start" and ref.class_desc == "Ljava/lang/Thread;":
            receiver = arg_vals[0] if arg_vals else _BOTTOM
            target_type = receiver.runnable_type or receiver.concrete_type
            if target_type:
                run_sig = MethodRef(target_type, "run", (), "V").signature
                if run_sig in self.methods:
                    self._analyze(run_sig, (receiver.tags,), depth + 1)
            return True
        if ref.name in ("post", "postDelayed") and ref.class_desc == "Landroid/os/Handler;":
            if len(arg_vals) > 1 and arg_vals[1].concrete_type:
                run_sig = MethodRef(
                    arg_vals[1].concrete_type, "run", (), "V"
                ).signature
                if run_sig in self.methods:
                    self._analyze(run_sig, (arg_vals[1].tags,), depth + 1)
            return True
        if ref.name == "runOnUiThread":
            if len(arg_vals) > 1 and arg_vals[1].concrete_type:
                run_sig = MethodRef(
                    arg_vals[1].concrete_type, "run", (), "V"
                ).signature
                if run_sig in self.methods:
                    self._analyze(run_sig, (arg_vals[1].tags,), depth + 1)
            return True
        return False

    def _maybe_icc(self, ref: MethodRef, arg_vals) -> bool:
        if ref.name == "startActivity":
            if len(arg_vals) > 1:
                intent = arg_vals[1]
                if intent.reflect_class:
                    self._heap_add(self.icc_heap, intent.reflect_class, intent.tags)
            return True
        return False

    def _report(self, tag: str, sink_sig: str, method_sig: str, pc: int) -> None:
        flow = DetectedFlow(tag, sink_sig, method_sig, pc)
        if flow not in self.flows:
            self.flows.add(flow)
            self._heap_version += 1  # new knowledge: keep iterating



def _source_registers(ins: Instruction) -> tuple[int, ...]:
    """Source register operands of an arithmetic/compare/convert instruction.

    Literal operands (22b/22s/const formats) are NOT registers and must not
    leak taint from unrelated register numbers.
    """
    fmt = ins.opcode.fmt
    ops = ins.operands
    if fmt == "12x":
        if ins.name.endswith("/2addr"):
            return (ops[0], ops[1])
        return (ops[1],)
    if fmt == "23x":
        return (ops[1], ops[2])
    if fmt in ("22b", "22s"):
        return (ops[1],)
    if fmt in ("22x", "32x"):
        return (ops[1],)
    return ()
