"""Classification metrics: sensitivity, specificity and the paper's
F-Measure (Formula 1 of §V-B).

Scoring is sample-level, as in the paper's Tables II/III: a leaky sample
counts as a true positive when the tool reports at least one flow; a
benign sample with any reported flow is a false positive.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Confusion:
    """Sample-level confusion counts."""

    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0

    def record(self, is_leaky: bool, detected: bool) -> None:
        if is_leaky and detected:
            self.tp += 1
        elif is_leaky and not detected:
            self.fn += 1
        elif not is_leaky and detected:
            self.fp += 1
        else:
            self.tn += 1

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def sensitivity(self) -> float:
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def specificity(self) -> float:
        denominator = self.tn + self.fp
        return self.tn / denominator if denominator else 0.0

    @property
    def f_measure(self) -> float:
        """Formula (1): harmonic mean of sensitivity and specificity."""
        sens = self.sensitivity
        spec = self.specificity
        if sens + spec == 0:
            return 0.0
        return 2 * sens * spec / (sens + spec)

    def __add__(self, other: "Confusion") -> "Confusion":
        return Confusion(
            self.tp + other.tp,
            self.fp + other.fp,
            self.tn + other.tn,
            self.fn + other.fn,
        )

    def as_row(self) -> dict:
        return {
            "TP": self.tp,
            "FP": self.fp,
            "TN": self.tn,
            "FN": self.fn,
            "sensitivity": round(self.sensitivity, 3),
            "specificity": round(self.specificity, 3),
            "f_measure": round(self.f_measure, 3),
        }
