"""The three static analysis tool analogues.

Each is the same engine (:mod:`repro.analysis.dataflow`) under a
capability profile reproducing the documented strengths and weaknesses
of its namesake:

* **FlowDroid-like** — flow- and field-sensitive with a strong
  lifecycle/callback model (its headline feature), but no implicit
  flows and no inter-component (ICC) model (FlowDroid alone predates
  IccTA), constant-string reflection only.
* **DroidSafe-like** — flow-INsensitive (its analysis is based on a
  points-to abstraction without statement ordering) and field-blurred,
  but with the broadest Android model: ICC and threads included.  Finds
  more flows, reports more false positives.
* **HornDroid-like** — value-sensitive and flow-sensitive with implicit
  flow support (its Horn-clause encoding covers control dependencies)
  and more precise array handling.  Highest accuracy of the three.

None of them can see through packing, runtime self-modification,
dynamically loaded DEX in assets, or string-free reflection — those are
exactly the gaps DexLego closes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dataflow import AnalysisConfig, DetectedFlow, StaticTaintAnalysis
from repro.runtime.apk import Apk

FLOWDROID_LIKE = AnalysisConfig(
    name="FlowDroid",
    flow_sensitive=True,
    field_sensitive=True,
    implicit_flows=False,
    resolve_constant_reflection=True,
    handle_callbacks=True,
    model_threads=True,
    model_icc=False,
    precise_arrays=False,
)

DROIDSAFE_LIKE = AnalysisConfig(
    name="DroidSafe",
    flow_sensitive=False,
    field_sensitive=False,
    implicit_flows=False,
    resolve_constant_reflection=True,
    handle_callbacks=True,
    model_threads=True,
    model_icc=True,
    precise_arrays=False,
)

HORNDROID_LIKE = AnalysisConfig(
    name="HornDroid",
    flow_sensitive=True,
    field_sensitive=True,
    implicit_flows=True,
    resolve_constant_reflection=True,
    handle_callbacks=True,
    model_threads=True,
    model_icc=True,
    precise_arrays=True,
)

ALL_TOOLS: dict[str, AnalysisConfig] = {
    "FlowDroid": FLOWDROID_LIKE,
    "DroidSafe": DROIDSAFE_LIKE,
    "HornDroid": HORNDROID_LIKE,
}


@dataclass
class StaticAnalysisResult:
    """Outcome of one tool run on one APK."""

    tool: str
    apk_package: str
    flows: list[DetectedFlow]

    @property
    def detected(self) -> bool:
        return bool(self.flows)

    @property
    def tags(self) -> set[str]:
        return {flow.source_tag for flow in self.flows}


class StaticTool:
    """One configured static analysis tool."""

    def __init__(self, config: AnalysisConfig) -> None:
        self.config = config

    @property
    def name(self) -> str:
        return self.config.name

    def analyze(self, apk: Apk) -> StaticAnalysisResult:
        """Analyze the APK's visible DEX files (assets are invisible)."""
        analysis = StaticTaintAnalysis(list(apk.dex_files), self.config)
        flows = analysis.run()
        return StaticAnalysisResult(self.name, apk.package, flows)

    def analyze_dex(self, dex) -> StaticAnalysisResult:
        analysis = StaticTaintAnalysis([dex], self.config)
        return StaticAnalysisResult(self.name, "<dex>", analysis.run())


def flowdroid() -> StaticTool:
    return StaticTool(FLOWDROID_LIKE)


def droidsafe() -> StaticTool:
    return StaticTool(DROIDSAFE_LIKE)


def horndroid() -> StaticTool:
    return StaticTool(HORNDROID_LIKE)


def all_tools() -> list[StaticTool]:
    return [StaticTool(config) for config in ALL_TOOLS.values()]
