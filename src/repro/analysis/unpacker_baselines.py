"""DexHunter / AppSpear analogues: dump-based method-level unpackers.

Both run the packed app and dump each class's method bodies from memory
at a "right timing".  DexHunter forces dumping right after a class is
loaded and initialized; AppSpear walks the runtime's "reliable" class
structures at a chosen collection point.  Either way, the result keeps
**one snapshot per method** — which is precisely the paper's §IV-A
argument: for self-modifying code the dump holds either Code 2 *or*
Code 3, never both, and reflective calls stay reflective.

The snapshot source differs:

* DexHunter-like dumps ``loaded_code`` — the body as the class linker
  loaded it (before any runtime tampering).
* AppSpear-like dumps the **current** in-memory body at app exit —
  after the last tampering round (which Code 1 carefully restores, so
  the result is the same as-loaded code).

Both recover the original DEX of ordinary packed apps perfectly, which
is their documented success case (Table III: same results as analyzing
the original DEX).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dex.builder import DexBuilder
from repro.dex.opcodes import IndexKind
from repro.dex.reader import read_dex
from repro.dex.structures import DexFile, TryBlock
from repro.dex.verify import assert_valid
from repro.dex.writer import write_dex
from repro.errors import BudgetExceeded, VmCrash
from repro.runtime.apk import Apk
from repro.runtime.art import AndroidRuntime
from repro.runtime.device import NEXUS_5X, DeviceProfile
from repro.runtime.events import AppDriver
from repro.runtime.exceptions import VmThrow
from repro.runtime.klass import RuntimeClass


@dataclass
class UnpackResult:
    """Output of one dump-based unpacker run."""

    tool: str
    unpacked_apk: Apk
    dumped_dex: DexFile
    classes_dumped: int


class MethodLevelUnpacker:
    """Shared implementation; subclasses pick the snapshot source."""

    name = "method-level-unpacker"
    use_loaded_snapshot = True

    def __init__(self, device: DeviceProfile = NEXUS_5X, run_budget: int = 2_000_000):
        self.device = device
        self.run_budget = run_budget

    def unpack(self, apk: Apk, drive=None) -> UnpackResult:
        runtime = AndroidRuntime(self.device, max_steps=self.run_budget)
        driver = AppDriver(runtime, apk)
        drive = drive or (lambda d: d.run_standard_session())
        try:
            drive(driver)
        except (BudgetExceeded, VmCrash, VmThrow):
            pass
        self._force_load_everything(runtime)
        dumped = self._dump(runtime.class_linker.loaded_app_classes())
        dumped = read_dex(write_dex(dumped))
        assert_valid(dumped)
        unpacked = apk.clone()
        unpacked.dex_files = [dumped]
        return UnpackResult(
            self.name, unpacked, dumped,
            classes_dumped=len(dumped.class_defs),
        )

    def _force_load_everything(self, runtime: AndroidRuntime) -> None:
        """DexHunter's signature move: proactively load and initialize
        every class of every registered DEX so lazy/per-class unpacking
        cannot withhold bodies from the dump.  (This is also why dead
        classes — and their false-positive flows — survive in the dumped
        DEX, unlike in DexLego's executed-only reassembly.)"""
        linker = runtime.class_linker
        for dex in list(linker.app_dex_files):
            for class_def in dex.class_defs:
                descriptor = dex.class_descriptor(class_def)
                try:
                    klass = linker.lookup(descriptor)
                    linker.ensure_initialized(klass)
                except (VmThrow, VmCrash, BudgetExceeded):
                    continue

    # -- dumping --------------------------------------------------------------

    def _dump(self, classes: list[RuntimeClass]) -> DexFile:
        builder = DexBuilder()
        for klass in sorted(classes, key=lambda k: k.descriptor):
            self._dump_class(builder, klass)
        return builder.build()

    def _dump_class(self, builder: DexBuilder, klass: RuntimeClass) -> None:

        class_builder = builder.add_class(
            klass.descriptor,
            superclass=klass.superclass.descriptor if klass.superclass else None,
            access=klass.access_flags,
            interfaces=tuple(i.descriptor for i in klass.interfaces),
        )
        defaults = getattr(klass, "_static_value_defaults", {}) or {}
        for runtime_field in klass.fields.values():
            if runtime_field.is_static:
                initial = defaults.get(runtime_field.name)
                from repro.runtime.values import VmString

                if isinstance(initial, VmString):
                    initial = initial.value
                class_builder.add_static_field(
                    runtime_field.name,
                    runtime_field.type_desc,
                    runtime_field.access_flags,
                    initial,
                )
            else:
                class_builder.add_instance_field(
                    runtime_field.name,
                    runtime_field.type_desc,
                    runtime_field.access_flags,
                )
        for method in klass.methods.values():
            if method.declaring_class is not klass:
                continue
            mb = class_builder.method(
                method.ref.name,
                method.ref.return_desc,
                method.ref.param_descs,
                access=method.access_flags,
                native=method.is_native and method.code is None,
                abstract=method.is_abstract,
            )
            snapshot = (
                method.loaded_code if self.use_loaded_snapshot else method.code
            )
            if snapshot is None:
                mb.build()
                continue
            encoded = mb.build()
            encoded.code = self._transplant_code(
                builder.dex, klass.source_dex, snapshot
            )

    def _transplant_code(self, new_dex, source_dex, code):
        """Copy a code item, re-interning pool references into new_dex.

        Index widths are format-stable (16-bit fields), so patching in
        place preserves the exact instruction layout the dump captured.
        """
        clone = code.copy()
        for dex_pc, ins in clone.instructions():
            kind = ins.opcode.index_kind
            if kind is IndexKind.NONE:
                continue
            old_index = ins.pool_index
            if kind is IndexKind.STRING:
                new_index = new_dex.intern_string(source_dex.string(old_index))
            elif kind is IndexKind.TYPE:
                new_index = new_dex.intern_type(
                    source_dex.type_descriptor(old_index)
                )
            elif kind is IndexKind.FIELD:
                new_index = new_dex.intern_field_ref(
                    source_dex.field_ref(old_index)
                )
            else:
                new_index = new_dex.intern_method_ref(
                    source_dex.method_ref(old_index)
                )
            patched = ins.with_pool_index(new_index).encode()
            clone.insns[dex_pc : dex_pc + len(patched)] = patched
        clone.tries = [
            TryBlock(
                t.start_addr,
                t.insn_count,
                [
                    (new_dex.intern_type(source_dex.type_descriptor(type_idx)), addr)
                    for type_idx, addr in t.handlers
                ],
                t.catch_all,
            )
            for t in code.tries
        ]
        return clone


class DexHunterLike(MethodLevelUnpacker):
    """Dumps method bodies as loaded (right after class initialization)."""

    name = "DexHunter"
    use_loaded_snapshot = True


class AppSpearLike(MethodLevelUnpacker):
    """Dumps the current in-memory bodies at collection time (app exit)."""

    name = "AppSpear"
    use_loaded_snapshot = False
