"""Call-graph construction over DEX files (the Soot-framework analogue).

Used by RQ1: the paper builds complete call graphs of Calendar and
Contacts with Soot and checks that every edge of the original also
appears in the reassembled DEX.  Resolution is class-hierarchy based.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dex.structures import DexFile, MethodRef


@dataclass
class CallGraph:
    """Nodes are method signatures; edges are invoke relations."""

    nodes: set[str] = field(default_factory=set)
    edges: set[tuple[str, str]] = field(default_factory=set)

    def successors(self, signature: str) -> list[str]:
        return sorted(callee for caller, callee in self.edges if caller == signature)

    def edge_count(self) -> int:
        return len(self.edges)

    def app_edges(self, internal_only: bool = False) -> set[tuple[str, str]]:
        if not internal_only:
            return set(self.edges)
        return {
            (caller, callee)
            for caller, callee in self.edges
            if not callee.startswith(("Ljava/", "Landroid/", "Ldalvik/"))
        }


def build_call_graph(dex_files: list[DexFile] | DexFile) -> CallGraph:
    """Build the CHA call graph of one or more DEX files."""
    if isinstance(dex_files, DexFile):
        dex_files = [dex_files]
    graph = CallGraph()
    defined: dict[str, str] = {}  # signature -> class descriptor
    superclass: dict[str, str | None] = {}
    for dex in dex_files:
        from repro.dex.constants import NO_INDEX

        for class_def in dex.class_defs:
            descriptor = dex.class_descriptor(class_def)
            superclass[descriptor] = (
                dex.type_descriptor(class_def.superclass_idx)
                if class_def.superclass_idx != NO_INDEX
                else None
            )
            for method in class_def.all_methods():
                ref = dex.method_ref(method.method_idx)
                defined[ref.signature] = descriptor
                graph.nodes.add(ref.signature)
    for dex in dex_files:
        for class_def in dex.class_defs:
            for method in class_def.all_methods():
                if method.code is None:
                    continue
                caller = dex.method_ref(method.method_idx).signature
                for _pc, ins in method.code.instructions():
                    if not ins.opcode.is_invoke:
                        continue
                    callee_ref = dex.method_ref(ins.pool_index)
                    callee = _resolve(callee_ref, defined, superclass)
                    graph.edges.add((caller, callee))
    return graph


def _resolve(ref: MethodRef, defined: dict, superclass: dict) -> str:
    if ref.signature in defined:
        return ref.signature
    walker = superclass.get(ref.class_desc)
    seen = set()
    while walker is not None and walker not in seen:
        seen.add(walker)
        candidate = MethodRef(
            walker, ref.name, ref.param_descs, ref.return_desc
        ).signature
        if candidate in defined:
            return candidate
        walker = superclass.get(walker)
    return ref.signature  # framework / external target


def edges_preserved(original: CallGraph, revealed: CallGraph) -> float:
    """Fraction of the original graph's *exercised-class* edges present in
    the revealed graph.  Edges whose caller class is absent from the
    revealed DEX (never loaded at runtime) are out of scope."""
    revealed_callers = {caller.split(";->")[0] for caller, _ in revealed.edges}
    relevant = {
        (caller, callee)
        for caller, callee in original.edges
        if caller.split(";->")[0] in revealed_callers
    }
    if not relevant:
        return 1.0
    kept = sum(1 for edge in relevant if edge in revealed.edges)
    return kept / len(relevant)
