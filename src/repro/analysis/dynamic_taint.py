"""Dynamic taint trackers: TaintDroid and TaintART analogues.

Both attach to the runtime as listeners and propagate shadow taint
through register moves, arithmetic, fields, arrays and calls — honestly
reproducing the documented blind spots the paper exploits in Table IV:

* **no implicit flows** — control-dependent leaks are invisible to both
  (the paper's ImplicitFlow1 row);
* **framework widget laundering** — taint dies crossing framework widget
  storage (``TextView.setText``/``getText``), the Button1/Button3 rows;
* **storage laundering** — byte-for-byte file round trips drop tags
  (everyone misses the file-based flow of PrivateDataLeak3);
* **TaintDroid runs on an emulator** — emulator-detecting samples behave
  benignly under it (EmulatorDetection1), while TaintART runs on a real
  device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sources_sinks import SINK_SIGNATURES, SOURCE_SIGNATURES
from repro.runtime.device import EMULATOR, NEXUS_5X, DeviceProfile
from repro.runtime.hooks import RuntimeListener
from repro.runtime.values import VmArray, VmObject, VmString

Tags = frozenset
_EMPTY: Tags = frozenset()


@dataclass
class DynamicLeak:
    """One leak reported by a dynamic tracker."""

    source_tag: str
    sink_signature: str
    method_signature: str


@dataclass(frozen=True)
class TrackerProfile:
    """Capability switches of one dynamic taint tool."""

    name: str
    device: DeviceProfile
    track_implicit: bool = False
    widget_laundering: bool = True  # taint dies in framework widgets
    file_laundering: bool = True  # taint dies through file round trips


TAINTDROID_PROFILE = TrackerProfile(name="TaintDroid", device=EMULATOR)
TAINTART_PROFILE = TrackerProfile(name="TaintART", device=NEXUS_5X)

_WIDGET_STORE = {"setText", "putExtra"}
_WIDGET_LOAD = {"getText", "getStringExtra"}


class DynamicTaintTracker(RuntimeListener):
    """Shadow-register taint propagation inside the interpreter."""

    def __init__(self, profile: TrackerProfile) -> None:
        self.profile = profile
        self.leaks: list[DynamicLeak] = []
        self._shadow: dict[int, dict[int, Tags]] = {}  # frame id -> reg -> tags
        self._object_taint: dict[int, Tags] = {}  # object_id -> tags
        self._field_taint: dict[tuple[int, tuple], Tags] = {}
        self._static_taint: dict[tuple, Tags] = {}
        self._pending_result: Tags = _EMPTY
        self._pending_args: list[Tags] | None = None

    # -- helpers -----------------------------------------------------------

    def _regs(self, frame) -> dict[int, Tags]:
        return self._shadow.setdefault(id(frame), {})

    def _get(self, frame, reg: int) -> Tags:
        return self._regs(frame).get(reg, _EMPTY)

    def _set(self, frame, reg: int, tags: Tags) -> None:
        regs = self._regs(frame)
        if tags:
            regs[reg] = tags
        else:
            regs.pop(reg, None)

    def _value_tags(self, value) -> Tags:
        if isinstance(value, (VmObject, VmString, VmArray)):
            return self._object_taint.get(value.object_id, _EMPTY)
        return _EMPTY

    def _taint_value(self, value, tags: Tags) -> None:
        if tags and isinstance(value, (VmObject, VmString, VmArray)):
            current = self._object_taint.get(value.object_id, _EMPTY)
            self._object_taint[value.object_id] = current | tags

    # -- frame lifecycle ---------------------------------------------------------

    def on_method_enter(self, frame) -> None:
        regs = self._regs(frame)
        code = frame.method.code
        base = code.registers_size - code.ins_size
        if self._pending_args is not None:
            for i, tags in enumerate(self._pending_args):
                if tags:
                    regs[base + i] = tags
            self._pending_args = None
        # Values may carry object-level taint into the frame.
        for i in range(code.ins_size):
            value = frame.registers[base + i]
            tags = self._value_tags(value)
            if tags:
                regs[base + i] = regs.get(base + i, _EMPTY) | tags

    def on_method_exit(self, frame, result) -> None:
        self._shadow.pop(id(frame), None)

    def on_invoke(self, frame, dex_pc: int, callee, args: list) -> None:
        from repro.dex.instructions import Instruction

        ins = Instruction.decode_at(frame.code_units, dex_pc)
        regs = ins.invoke_registers
        arg_tags = [self._get(frame, r) for r in regs]
        callee_sig = callee.ref.signature

        if callee_sig in SINK_SIGNATURES:
            tags: Tags = _EMPTY
            for reg_tags, value in zip(arg_tags, args):
                tags |= reg_tags | self._value_tags(value)
            for tag in sorted(tags):
                self.leaks.append(
                    DynamicLeak(tag, callee_sig, frame.method.ref.signature)
                )
            self._pending_result = _EMPTY
            return
        if callee_sig in SOURCE_SIGNATURES:
            self._pending_result = frozenset({SOURCE_SIGNATURES[callee_sig]})
            return
        if callee.is_native:
            # Framework call: default propagation result <- union(args),
            # with the widget-laundering blind spot.
            union: Tags = _EMPTY
            for reg_tags, value in zip(arg_tags, args):
                union |= reg_tags | self._value_tags(value)
            if self.profile.widget_laundering and callee.ref.name in _WIDGET_STORE:
                self._pending_result = _EMPTY
                return
            if self.profile.widget_laundering and callee.ref.name in _WIDGET_LOAD:
                self._pending_result = _EMPTY
                return
            # Taint flows into mutable receivers (StringBuilder.append...)
            # and tags ride on the heap values themselves, as in TaintDroid
            # where tags live beside the objects.
            for reg_tags, value in zip(arg_tags, args):
                self._taint_value(value, reg_tags)
            if args and union:
                self._taint_value(args[0], union)
            self._pending_result = union
            return
        # Bytecode callee: hand argument taints to the next frame.
        words: list[Tags] = []
        index = 0
        if not callee.is_static:
            words.append(arg_tags[0] if arg_tags else _EMPTY)
            index = 1
        for param in callee.ref.param_descs:
            words.append(arg_tags[index] if index < len(arg_tags) else _EMPTY)
            index += 1
            if param in ("J", "D"):
                words.append(_EMPTY)
                index += 1
        self._pending_args = words
        self._pending_result = _EMPTY

    def on_return_value(self, frame, value) -> None:
        self._pending_result = self._pending_result | self._value_tags(value)

    # -- instruction-level propagation ---------------------------------------------

    def on_instruction(self, frame, dex_pc: int, ins) -> None:
        if frame.method.declaring_class.source_dex is None:
            return
        name = ins.name
        ops = ins.operands
        if name.startswith("move-result"):
            self._set(frame, ops[0], self._pending_result)
            return
        if name == "move-exception":
            self._set(frame, ops[0], _EMPTY)
            return
        if name.startswith("move"):
            self._set(frame, ops[0], self._get(frame, ops[1]))
            return
        if name.startswith("return") and name != "return-void":
            self._pending_result = self._get(frame, ops[0])
            value = frame.reg(ops[0])
            self._pending_result |= self._value_tags(value)
            return
        if name.startswith("const"):
            self._set(frame, ops[0], _EMPTY)
            return
        if name.startswith("aget"):
            array = frame.reg(ops[1])
            self._set(frame, ops[0], self._value_tags(array))
            return
        if name.startswith("aput"):
            array = frame.reg(ops[1])
            self._taint_value(array, self._get(frame, ops[0]))
            return
        if name.startswith("iget"):
            obj = frame.reg(ops[1])
            if isinstance(obj, VmObject):
                key = (obj.object_id, ops[2])
                self._set(frame, ops[0], self._field_taint.get(key, _EMPTY))
            return
        if name.startswith("iput"):
            obj = frame.reg(ops[1])
            if isinstance(obj, VmObject):
                key = (obj.object_id, ops[2])
                tags = self._get(frame, ops[0])
                value = frame.reg(ops[0])
                tags |= self._value_tags(value)
                if tags:
                    self._field_taint[key] = (
                        self._field_taint.get(key, _EMPTY) | tags
                    )
            return
        if name.startswith("sget"):
            self._set(frame, ops[0], self._static_taint.get(ops[1], _EMPTY))
            return
        if name.startswith("sput"):
            tags = self._get(frame, ops[0])
            if tags:
                self._static_taint[ops[1]] = (
                    self._static_taint.get(ops[1], _EMPTY) | tags
                )
            return
        if ins.opcode.is_invoke or ins.opcode.is_branch or name == "nop":
            return
        # Arithmetic / compare / conversions.
        from repro.analysis.dataflow import _source_registers

        tags: Tags = _EMPTY
        for reg in _source_registers(ins):
            tags |= self._get(frame, reg)
        if ops:
            self._set(frame, ops[0], tags)

    # -- results ----------------------------------------------------------------------

    def detected_tags(self) -> set[str]:
        return {leak.source_tag for leak in self.leaks}

    def leak_count(self) -> int:
        """Distinct (tag, sink) pairs observed leaking."""
        return len({(l.source_tag, l.sink_signature) for l in self.leaks})


def taintdroid() -> DynamicTaintTracker:
    return DynamicTaintTracker(TAINTDROID_PROFILE)


def taintart() -> DynamicTaintTracker:
    return DynamicTaintTracker(TAINTART_PROFILE)
