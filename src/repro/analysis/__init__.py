"""Analysis tools: static taint tools, dynamic trackers, unpacker
baselines, call graphs and metrics."""

from repro.analysis.callgraph import CallGraph, build_call_graph, edges_preserved
from repro.analysis.cfg import BasicBlock, ControlFlowGraph
from repro.analysis.dataflow import (
    AnalysisConfig,
    DetectedFlow,
    StaticTaintAnalysis,
)
from repro.analysis.dynamic_taint import (
    TAINTART_PROFILE,
    TAINTDROID_PROFILE,
    DynamicLeak,
    DynamicTaintTracker,
    TrackerProfile,
    taintart,
    taintdroid,
)
from repro.analysis.metrics import Confusion
from repro.analysis.sources_sinks import (
    SINK_SIGNATURES,
    SOURCE_SIGNATURES,
    is_sink,
    is_source,
)
from repro.analysis.static_tools import (
    ALL_TOOLS,
    DROIDSAFE_LIKE,
    FLOWDROID_LIKE,
    HORNDROID_LIKE,
    StaticAnalysisResult,
    StaticTool,
    all_tools,
    droidsafe,
    flowdroid,
    horndroid,
)
from repro.analysis.unpacker_baselines import (
    AppSpearLike,
    DexHunterLike,
    MethodLevelUnpacker,
    UnpackResult,
)

__all__ = [
    "ALL_TOOLS",
    "AnalysisConfig",
    "AppSpearLike",
    "BasicBlock",
    "CallGraph",
    "Confusion",
    "ControlFlowGraph",
    "DROIDSAFE_LIKE",
    "DetectedFlow",
    "DexHunterLike",
    "DynamicLeak",
    "DynamicTaintTracker",
    "FLOWDROID_LIKE",
    "HORNDROID_LIKE",
    "MethodLevelUnpacker",
    "SINK_SIGNATURES",
    "SOURCE_SIGNATURES",
    "StaticAnalysisResult",
    "StaticTaintAnalysis",
    "StaticTool",
    "TAINTART_PROFILE",
    "TAINTDROID_PROFILE",
    "TrackerProfile",
    "UnpackResult",
    "all_tools",
    "build_call_graph",
    "droidsafe",
    "edges_preserved",
    "flowdroid",
    "horndroid",
    "is_sink",
    "is_source",
    "taintart",
    "taintdroid",
]
