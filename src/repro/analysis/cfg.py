"""Control-flow graphs over DEX code items.

Used by the static taint engine (block worklists), the call-graph
builder, the coverage tracker (basic blocks stand in for source lines —
see DESIGN.md) and force execution's branch analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dex.instructions import Instruction
from repro.dex.payloads import decode_payload
from repro.dex.structures import CodeItem


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence."""

    start_pc: int
    instructions: list[tuple[int, Instruction]] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)  # start_pcs
    is_handler: bool = False

    @property
    def end_pc(self) -> int:
        if not self.instructions:
            return self.start_pc
        pc, ins = self.instructions[-1]
        return pc + ins.unit_count

    @property
    def terminator(self) -> Instruction | None:
        return self.instructions[-1][1] if self.instructions else None


class ControlFlowGraph:
    """CFG of one method body."""

    def __init__(self, code: CodeItem) -> None:
        self.code = code
        self.blocks: dict[int, BasicBlock] = {}
        self._build()

    def _build(self) -> None:
        instructions = self.code.instructions()
        if not instructions:
            return
        by_pc = dict(instructions)
        leaders: set[int] = {instructions[0][0]}
        # Branch targets and fall-throughs after terminators are leaders.
        for pc, ins in instructions:
            next_pc = pc + ins.unit_count
            if ins.opcode.is_branch and not ins.opcode.is_switch:
                leaders.add(pc + ins.branch_target)
                if ins.opcode.can_continue and next_pc in by_pc:
                    leaders.add(next_pc)
            elif ins.opcode.is_switch:
                payload = decode_payload(self.code.insns, pc + ins.branch_target)
                for rel in payload.targets:
                    leaders.add(pc + rel)
                if next_pc in by_pc:
                    leaders.add(next_pc)
            elif not ins.opcode.can_continue and next_pc in by_pc:
                leaders.add(next_pc)
        for try_block in self.code.tries:
            for _type_idx, addr in try_block.handlers:
                leaders.add(addr)
            if try_block.catch_all is not None:
                leaders.add(try_block.catch_all)

        current: BasicBlock | None = None
        for pc, ins in instructions:
            if pc in leaders or current is None:
                current = BasicBlock(pc)
                self.blocks[pc] = current
            current.instructions.append((pc, ins))
            if ins.opcode.is_branch or ins.opcode.is_switch or not ins.opcode.can_continue:
                current = None

        handler_pcs = set()
        for try_block in self.code.tries:
            for _type_idx, addr in try_block.handlers:
                handler_pcs.add(addr)
            if try_block.catch_all is not None:
                handler_pcs.add(try_block.catch_all)
        for block in self.blocks.values():
            if block.start_pc in handler_pcs:
                block.is_handler = True
            self._link(block, by_pc)

    def _link(self, block: BasicBlock, by_pc: dict) -> None:
        pc, ins = block.instructions[-1]
        next_pc = pc + ins.unit_count
        if ins.opcode.is_switch:
            payload = decode_payload(self.code.insns, pc + ins.branch_target)
            for rel in payload.targets:
                self._add_edge(block, pc + rel)
            self._add_edge(block, next_pc)
        elif ins.opcode.is_branch:
            self._add_edge(block, pc + ins.branch_target)
            if ins.opcode.can_continue:
                self._add_edge(block, next_pc)
        elif ins.opcode.can_continue:
            self._add_edge(block, next_pc)
        # Exception edges: any instruction in a try region may reach the
        # handlers of that region.
        for try_block in self.code.tries:
            if any(try_block.covers(p) for p, _ in block.instructions):
                for _type_idx, addr in try_block.handlers:
                    self._add_edge(block, addr)
                if try_block.catch_all is not None:
                    self._add_edge(block, try_block.catch_all)

    def _add_edge(self, block: BasicBlock, target_pc: int) -> None:
        if target_pc in self.blocks or any(
            target_pc == pc for b in self.blocks.values() for pc, _ in b.instructions
        ):
            # Resolve to the containing block's leader.
            leader = self._leader_of(target_pc)
            if leader is not None and leader not in block.successors:
                block.successors.append(leader)

    def _leader_of(self, pc: int) -> int | None:
        if pc in self.blocks:
            return pc
        for leader, block in self.blocks.items():
            if any(p == pc for p, _ in block.instructions):
                return leader
        return None

    # -- queries -------------------------------------------------------------

    def entry_block(self) -> BasicBlock | None:
        if not self.blocks:
            return None
        return self.blocks[min(self.blocks)]

    def block_count(self) -> int:
        return len(self.blocks)

    def conditional_branch_sites(self) -> list[int]:
        """dex_pcs of conditional branches (UCB candidates)."""
        out = []
        for block in self.blocks.values():
            pc, ins = block.instructions[-1]
            if ins.opcode.is_conditional_branch:
                out.append(pc)
        return out

    def reverse_postorder(self) -> list[BasicBlock]:
        entry = self.entry_block()
        if entry is None:
            return []
        seen: set[int] = set()
        order: list[BasicBlock] = []

        def visit(block: BasicBlock) -> None:
            if block.start_pc in seen:
                return
            seen.add(block.start_pc)
            for succ in block.successors:
                visit(self.blocks[succ])
            order.append(block)

        visit(entry)
        order.reverse()
        # Include unreachable-from-entry blocks (e.g. orphan handlers) last.
        for start_pc in sorted(self.blocks):
            if start_pc not in seen:
                order.append(self.blocks[start_pc])
                seen.add(start_pc)
        return order
