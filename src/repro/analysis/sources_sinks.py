"""Source/sink definitions for taint analysis.

Single source of truth: the framework's own tables in
:mod:`repro.runtime.android_api` (the runtime stamps provenance with the
same signatures the analyzers look for, so oracle and tools agree on
vocabulary while disagreeing — realistically — on reachability).
"""

from __future__ import annotations

from repro.runtime.android_api import SINK_SIGNATURES, SOURCE_SIGNATURES

__all__ = [
    "SINK_SIGNATURES",
    "SOURCE_SIGNATURES",
    "is_sink",
    "is_source",
    "sink_channel",
    "source_tag",
]


def is_source(signature: str) -> bool:
    return signature in SOURCE_SIGNATURES


def is_sink(signature: str) -> bool:
    return signature in SINK_SIGNATURES


def source_tag(signature: str) -> str | None:
    return SOURCE_SIGNATURES.get(signature)


def sink_channel(signature: str) -> str | None:
    return SINK_SIGNATURES.get(signature)
