"""DexLego reproduction: reassembleable bytecode extraction for aiding
static analysis (Ning & Zhang, DSN 2018).

Layer map (bottom-up):

* :mod:`repro.dex` — Dalvik Executable substrate: binary container,
  instruction set, assembler/disassembler, verifier.
* :mod:`repro.runtime` — the simulated Android Runtime: class linker,
  interpreter with instrumentation hooks, framework stubs, APKs.
* :mod:`repro.packers` — packing-platform analogues.
* :mod:`repro.core` — **DexLego itself**: just-in-time collection
  (Algorithm 1), collection trees, offline reassembly, reflection
  rewriting, force execution.
* :mod:`repro.analysis` — comparator tools: static taint analyses
  (FlowDroid/DroidSafe/HornDroid profiles), dynamic taint trackers
  (TaintDroid/TaintART profiles), method-level unpackers
  (DexHunter/AppSpear), call graphs, metrics.
* :mod:`repro.benchsuite` — the DroidBench analogue (134 samples) and
  procedurally generated application corpora.
* :mod:`repro.coverage` — coverage measurement, fuzzing, CF-Bench.
* :mod:`repro.service` — corpus-scale batch reveal: worker pools,
  content-addressed result cache, per-app outcomes, throughput stats.
* :mod:`repro.harness` — one experiment runner per paper table/figure.

Quickstart::

    from repro import DexLego, Apk, assemble, flowdroid

    apk = Apk("com.example", "Lcom/example/Main;", [assemble(SMALI)])
    revealed = DexLego().reveal(apk).revealed_apk
    print(flowdroid().analyze(revealed).flows)
"""

from repro.analysis import (
    droidsafe,
    flowdroid,
    horndroid,
    taintart,
    taintdroid,
)
from repro.core import (
    DexLego,
    DexLegoCollector,
    Pipeline,
    RevealConfig,
    RevealResult,
    resume_exploration,
    reveal_apk,
    reveal_from_archive,
)
from repro.dex import (
    DexBuilder,
    DexFile,
    assemble,
    disassemble,
    read_dex,
    verify_dex,
    write_dex,
)
from repro.errors import ReproError
from repro.runtime import AndroidRuntime, Apk, AppDriver, register_native_library
from repro.service import BatchRevealService, RevealJob, RevealOutcome

__version__ = "1.0.0"

__all__ = [
    "AndroidRuntime",
    "Apk",
    "AppDriver",
    "BatchRevealService",
    "DexBuilder",
    "DexFile",
    "DexLego",
    "DexLegoCollector",
    "Pipeline",
    "ReproError",
    "RevealConfig",
    "RevealJob",
    "RevealOutcome",
    "RevealResult",
    "assemble",
    "disassemble",
    "droidsafe",
    "flowdroid",
    "horndroid",
    "read_dex",
    "register_native_library",
    "resume_exploration",
    "reveal_apk",
    "reveal_from_archive",
    "taintart",
    "taintdroid",
    "verify_dex",
    "write_dex",
    "__version__",
]
