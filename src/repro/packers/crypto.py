"""Toy ciphers used by the packer analogues.

Real packing services use proprietary encryption; what matters for the
reproduction is that the payload bytes in the APK are *not* a parseable
DEX until runtime code transforms them.  Three distinct schemes give the
vendors different fingerprints.
"""

from __future__ import annotations


class XorCipher:
    """Repeating-key XOR (the classic cheap packer scheme)."""

    name = "xor"

    @staticmethod
    def encrypt(data: bytes, key: bytes) -> bytes:
        if not key:
            raise ValueError("empty key")
        return bytes(b ^ key[i % len(key)] for i, b in enumerate(data))

    decrypt = encrypt  # XOR is an involution


class RotateCipher:
    """Byte-wise add/rotate with a rolling counter."""

    name = "rotate"

    @staticmethod
    def encrypt(data: bytes, key: bytes) -> bytes:
        out = bytearray()
        for i, b in enumerate(data):
            k = key[i % len(key)] + (i & 0x0F)
            out.append((b + k) & 0xFF)
        return bytes(out)

    @staticmethod
    def decrypt(data: bytes, key: bytes) -> bytes:
        out = bytearray()
        for i, b in enumerate(data):
            k = key[i % len(key)] + (i & 0x0F)
            out.append((b - k) & 0xFF)
        return bytes(out)


class StreamCipher:
    """RC4-style keystream generator (simplified KSA/PRGA)."""

    name = "stream"

    @staticmethod
    def _keystream(key: bytes, length: int) -> bytes:
        state = list(range(256))
        j = 0
        for i in range(256):
            j = (j + state[i] + key[i % len(key)]) & 0xFF
            state[i], state[j] = state[j], state[i]
        out = bytearray()
        i = j = 0
        for _ in range(length):
            i = (i + 1) & 0xFF
            j = (j + state[i]) & 0xFF
            state[i], state[j] = state[j], state[i]
            out.append(state[(state[i] + state[j]) & 0xFF])
        return bytes(out)

    @classmethod
    def encrypt(cls, data: bytes, key: bytes) -> bytes:
        stream = cls._keystream(key, len(data))
        return bytes(a ^ b for a, b in zip(data, stream))

    decrypt = encrypt


CIPHERS = {cipher.name: cipher for cipher in (XorCipher, RotateCipher, StreamCipher)}
