"""Packing platform analogues (Table I's services)."""

from repro.packers.base import Packer, UnavailablePacker, all_packers, get_packer
from repro.packers.crypto import CIPHERS, RotateCipher, StreamCipher, XorCipher
from repro.packers.shell import ShellRecipe, pack_with_shell
from repro.packers.vendors import (
    ALL_PACKERS,
    UNAVAILABLE_PACKERS,
    WORKING_PACKERS,
    AlibabaPacker,
    APKProtectPacker,
    BaiduPacker,
    BangclePacker,
    IjiamiPacker,
    NetQinPacker,
    Qihoo360Packer,
    TencentPacker,
)

__all__ = [
    "ALL_PACKERS",
    "APKProtectPacker",
    "AlibabaPacker",
    "BaiduPacker",
    "BangclePacker",
    "CIPHERS",
    "IjiamiPacker",
    "NetQinPacker",
    "Packer",
    "Qihoo360Packer",
    "RotateCipher",
    "ShellRecipe",
    "StreamCipher",
    "TencentPacker",
    "UNAVAILABLE_PACKERS",
    "UnavailablePacker",
    "WORKING_PACKERS",
    "XorCipher",
    "all_packers",
    "get_packer",
    "pack_with_shell",
]
