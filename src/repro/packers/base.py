"""Packer interface and registry."""

from __future__ import annotations

from repro.errors import PackerUnavailable
from repro.runtime.apk import Apk


class Packer:
    """A packing service: APK in, protected APK out."""

    name = "packer"
    available = True

    def pack(self, apk: Apk) -> Apk:
        raise NotImplementedError


class UnavailablePacker(Packer):
    """A service that cannot be used (Table I's bottom rows)."""

    available = False
    reason = "service unavailable"

    def pack(self, apk: Apk) -> Apk:
        raise PackerUnavailable(self.name, self.reason)


_REGISTRY: dict[str, Packer] = {}


def register_packer(packer: Packer) -> Packer:
    _REGISTRY[packer.name] = packer
    return packer


def get_packer(name: str) -> Packer:
    return _REGISTRY[name]


def all_packers() -> list[Packer]:
    return list(_REGISTRY.values())
