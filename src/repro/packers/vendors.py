"""The packing-platform analogues of Table I.

Five working services with distinct strategies, three dead ones:

========  =========  ======================================  =========
service   cipher     strategy                                trigger
========  =========  ======================================  =========
360       XOR        whole-DEX shell                          onCreate
Alibaba   rotate     whole-DEX shell                          onCreate
Tencent   XOR        split payload (two encrypted halves)     onCreate
Baidu     stream     whole-DEX + emulator anti-debug          onCreate
Bangcle   stream     split payload, delayed unpack            onResume
NetQin    —          "The service is offline now"
APKProt.  —          "Unresponsive to packing requests"
Ijiami    —          "Samples are rejected by human agents"
========  =========  ======================================  =========
"""

from __future__ import annotations

from repro.packers.base import Packer, UnavailablePacker, register_packer
from repro.packers.crypto import RotateCipher, StreamCipher, XorCipher
from repro.packers.shell import ShellRecipe, pack_with_shell
from repro.runtime.apk import Apk


class _ShellPacker(Packer):
    """Shared vendor implementation parameterised by a recipe."""

    recipe_kwargs: dict = {}

    def pack(self, apk: Apk) -> Apk:
        recipe = ShellRecipe(vendor=self.name.lower(), **self.recipe_kwargs)
        return pack_with_shell(apk, recipe)


class Qihoo360Packer(_ShellPacker):
    name = "360"
    recipe_kwargs = dict(
        cipher=XorCipher,
        key=b"jiagu360",
        payload_name="qh360.bin",
        decoy_classes=5,
    )

    def pack(self, apk: Apk) -> Apk:
        recipe = ShellRecipe(vendor="qihoo", **self.recipe_kwargs)
        return pack_with_shell(apk, recipe)


class AlibabaPacker(_ShellPacker):
    name = "Alibaba"
    recipe_kwargs = dict(
        cipher=RotateCipher,
        key=b"aliprotect",
        payload_name="mobisec.dat",
        decoy_classes=4,
    )


class TencentPacker(_ShellPacker):
    name = "Tencent"
    recipe_kwargs = dict(
        cipher=XorCipher,
        key=b"legu-tencent",
        payload_name="tx_shell.dat",
        split_payload=True,
        decoy_classes=6,
    )


class BaiduPacker(_ShellPacker):
    name = "Baidu"
    recipe_kwargs = dict(
        cipher=StreamCipher,
        key=b"baidu-jiagu",
        payload_name="baiduprotect.bin",
        refuse_on_emulator=True,
        decoy_classes=3,
    )


class BangclePacker(_ShellPacker):
    name = "Bangcle"
    recipe_kwargs = dict(
        cipher=StreamCipher,
        key=b"secapk-bangcle",
        payload_name="bangcle_classes.jar",
        split_payload=True,
        unpack_trigger="onResume",
        decoy_classes=8,
    )


class NetQinPacker(UnavailablePacker):
    name = "NetQin"
    reason = "The service is offline now"


class APKProtectPacker(UnavailablePacker):
    name = "APKProtect"
    reason = "Unresponsive to packing requests"


class IjiamiPacker(UnavailablePacker):
    name = "Ijiami"
    reason = "Samples are rejected by human agents"


WORKING_PACKERS: list[Packer] = [
    register_packer(Qihoo360Packer()),
    register_packer(AlibabaPacker()),
    register_packer(TencentPacker()),
    register_packer(BaiduPacker()),
    register_packer(BangclePacker()),
]

UNAVAILABLE_PACKERS: list[Packer] = [
    register_packer(NetQinPacker()),
    register_packer(APKProtectPacker()),
    register_packer(IjiamiPacker()),
]

ALL_PACKERS: list[Packer] = WORKING_PACKERS + UNAVAILABLE_PACKERS
