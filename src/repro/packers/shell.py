"""Shell-DEX construction shared by all packer vendors.

A packed APK contains:

* a **shell DEX** — one stub activity whose lifecycle methods are native,
  plus a few decoy classes (real packed apps ship "only the classes
  needed to unpack", which is how §V-C's coarse screen finds them);
* the original ``classes.dex`` **encrypted in assets**;
* a native library that decrypts the payload at the configured trigger,
  registers it with the class linker (the same flow dynamic loading
  takes, §III-A), instantiates the real main activity and proxies every
  lifecycle callback to it.

The whole transformation round-trips through APK bytes, exactly like
uploading to a packing service.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dex.builder import DexBuilder
from repro.dex.reader import read_dex
from repro.dex.structures import DexFile
from repro.dex.writer import write_dex
from repro.errors import NativeCrash, PackerError
from repro.runtime.apk import Apk, register_native_library
from repro.runtime.values import VmObject

_LIFECYCLE_FORWARDS = ("onStart", "onResume", "onPause", "onStop", "onDestroy")


@dataclass(frozen=True)
class ShellRecipe:
    """What distinguishes one vendor's shell from another's."""

    vendor: str
    cipher: type
    key: bytes
    payload_name: str
    split_payload: bool = False  # two separately-encrypted halves
    unpack_trigger: str = "onCreate"  # or "onResume" (delayed unpack)
    refuse_on_emulator: bool = False
    decoy_classes: int = 4


def pack_with_shell(apk: Apk, recipe: ShellRecipe) -> Apk:
    """Produce the protected APK."""
    if not apk.dex_files:
        raise PackerError(f"{recipe.vendor}: APK has no DEX to protect")
    shell_package = f"Lcom/{recipe.vendor}/shell/StubActivity;"
    payload_assets = _encrypt_payload(apk, recipe)
    shell_dex = _build_shell_dex(shell_package, recipe)
    library = _register_shell_natives(apk, shell_package, recipe)

    # Original assets keep their names (the app reads them at runtime);
    # the encrypted payload uses a vendor-specific name that cannot clash.
    if any(name in apk.assets for name in payload_assets):
        raise PackerError(
            f"{recipe.vendor}: payload asset name collides with app assets"
        )
    packed = Apk(
        package=apk.package,
        main_activity=shell_package,
        dex_files=[shell_dex],
        assets={**apk.assets, **payload_assets},
        native_libraries=[library] + list(apk.native_libraries),
        activities=[shell_package] + list(apk.activities),
        version=apk.version,
    )
    # Round-trip through bytes: what the packing service returns.
    return Apk.from_bytes(packed.to_bytes())


def _encrypt_payload(apk: Apk, recipe: ShellRecipe) -> dict[str, bytes]:
    raw = write_dex(apk.primary_dex)
    if not recipe.split_payload:
        return {recipe.payload_name: recipe.cipher.encrypt(raw, recipe.key)}
    half = len(raw) // 2
    return {
        f"{recipe.payload_name}.0": recipe.cipher.encrypt(raw[:half], recipe.key),
        f"{recipe.payload_name}.1": recipe.cipher.encrypt(raw[half:], recipe.key),
    }


def _build_shell_dex(shell_class: str, recipe: ShellRecipe) -> DexFile:
    builder = DexBuilder()
    shell = builder.add_class(shell_class, superclass="Landroid/app/Activity;")
    shell.method("onCreate", "V", ("Landroid/os/Bundle;",), native=True).build()
    for name in _LIFECYCLE_FORWARDS:
        shell.method(name, "V", (), native=True).build()
    vendor_ns = shell_class.rsplit("/", 1)[0]
    for index in range(recipe.decoy_classes):
        decoy = builder.add_class(f"{vendor_ns}/Decoy{index};")
        mb = decoy.method("noise", "I", ("I",), locals_count=3)
        mb.raw("add-int/lit8", 0, mb.p(1), 13 + index)
        mb.raw("mul-int/lit8", 0, 0, 3)
        mb.ret(0)
        mb.build()
    return builder.build()


def _register_shell_natives(apk: Apk, shell_class: str, recipe: ShellRecipe) -> str:
    original_main = apk.main_activity

    def decrypt_payload(runtime) -> bytes:
        assets = runtime.current_apk.assets
        if recipe.split_payload:
            parts = [
                recipe.cipher.decrypt(assets[f"{recipe.payload_name}.{i}"], recipe.key)
                for i in range(2)
            ]
            return b"".join(parts)
        return recipe.cipher.decrypt(assets[recipe.payload_name], recipe.key)

    def ensure_unpacked(ctx, this) -> VmObject | None:
        if this.native_data is not None:
            return this.native_data
        runtime = ctx.runtime
        if recipe.refuse_on_emulator and runtime.device.is_emulator:
            raise NativeCrash(
                f"{recipe.vendor} shell: anti-debug check failed (emulator)"
            )
        dex = read_dex(decrypt_payload(runtime), strict=False)
        runtime.class_linker.register_dex(dex)
        klass = runtime.class_linker.lookup(original_main)
        runtime.class_linker.ensure_initialized(klass)
        real = VmObject(klass)
        this.native_data = real
        init = klass.find_method("<init>", (), "V")
        if init is not None and (init.code is not None or init.is_native):
            runtime.interpreter.execute(init, [real], caller=ctx.frame)
        return real

    def forward_event(ctx, this, name: str, args: list) -> None:
        real = this.native_data
        if real is None:
            return
        descs = ("Landroid/os/Bundle;",) if name == "onCreate" else ()
        method = real.klass.find_method(name, descs, "V")
        if method is not None and (method.code is not None or method.is_native):
            ctx.runtime.interpreter.execute(method, [real, *args], caller=ctx.frame)

    pending: dict[int, list] = {}  # shell object id -> deferred events

    def on_create(ctx, this, bundle):
        if recipe.unpack_trigger == "onCreate":
            ensure_unpacked(ctx, this)
            forward_event(ctx, this, "onCreate", [bundle])
        else:
            pending.setdefault(this.object_id, []).append(("onCreate", [bundle]))

    def make_forward(name: str):
        def impl(ctx, this):
            if this.native_data is None:
                if name == recipe.unpack_trigger:
                    ensure_unpacked(ctx, this)
                    for queued_name, queued_args in pending.pop(this.object_id, []):
                        forward_event(ctx, this, queued_name, queued_args)
                else:
                    pending.setdefault(this.object_id, []).append((name, []))
                    return
            forward_event(ctx, this, name, [])

        return impl

    impls = {f"{shell_class}->onCreate(Landroid/os/Bundle;)V": on_create}
    for name in _LIFECYCLE_FORWARDS:
        impls[f"{shell_class}->{name}()V"] = make_forward(name)
    library_name = f"lib{recipe.vendor}_{apk.package}"
    return register_native_library(library_name, impls)
