"""Corpus-scale family clustering over the reveal index.

Sits beside :mod:`repro.index` and consumes its digests; the core
pipeline never imports this package unless ``RevealConfig.cluster_dir``
is set (the same lazy, one-way dependency rule the index follows):

* :class:`~repro.cluster.lsh.LshIndex` — banded-prefix LSH over the
  TLSH-style fuzzy digests; ``nearest(digest, k)`` without scanning
  every method, with the exact linear scan kept as the
  ``exhaustive=True`` oracle
* :class:`~repro.cluster.profiles.AppProfile` — per-app normalized-
  digest sets with inverse-document-frequency library-stub weighting
* :func:`~repro.cluster.families.cluster_families` — union-find
  threshold clustering, deterministic regardless of insertion order
* :class:`~repro.cluster.store.ClusterStore` — the persistent store
  under ``RevealConfig.cluster_dir`` (format-versioned JSONL segments,
  atomic ``families.json`` snapshots)
* :class:`~repro.cluster.labels.AutoLabeler` — tags fresh reveals with
  family + nearest-known-method evidence from ``apps_with_norm``
  provenance; results surface in ``RevealOutcome.cluster_stats``,
  ``EVENT_CLUSTER`` bus events, gateway ``/v1/stats`` and the
  ``cluster`` CLI
"""

from repro.cluster.families import (
    DEFAULT_FAMILY_THRESHOLD,
    FamilyAssignment,
    cluster_families,
    family_id,
)
from repro.cluster.labels import (
    EVIDENCE_LIMIT,
    NEAR_MISS_MAX_DISTANCE,
    AutoLabeler,
)
from repro.cluster.lsh import DEFAULT_BANDS, LshIndex
from repro.cluster.profiles import (
    AppProfile,
    build_profiles,
    digest_weights,
    profile_similarity,
)
from repro.cluster.store import (
    CLUSTER_FORMAT_VERSION,
    ClusterMember,
    ClusterStore,
)

__all__ = [
    "AppProfile",
    "AutoLabeler",
    "CLUSTER_FORMAT_VERSION",
    "ClusterMember",
    "ClusterStore",
    "DEFAULT_BANDS",
    "DEFAULT_FAMILY_THRESHOLD",
    "EVIDENCE_LIMIT",
    "FamilyAssignment",
    "LshIndex",
    "NEAR_MISS_MAX_DISTANCE",
    "build_profiles",
    "cluster_families",
    "digest_weights",
    "family_id",
    "profile_similarity",
]
