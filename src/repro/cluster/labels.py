"""Auto-labeling fresh reveals from corpus provenance.

Given one reveal's executed method records, the labeler asks two
questions per method:

* **known** — does any *other* app contain this exact structure?
  (``apps_with_norm`` provenance, from the corpus index when one is
  attached, else from the cluster store's own members); each sighting
  votes its app's family with full weight.
* **near-miss** — failing that, is there a fuzzy neighbour within
  :data:`NEAR_MISS_MAX_DISTANCE`?  (the banded LSH ``nearest``); the
  closest neighbour votes its family with half weight — it is evidence
  of a *variant*, not an exact match.

The family with the most votes becomes the app's label, ties broken by
lexicographically smallest family id, and the strongest per-method
matches are kept as human-checkable evidence.  Everything about the
output is deterministic for a fixed store + index state.
"""

from __future__ import annotations

from repro.cluster.store import ClusterStore

#: Fuzzy distance at or below which a neighbour counts as a near-miss
#: variant.  Local edits land well under this; unrelated methods score
#: in the hundreds (see ``tests/index/test_fuzzy.py``).
NEAR_MISS_MAX_DISTANCE = 60

#: How many nearest-known-method evidence rows to keep per reveal.
EVIDENCE_LIMIT = 5


class AutoLabeler:
    """Tags one reveal with family + nearest-known-method evidence."""

    def __init__(
        self,
        store: ClusterStore,
        index=None,
        near_distance: int = NEAR_MISS_MAX_DISTANCE,
        evidence_limit: int = EVIDENCE_LIMIT,
    ) -> None:
        self.store = store
        self.index = index
        self.near_distance = near_distance
        self.evidence_limit = evidence_limit

    def _apps_with_norm(self, norm: str) -> list[str]:
        if self.index is not None:
            return self.index.apps_with_norm(norm)
        return self.store.apps_with_norm(norm)

    def label_records(self, records, app_id: str) -> dict:
        """Label one reveal's executed records; returns the stats dict.

        The returned dict is what flows into
        ``RevealOutcome.cluster_stats`` / ``BatchReport`` — plain JSON
        types only.
        """
        from repro.index.digests import method_digests

        votes: dict[str, float] = {}
        evidence: list[tuple[int, tuple, dict]] = []
        methods_total = methods_known = methods_near_miss = 0
        for record in records:
            methods_total += 1
            digests = method_digests(record)
            known_apps = []
            if digests.norm:
                known_apps = [a for a in self._apps_with_norm(digests.norm)
                              if a != app_id]
            if known_apps:
                methods_known += 1
                for known_app in known_apps:
                    family = self.store.family_of(known_app)
                    if family:
                        votes[family] = votes.get(family, 0.0) + 1.0
                nearest_app = known_apps[0]
                evidence.append((0, (record.class_desc, record.signature), {
                    "method": record.signature,
                    "match": record.signature,
                    "app_id": nearest_app,
                    "family": self.store.family_of(nearest_app),
                    "distance": 0,
                    "kind": "known",
                }))
                continue
            if not digests.fuzzy:
                continue
            neighbours = [
                (distance, member)
                for distance, member in self.store.nearest(digests.fuzzy,
                                                           limit=3)
                if distance <= self.near_distance
                and member.app_id != app_id
            ]
            if not neighbours:
                continue
            methods_near_miss += 1
            distance, member = neighbours[0]
            family = self.store.family_of(member.app_id)
            if family:
                votes[family] = votes.get(family, 0.0) + 0.5
            evidence.append((distance,
                             (record.class_desc, record.signature), {
                "method": record.signature,
                "match": member.method,
                "app_id": member.app_id,
                "family": family,
                "distance": distance,
                "kind": "near_miss",
            }))
        evidence.sort(key=lambda row: (row[0], row[1]))
        family = ""
        family_score = 0.0
        if votes:
            total = sum(votes.values())
            # Most votes wins; ties go to the smallest family id.
            family = min(votes, key=lambda fam: (-votes[fam], fam))
            family_score = round(votes[family] / total, 4)
        return {
            "family": family,
            "family_score": family_score,
            "methods_total": methods_total,
            "methods_known": methods_known,
            "methods_near_miss": methods_near_miss,
            "labels_assigned": methods_known + methods_near_miss,
            "nearest": [row for _, _, row in
                        evidence[:self.evidence_limit]],
        }
