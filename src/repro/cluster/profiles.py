"""App-level profile vectors over normalized method digests.

An app's profile is the *set* of its normalized (register- and
pool-insensitive) method digests.  Two apps repacked from the same
sources, or padded with the same SDK, share most of that set — which is
exactly what family clustering keys on.

The catch is library stubs: a digest present in *every* app of the
corpus (a packer's loader stub, `Object.<init>` boilerplate) says
nothing about kinship, while a digest shared by exactly two apps says a
lot.  :func:`digest_weights` therefore weights each digest by inverse
document frequency — ``1 / apps_containing_it`` — and
:func:`profile_similarity` is the weighted Jaccard over those weights.
A ubiquitous stub contributes ~1/N to both intersection and union; a
rare shared method contributes ~1/2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping


@dataclass(frozen=True)
class AppProfile:
    """One app's normalized-digest set."""

    app_id: str
    digests: frozenset[str]

    def __len__(self) -> int:
        return len(self.digests)


def build_profiles(entries: Iterable) -> dict[str, AppProfile]:
    """Profiles for every app seen in ``entries``.

    Accepts anything shaped like :class:`~repro.index.corpus.IndexEntry`
    or :class:`~repro.cluster.store.ClusterMember`: only ``kind``
    (``"method"``), ``app_id`` and ``norm`` are read.
    """
    digests_by_app: dict[str, set[str]] = {}
    for entry in entries:
        if entry.kind != "method" or not entry.norm:
            continue
        digests_by_app.setdefault(entry.app_id, set()).add(entry.norm)
    return {
        app_id: AppProfile(app_id=app_id, digests=frozenset(digests))
        for app_id, digests in digests_by_app.items()
    }


def digest_weights(profiles: Mapping[str, AppProfile]) -> dict[str, float]:
    """Inverse-document-frequency weight per digest: ``1 / app count``."""
    document_frequency: dict[str, int] = {}
    for profile in profiles.values():
        for digest in profile.digests:
            document_frequency[digest] = document_frequency.get(digest, 0) + 1
    return {digest: 1.0 / count
            for digest, count in document_frequency.items()}


def profile_similarity(
    a: AppProfile,
    b: AppProfile,
    weights: Mapping[str, float] | None = None,
) -> float:
    """Weighted Jaccard similarity of two profiles, in ``[0, 1]``.

    Without ``weights`` this is the plain Jaccard index; with the
    :func:`digest_weights` map, library stubs shared by the whole corpus
    barely count while rare shared methods dominate.
    """
    if not a.digests or not b.digests:
        return 0.0
    if weights is None:
        shared = len(a.digests & b.digests)
        union = len(a.digests | b.digests)
    else:
        shared = sum(weights.get(d, 1.0) for d in a.digests & b.digests)
        union = sum(weights.get(d, 1.0) for d in a.digests | b.digests)
    return shared / union if union else 0.0
