"""Threshold-agglomerative family clustering over app profiles.

Union-find over every app pair whose weighted-Jaccard profile
similarity reaches the threshold.  Union-find makes the partition a
pure function of the *edge set*: which pairs are similar depends only
on the profiles, never on the order apps were registered or on how many
workers wrote the index — so family assignments are byte-identical
across insertion orders and worker counts (asserted in
``tests/cluster/test_families.py``).

A family's identity is content-addressed too:
``fam-<sha256 of its sorted member list>[:12]``, so re-clustering the
same corpus reproduces the same ids, and growing a family changes its
id (it *is* a different set of apps).

Pair enumeration is pruned through an inverted digest→apps map: only
pairs sharing at least one normalized digest are scored, so disjoint
apps cost nothing.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Mapping

from repro.cluster.profiles import (
    AppProfile,
    digest_weights,
    profile_similarity,
)

#: Weighted-Jaccard similarity at or above which two apps are kin.
DEFAULT_FAMILY_THRESHOLD = 0.5


def family_id(members: list[str]) -> str:
    """Content-addressed family id over the sorted member list."""
    blob = "\n".join(sorted(members)).encode("utf-8")
    return "fam-" + hashlib.sha256(blob).hexdigest()[:12]


class _UnionFind:
    """Path-compressed union-find with deterministic roots (min app id)."""

    def __init__(self, members) -> None:
        self._parent = {member: member for member in members}

    def find(self, member: str) -> str:
        parent = self._parent
        root = member
        while parent[root] != root:
            root = parent[root]
        while parent[member] != root:
            parent[member], member = root, parent[member]
        return root

    def union(self, a: str, b: str) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        # Lexicographically smallest member wins the root, so the
        # forest shape never depends on union order.
        if root_b < root_a:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a

    def groups(self) -> list[list[str]]:
        grouped: dict[str, list[str]] = {}
        for member in self._parent:
            grouped.setdefault(self.find(member), []).append(member)
        return [sorted(group) for _, group in sorted(grouped.items())]


@dataclass(frozen=True)
class FamilyAssignment:
    """The deterministic output of one clustering run."""

    threshold: float
    families: tuple[dict, ...]     # {"family", "apps", "size"}, sorted
    app_to_family: dict = field(default_factory=dict)

    def family_of(self, app_id: str) -> str:
        """The app's family id, or ``""`` when it was never clustered."""
        return self.app_to_family.get(app_id, "")

    def to_dict(self) -> dict:
        return {
            "threshold": self.threshold,
            "families": [dict(f) for f in self.families],
        }

    def to_json(self) -> str:
        """Canonical serialization — byte-identical for equal partitions."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "FamilyAssignment":
        families = tuple(dict(f) for f in data.get("families", ()))
        app_to_family = {app: f["family"]
                         for f in families for app in f["apps"]}
        return cls(
            threshold=float(data.get("threshold", DEFAULT_FAMILY_THRESHOLD)),
            families=families,
            app_to_family=app_to_family,
        )


def cluster_families(
    profiles: Mapping[str, AppProfile],
    threshold: float = DEFAULT_FAMILY_THRESHOLD,
    weights: Mapping[str, float] | None = None,
) -> FamilyAssignment:
    """Partition apps into families; singletons stay their own family."""
    if weights is None:
        weights = digest_weights(profiles)
    union_find = _UnionFind(sorted(profiles))
    # Only app pairs sharing a digest can clear any positive threshold.
    apps_by_digest: dict[str, list[str]] = {}
    for app_id in sorted(profiles):
        for digest in profiles[app_id].digests:
            apps_by_digest.setdefault(digest, []).append(app_id)
    candidate_pairs = {
        pair
        for apps in apps_by_digest.values() if len(apps) > 1
        for pair in itertools.combinations(apps, 2)
    }
    for app_a, app_b in sorted(candidate_pairs):
        similarity = profile_similarity(
            profiles[app_a], profiles[app_b], weights)
        if similarity >= threshold:
            union_find.union(app_a, app_b)
    families = []
    app_to_family: dict[str, str] = {}
    for members in union_find.groups():
        fam = family_id(members)
        families.append({"family": fam, "apps": members,
                         "size": len(members)})
        for member in members:
            app_to_family[member] = fam
    families.sort(key=lambda f: (-f["size"], f["family"]))
    return FamilyAssignment(
        threshold=threshold,
        families=tuple(families),
        app_to_family=app_to_family,
    )
