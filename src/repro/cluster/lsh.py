"""Banded-prefix LSH over the TLSH-style fuzzy digests.

:func:`repro.index.fuzzy.fuzzy_digest` emits a 6-hex-char header plus a
64-hex-char body (2 bits per histogram bucket).  A local edit to a
method body moves only a handful of buckets across a quartile
boundary, so most of the body hex stays put.  :class:`LshIndex` exploits
that: the body is split into :data:`DEFAULT_BANDS` contiguous bands and
each item is filed under one bucket per band, keyed by the band's exact
hex substring.  Two digests within small edit distance of each other
almost surely agree on at least one band (16 bands of 4 chars: even
with 10% of bucket codes changed, P[some band matches] > 0.9999), so
``nearest`` only rescores the union of the query's band buckets with
the exact :func:`~repro.index.fuzzy.fuzzy_distance` instead of scanning
the whole corpus.

The header chars are deliberately *not* banded — checksum and length
band shift on any edit and would only dilute the buckets.

Exactness guarantees:

* every returned distance comes from ``fuzzy_distance`` (the LSH only
  prunes candidates, it never approximates scores);
* when the banded candidate set is smaller than the requested ``limit``
  (sparse corner of the corpus) the scan silently widens to every item,
  so small corpora behave exactly like the linear oracle;
* ``exhaustive=True`` bypasses the buckets entirely — the oracle the
  recall tests and benchmarks compare against.

Not thread-safe on its own: callers (:class:`~repro.index.corpus.CorpusIndex`,
:class:`~repro.cluster.store.ClusterStore`) mutate it under their own
locks.
"""

from __future__ import annotations

from typing import Callable

from repro.index.fuzzy import _DIGEST_LEN, fuzzy_distance

_HEADER_CHARS = 6
_BODY_CHARS = _DIGEST_LEN - _HEADER_CHARS

#: 16 bands x 4 hex chars over the 64-char body.
DEFAULT_BANDS = 16


class LshIndex:
    """In-memory banded buckets answering ``nearest(digest, k)``.

    Items are ``(digest, ref)`` pairs plus a caller-supplied *sort key*
    used to break distance ties deterministically regardless of
    insertion order.  Deduplication is the caller's job — the owning
    store already keeps a key set.
    """

    def __init__(self, bands: int = DEFAULT_BANDS) -> None:
        if bands <= 0 or _BODY_CHARS % bands:
            raise ValueError(
                f"bands must divide the {_BODY_CHARS}-char digest body, "
                f"got {bands}"
            )
        self.bands = bands
        self.band_width = _BODY_CHARS // bands
        #: (band index, band hex) -> item indexes filed there
        self._buckets: dict[tuple[int, str], list[int]] = {}
        self._items: list[tuple[str, object, tuple]] = []

    def __len__(self) -> int:
        return len(self._items)

    def _band_keys(self, digest: str) -> list[tuple[int, str]]:
        body = digest[_HEADER_CHARS:]
        width = self.band_width
        return [(band, body[band * width:(band + 1) * width])
                for band in range(self.bands)]

    def add(self, digest: str, ref: object, sort_key: tuple = ()) -> None:
        """File one item under its band buckets."""
        if len(digest) != _DIGEST_LEN:
            raise ValueError(
                f"fuzzy digests must be {_DIGEST_LEN} hex chars, "
                f"got {len(digest)}"
            )
        index = len(self._items)
        self._items.append((digest, ref, tuple(sort_key)))
        for key in self._band_keys(digest):
            self._buckets.setdefault(key, []).append(index)

    def candidates(self, digest: str) -> list[int]:
        """Item indexes sharing at least one band with ``digest``."""
        seen: set[int] = set()
        for key in self._band_keys(digest):
            seen.update(self._buckets.get(key, ()))
        return sorted(seen)

    def nearest(
        self,
        digest: str,
        limit: int = 5,
        exhaustive: bool = False,
        accept: Callable[[object], bool] | None = None,
    ) -> list[tuple[int, object]]:
        """The ``limit`` closest refs as ``(distance, ref)`` pairs.

        ``accept`` filters refs *before* the sparse-fallback decision,
        so a filtered-out bucket never masks a true neighbour.
        """
        if len(digest) != _DIGEST_LEN:
            raise ValueError(
                f"fuzzy digests must be {_DIGEST_LEN} hex chars, "
                f"got {len(digest)}"
            )
        if limit <= 0:
            return []
        items = self._items
        if exhaustive:
            pool = range(len(items))
        else:
            pool = self.candidates(digest)
            if accept is not None:
                pool = [i for i in pool if accept(items[i][1])]
            if len(pool) < limit:
                pool = range(len(items))  # sparse corner: match the oracle
        scored = []
        for i in pool:
            item_digest, ref, sort_key = items[i]
            if accept is not None and not accept(ref):
                continue
            scored.append((fuzzy_distance(digest, item_digest), sort_key,
                           ref))
        scored.sort(key=lambda entry: (entry[0], entry[1]))
        return [(distance, ref) for distance, _, ref in scored[:limit]]

    def stats(self) -> dict:
        buckets = self._buckets
        largest = max((len(v) for v in buckets.values()), default=0)
        return {
            "items": len(self._items),
            "bands": self.bands,
            "band_width": self.band_width,
            "buckets": len(buckets),
            "largest_bucket": largest,
        }
