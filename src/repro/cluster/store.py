"""Persistent cluster store: LSH members + family assignments on disk.

Mirrors :class:`~repro.index.corpus.CorpusIndex`'s writer model so any
number of threads, processes or hosts can share one directory:

* ``cluster_meta.json`` — ``{"version": 1}``; foreign versions are
  refused with a one-line ``ValueError`` (the archive/job-store guard
  pattern).
* ``segments/seg-<writer>.jsonl`` — append-only member journal, one
  segment per open store, merged at open; corrupt or truncated lines
  are skipped and counted.
* ``families.json`` — the latest
  :class:`~repro.cluster.families.FamilyAssignment` snapshot, written
  atomically in canonical form (sorted keys), so equal partitions are
  byte-identical files.

The banded :class:`~repro.cluster.lsh.LshIndex` is rebuilt in memory at
open — it is a pure function of the member set, so persisting the
buckets themselves would only add an invalidation problem.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import uuid
from dataclasses import asdict, dataclass

from repro import faults
from repro.cluster.families import (
    DEFAULT_FAMILY_THRESHOLD,
    FamilyAssignment,
    cluster_families,
)
from repro.cluster.lsh import LshIndex
from repro.cluster.profiles import build_profiles
from repro.index.digests import method_digests

CLUSTER_FORMAT_VERSION = 1

_META_FILE = "cluster_meta.json"
_SEGMENTS_DIR = "segments"
_FAMILIES_FILE = "families.json"

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ClusterMember:
    """One clustered artefact: a method's digests plus provenance."""

    kind: str                 # "method" | "class"
    app_id: str
    class_desc: str
    method: str | None        # full signature for methods, None for classes
    norm: str | None          # structural digest (methods only)
    fuzzy: str | None         # TLSH-style digest, None when too small

    def key(self) -> tuple:
        return (self.kind, self.app_id, self.class_desc, self.method,
                self.norm, self.fuzzy)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["v"] = CLUSTER_FORMAT_VERSION
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterMember":
        return cls(
            kind=data["kind"],
            app_id=data["app_id"],
            class_desc=data["class_desc"],
            method=data.get("method"),
            norm=data.get("norm"),
            fuzzy=data.get("fuzzy"),
        )

    @classmethod
    def from_index_entry(cls, entry) -> "ClusterMember":
        """Project an :class:`~repro.index.corpus.IndexEntry` down."""
        return cls(
            kind=entry.kind,
            app_id=entry.app_id,
            class_desc=entry.class_desc,
            method=entry.method,
            norm=entry.norm,
            fuzzy=entry.fuzzy,
        )


class ClusterStore:
    """Family clustering state rooted at ``RevealConfig.cluster_dir``.

    Thread-safe; multi-process safe through per-writer segments and the
    atomic ``families.json`` snapshot.
    """

    def __init__(self, root: str | os.PathLike, create: bool = True) -> None:
        self.root = os.fspath(root)
        self.segments_dir = os.path.join(self.root, _SEGMENTS_DIR)
        self._lock = threading.Lock()
        self._members: list[ClusterMember] = []
        self._keys: set[tuple] = set()
        self._by_norm: dict[str, list[ClusterMember]] = {}
        self._lsh = LshIndex()
        self._families: FamilyAssignment | None = None
        self.corrupt_lines = 0
        self._writer_id = uuid.uuid4().hex[:12]
        self._segment_handle = None
        self._open(create)

    # -- open / meta --------------------------------------------------------

    def _open(self, create: bool) -> None:
        meta_path = os.path.join(self.root, _META_FILE)
        if not os.path.isfile(meta_path):
            if not create:
                raise FileNotFoundError(
                    f"no cluster store at {self.root!r} "
                    f"(missing {_META_FILE})"
                )
            os.makedirs(self.segments_dir, exist_ok=True)
            tmp = meta_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump({"version": CLUSTER_FORMAT_VERSION}, fh)
            os.replace(tmp, meta_path)
            return
        try:
            with open(meta_path, encoding="utf-8") as fh:
                meta = json.load(fh)
        except ValueError as exc:
            raise ValueError(
                f"cluster store at {self.root!r} has an unreadable "
                f"{_META_FILE}: {exc}"
            ) from exc
        version = meta.get("version") if isinstance(meta, dict) else None
        if version != CLUSTER_FORMAT_VERSION:
            raise ValueError(
                f"cluster store at {self.root!r} has format version "
                f"{version!r}; this build supports {CLUSTER_FORMAT_VERSION}"
            )
        os.makedirs(self.segments_dir, exist_ok=True)
        self._load_segments()
        self._load_families()

    def _load_segments(self) -> None:
        for name in sorted(os.listdir(self.segments_dir)):
            if not name.endswith(".jsonl"):
                continue
            path = os.path.join(self.segments_dir, name)
            try:
                with open(path, encoding="utf-8") as fh:
                    for line in fh:
                        line = line.strip()
                        if line:
                            self._absorb_line(line)
            except OSError:
                self.corrupt_lines += 1

    def _absorb_line(self, line: str) -> None:
        try:
            data = json.loads(line)
        except ValueError:
            self.corrupt_lines += 1
            return
        if not isinstance(data, dict) \
                or data.get("v") != CLUSTER_FORMAT_VERSION \
                or "kind" not in data or "app_id" not in data \
                or "class_desc" not in data:
            self.corrupt_lines += 1
            return
        self._absorb(ClusterMember.from_dict(data))

    def _load_families(self) -> None:
        path = os.path.join(self.root, _FAMILIES_FILE)
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except OSError:
            return
        except ValueError:
            self.corrupt_lines += 1
            return
        if isinstance(data, dict):
            self._families = FamilyAssignment.from_dict(data)

    def _absorb(self, member: ClusterMember) -> bool:
        """Index a member in memory; False when it was a duplicate."""
        key = member.key()
        if key in self._keys:
            return False
        self._keys.add(key)
        self._members.append(member)
        if member.norm:
            self._by_norm.setdefault(member.norm, []).append(member)
        if member.fuzzy:
            self._lsh.add(member.fuzzy, member, sort_key=key)
        return True

    # -- writes -------------------------------------------------------------

    def _segment(self):
        if self._segment_handle is None:
            path = os.path.join(self.segments_dir,
                                f"seg-{self._writer_id}.jsonl")
            self._segment_handle = open(path, "a", encoding="utf-8")
        return self._segment_handle

    def add_member(self, member: ClusterMember) -> bool:
        """Absorb + journal one member; False when already present."""
        with self._lock:
            if not self._absorb(member):
                return False
            handle = self._segment()
            faults.append_line(
                handle, json.dumps(member.to_dict(), sort_keys=True) + "\n",
                site="cluster.segment.append")
            handle.flush()
            return True

    def register_index(self, index) -> int:
        """Absorb every digest-bearing entry of a corpus index."""
        added = 0
        for entry in index.entries():
            if not entry.norm and not entry.fuzzy:
                continue
            if self.add_member(ClusterMember.from_index_entry(entry)):
                added += 1
        return added

    def register_records(self, app_id: str, records) -> int:
        """Absorb one reveal's executed method records."""
        added = 0
        for record in records:
            digests = method_digests(record)
            if not digests.norm and not digests.fuzzy:
                continue
            member = ClusterMember(
                kind="method",
                app_id=app_id,
                class_desc=record.class_desc,
                method=record.signature,
                norm=digests.norm,
                fuzzy=digests.fuzzy,
            )
            if self.add_member(member):
                added += 1
        return added

    def close(self) -> None:
        with self._lock:
            if self._segment_handle is not None:
                self._segment_handle.close()
                self._segment_handle = None

    # -- queries ------------------------------------------------------------

    def members(self) -> list[ClusterMember]:
        with self._lock:
            return list(self._members)

    def members_with_norm(self, digest: str) -> list[ClusterMember]:
        with self._lock:
            return list(self._by_norm.get(digest, ()))

    def apps_with_norm(self, digest: str) -> list[str]:
        """'Which apps contain this method?' — by structural digest."""
        return sorted({m.app_id for m in self.members_with_norm(digest)})

    def nearest(self, fuzzy: str, limit: int = 5,
                exhaustive: bool = False) -> list[tuple[int, ClusterMember]]:
        """Nearest members of a fuzzy digest via the banded LSH."""
        with self._lock:
            return self._lsh.nearest(fuzzy, limit=limit,
                                     exhaustive=exhaustive)

    # -- families -----------------------------------------------------------

    def build_families(
        self,
        threshold: float = DEFAULT_FAMILY_THRESHOLD,
    ) -> FamilyAssignment:
        """(Re)cluster the member set and snapshot ``families.json``."""
        with self._lock:
            profiles = build_profiles(self._members)
        assignment = cluster_families(profiles, threshold=threshold)
        path = os.path.join(self.root, _FAMILIES_FILE)
        faults.atomic_write_text(path, assignment.to_json(),
                                 site="cluster.families.write",
                                 tmp=f"{path}.{self._writer_id}.tmp")
        with self._lock:
            self._families = assignment
        return assignment

    def families(self) -> FamilyAssignment | None:
        with self._lock:
            return self._families

    def family_of(self, app_id: str) -> str:
        """The app's family id, or ``""`` when unclustered."""
        with self._lock:
            if self._families is None:
                return ""
            return self._families.family_of(app_id)

    # -- stats / maintenance ------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            methods = sum(1 for m in self._members if m.kind == "method")
            apps = {m.app_id for m in self._members}
            families = self._families
            lsh_stats = self._lsh.stats()
        try:
            segments = sum(1 for name in os.listdir(self.segments_dir)
                           if name.endswith(".jsonl"))
        except OSError:
            segments = 0
        return {
            "version": CLUSTER_FORMAT_VERSION,
            "members": methods,
            "apps": len(apps),
            "families": len(families.families) if families else 0,
            "family_threshold": families.threshold if families else None,
            "segments": segments,
            "corrupt_lines": self.corrupt_lines,
            "lsh": lsh_stats,
        }

    def compact(self) -> int:
        """Fold every segment into one, atomically; returns member count."""
        with self._lock:
            if self._segment_handle is not None:
                self._segment_handle.close()
                self._segment_handle = None
            old = [name for name in os.listdir(self.segments_dir)
                   if name.endswith(".jsonl")]
            merged = f"seg-compact-{uuid.uuid4().hex[:12]}.jsonl"
            payload = "".join(
                json.dumps(member.to_dict(), sort_keys=True) + "\n"
                for member in self._members)
            faults.atomic_write_text(
                os.path.join(self.segments_dir, merged), payload,
                site="cluster.compact")
            for name in old:
                if name == merged:
                    continue
                try:
                    os.unlink(os.path.join(self.segments_dir, name))
                except OSError:
                    logger.warning("compact: could not remove segment %s",
                                   name)
            return len(self._members)
