"""Corpus-scale similarity index over revealed methods and classes.

At market scale most applications share the vast majority of their code
(ad SDKs, support libraries, packer stubs).  This package turns that
redundancy into lookups:

* :mod:`repro.index.fuzzy` — a pure-python TLSH-style locality digest
  for near-duplicate detection;
* :mod:`repro.index.digests` — per-method / per-class digest bundles
  combining the exact normalized-bytecode hash
  (:func:`repro.core.body_cache.exact_method_digest`), the
  register/pool-insensitive structural hash and the fuzzy digest;
* :mod:`repro.index.corpus` — :class:`CorpusIndex`, a persistent,
  shardable digest → ``(app, class, method, artifact)`` map with an
  attached body store that lets the reassembler *replay* an
  already-revealed method body instead of re-emitting it.

``repro.core`` never imports this package at module level; the pipeline
lazy-imports :class:`CorpusIndex` only when ``RevealConfig.index_dir``
is set, keeping the core → index dependency one-way and optional.
"""

from repro.index.corpus import INDEX_FORMAT_VERSION, CorpusIndex, IndexEntry
from repro.index.digests import MethodDigests, class_fuzzy_digest, method_digests
from repro.index.fuzzy import fuzzy_digest, fuzzy_distance

__all__ = [
    "INDEX_FORMAT_VERSION",
    "CorpusIndex",
    "IndexEntry",
    "MethodDigests",
    "method_digests",
    "class_fuzzy_digest",
    "fuzzy_digest",
    "fuzzy_distance",
]
