"""Pure-python TLSH-style locality-sensitive digest.

The real TLSH (Trend Micro Locality Sensitive Hash, as used by BANG's
dex ``UnpackParser``) is a C extension; this is a dependency-free
re-implementation of its shape for corpus similarity work:

* slide a 5-byte window over the input, hash six salted triplets per
  window into 128 buckets with a Pearson permutation table;
* split the bucket histogram at its quartiles and emit 2 bits per
  bucket (32-byte body);
* prefix a small header: a rolling Pearson checksum, the capped log of
  the input length and the two quartile ratios.

``fuzzy_distance`` scores two digests: 0 for identical input, small for
local edits, large for unrelated streams.  The exact bit layout is
*not* wire-compatible with TLSH — digests only compare against digests
produced by this module (the index stores its format version for that
reason).

Inputs shorter than :data:`MIN_FUZZY_LEN` bytes or with too little
bucket variety return ``None``: tiny methods hash to digests dominated
by the header, and every trivial getter would look like every other.
"""

from __future__ import annotations

MIN_FUZZY_LEN = 50
_WINDOW = 5
_BUCKETS = 128
_BODY_BYTES = _BUCKETS // 4  # 2 bits per bucket
#: header (checksum, log-length, q1/q2 ratio nibbles) -> 3 bytes of hex
_DIGEST_LEN = 6 + _BODY_BYTES * 2

# Six triplet selections per window, each with its own Pearson salt —
# mirrors TLSH's six (salt, byte, byte, byte) combinations.
_TRIPLETS = (
    (2, 0, 1, 2),
    (3, 0, 1, 3),
    (5, 0, 2, 3),
    (7, 0, 2, 4),
    (11, 0, 1, 4),
    (13, 0, 3, 4),
)


def _pearson_table() -> tuple[int, ...]:
    """A fixed pseudo-random permutation of 0..255 (seeded LCG shuffle)."""
    table = list(range(256))
    state = 1
    for i in range(255, 0, -1):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        j = state % (i + 1)
        table[i], table[j] = table[j], table[i]
    return tuple(table)


_TABLE = _pearson_table()


def _bucket_hash(salt: int, a: int, b: int, c: int) -> int:
    t = _TABLE
    return t[t[t[salt ^ a] ^ b] ^ c]


def _capped_log_length(length: int) -> int:
    value = 0
    threshold = 1
    while threshold < length and value < 255:
        threshold += max(1, threshold // 2)  # ~log base 1.5
        value += 1
    return value


def fuzzy_digest(data: bytes) -> str | None:
    """Digest ``data`` into a hex string, or ``None`` when too short."""
    if len(data) < MIN_FUZZY_LEN:
        return None
    buckets = [0] * _BUCKETS
    checksum = 0
    t = _TABLE
    for i in range(len(data) - _WINDOW + 1):
        w = data[i:i + _WINDOW]
        checksum = t[w[0] ^ checksum]
        for salt, x, y, z in _TRIPLETS:
            buckets[_bucket_hash(salt, w[x], w[y], w[z]) % _BUCKETS] += 1
    ordered = sorted(buckets)
    q1 = ordered[_BUCKETS // 4 - 1]
    q2 = ordered[_BUCKETS // 2 - 1]
    q3 = ordered[(_BUCKETS * 3) // 4 - 1]
    if q3 == 0:
        return None  # degenerate histogram: not enough variety to rank
    header = (
        f"{checksum:02x}"
        f"{_capped_log_length(len(data)):02x}"
        f"{(q1 * 100 // q3) % 16:x}"
        f"{(q2 * 100 // q3) % 16:x}"
    )
    body = bytearray(_BODY_BYTES)
    for index, count in enumerate(buckets):
        if count <= q1:
            bits = 0
        elif count <= q2:
            bits = 1
        elif count <= q3:
            bits = 2
        else:
            bits = 3
        body[index // 4] |= bits << ((index % 4) * 2)
    return header + body.hex()


def fuzzy_distance(a: str, b: str) -> int:
    """Distance between two digests from :func:`fuzzy_digest`.

    Sums the header differences (checksum mismatch, length-band and
    quartile-ratio deltas) with the per-bucket 2-bit differences; a
    bucket jumping across the full quartile range (difference of 3)
    costs 6, as in TLSH.
    """
    if len(a) != _DIGEST_LEN or len(b) != _DIGEST_LEN:
        raise ValueError(
            f"fuzzy digests must be {_DIGEST_LEN} hex chars, "
            f"got {len(a)} and {len(b)}"
        )
    distance = 0
    if a[0:2] != b[0:2]:
        distance += 1
    distance += abs(int(a[2:4], 16) - int(b[2:4], 16))
    for pos in (4, 5):
        delta = abs(int(a[pos], 16) - int(b[pos], 16))
        distance += min(delta, 16 - delta)
    body_a = bytes.fromhex(a[6:])
    body_b = bytes.fromhex(b[6:])
    for byte_a, byte_b in zip(body_a, body_b):
        if byte_a == byte_b:
            continue
        for shift in (0, 2, 4, 6):
            delta = abs(((byte_a >> shift) & 3) - ((byte_b >> shift) & 3))
            distance += 6 if delta == 3 else delta
    return distance
