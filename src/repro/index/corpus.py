"""Persistent, shardable corpus index: digest → (app, class, method).

On-disk layout (all JSON, human-greppable):

* ``index_meta.json`` — ``{"version": 1}``; foreign versions are
  refused with a one-line ``ValueError`` (the archive/job-store guard
  pattern).
* ``segments/seg-<writer>.jsonl`` — append-only entry journal.  Every
  :class:`CorpusIndex` instance appends to its *own* segment (a fresh
  writer id per open), so any number of threads, processes or hosts
  sharing the directory never contend on a file; readers merge all
  segments at open.  Corrupt or truncated lines are skipped (counted in
  :meth:`stats`) — a crashed writer costs at most its final line.
* ``bodies/<exact-digest>.json`` — recorded body op lists
  (:mod:`repro.core.body_cache`), written atomically, first writer
  wins (contents are digest-determined, so writers agree by
  construction).

:meth:`compact` folds all segments into one, atomically.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import uuid
from dataclasses import asdict, dataclass

from repro import faults
from repro.core.body_cache import BODY_OPS_VERSION, exact_method_digest
from repro.index.digests import MethodDigests, class_fuzzy_digest, method_digests
from repro.index.fuzzy import fuzzy_distance

INDEX_FORMAT_VERSION = 1

_META_FILE = "index_meta.json"
_SEGMENTS_DIR = "segments"
_BODIES_DIR = "bodies"

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class IndexEntry:
    """One indexed artefact: a revealed method or a whole class."""

    kind: str                 # "method" | "class"
    app_id: str
    class_desc: str
    method: str | None        # full signature for methods, None for classes
    exact: str | None         # exact body digest (methods only)
    norm: str | None          # structural digest (methods only)
    fuzzy: str | None         # TLSH-style digest, None when too small
    artifact: str | None = None  # reveal artifact ref (e.g. archive dir)

    def key(self) -> tuple:
        return (self.kind, self.app_id, self.class_desc, self.method,
                self.exact)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["v"] = INDEX_FORMAT_VERSION
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "IndexEntry":
        return cls(
            kind=data["kind"],
            app_id=data["app_id"],
            class_desc=data["class_desc"],
            method=data.get("method"),
            exact=data.get("exact"),
            norm=data.get("norm"),
            fuzzy=data.get("fuzzy"),
            artifact=data.get("artifact"),
        )


class CorpusIndex:
    """Digest-keyed corpus map plus the reassembler's body store.

    Thread-safe; multi-process safe through per-writer segments and
    atomic body writes.  Instances opened concurrently see each other's
    entries only from their open time — acceptable, because replaying a
    body and re-emitting it produce byte-identical output, so index
    visibility affects savings, never results.
    """

    def __init__(self, root: str | os.PathLike, create: bool = True) -> None:
        self.root = os.fspath(root)
        self.segments_dir = os.path.join(self.root, _SEGMENTS_DIR)
        self.bodies_dir = os.path.join(self.root, _BODIES_DIR)
        self._lock = threading.Lock()
        self._entries: list[IndexEntry] = []
        self._keys: set[tuple] = set()
        self._by_exact: dict[str, list[IndexEntry]] = {}
        self._by_norm: dict[str, list[IndexEntry]] = {}
        self._body_memo: dict[str, list] = {}
        self._lsh = None
        self.corrupt_lines = 0
        self._writer_id = uuid.uuid4().hex[:12]
        self._segment_handle = None
        self._open(create)

    # -- open / meta --------------------------------------------------------

    def _open(self, create: bool) -> None:
        meta_path = os.path.join(self.root, _META_FILE)
        if not os.path.isfile(meta_path):
            if not create:
                raise FileNotFoundError(
                    f"no corpus index at {self.root!r} "
                    f"(missing {_META_FILE})"
                )
            os.makedirs(self.segments_dir, exist_ok=True)
            os.makedirs(self.bodies_dir, exist_ok=True)
            tmp = meta_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump({"version": INDEX_FORMAT_VERSION}, fh)
            os.replace(tmp, meta_path)
            return
        try:
            with open(meta_path, encoding="utf-8") as fh:
                meta = json.load(fh)
        except ValueError as exc:
            raise ValueError(
                f"corpus index at {self.root!r} has an unreadable "
                f"{_META_FILE}: {exc}"
            ) from exc
        version = meta.get("version") if isinstance(meta, dict) else None
        if version != INDEX_FORMAT_VERSION:
            raise ValueError(
                f"corpus index at {self.root!r} has format version "
                f"{version!r}; this build supports {INDEX_FORMAT_VERSION}"
            )
        os.makedirs(self.segments_dir, exist_ok=True)
        os.makedirs(self.bodies_dir, exist_ok=True)
        self._load_segments()

    def _load_segments(self) -> None:
        for name in sorted(os.listdir(self.segments_dir)):
            if not name.endswith(".jsonl"):
                continue
            path = os.path.join(self.segments_dir, name)
            try:
                with open(path, encoding="utf-8") as fh:
                    for line in fh:
                        line = line.strip()
                        if not line:
                            continue
                        self._absorb_line(line)
            except OSError:
                self.corrupt_lines += 1

    def _absorb_line(self, line: str) -> None:
        try:
            data = json.loads(line)
        except ValueError:
            self.corrupt_lines += 1
            return
        if not isinstance(data, dict) \
                or data.get("v") != INDEX_FORMAT_VERSION \
                or "kind" not in data or "app_id" not in data \
                or "class_desc" not in data:
            self.corrupt_lines += 1
            return
        self._absorb(IndexEntry.from_dict(data))

    def _absorb(self, entry: IndexEntry) -> bool:
        """Index an entry in memory; False when it was a duplicate."""
        key = entry.key()
        if key in self._keys:
            return False
        self._keys.add(key)
        self._entries.append(entry)
        if entry.exact:
            self._by_exact.setdefault(entry.exact, []).append(entry)
        if entry.norm:
            self._by_norm.setdefault(entry.norm, []).append(entry)
        if entry.fuzzy and self._lsh is not None:
            self._lsh.add(entry.fuzzy, entry, sort_key=key)
        return True

    def attach_lsh(self, lsh=None):
        """Accelerate :meth:`nearest` with a banded LSH structure.

        Backfills ``lsh`` (a fresh
        :class:`~repro.cluster.lsh.LshIndex` when omitted) with every
        fuzzy-bearing entry already held, and feeds it on every later
        absorb.  Result shapes and ordering do not change — the LSH
        rescores its candidates with the exact distance and falls back
        to the full scan when buckets are sparse.
        """
        if lsh is None:
            from repro.cluster.lsh import LshIndex
            lsh = LshIndex()
        with self._lock:
            for entry in self._entries:
                if entry.fuzzy:
                    lsh.add(entry.fuzzy, entry, sort_key=entry.key())
            self._lsh = lsh
        return lsh

    # -- writes -------------------------------------------------------------

    def _segment(self):
        if self._segment_handle is None:
            path = os.path.join(self.segments_dir,
                                f"seg-{self._writer_id}.jsonl")
            self._segment_handle = open(path, "a", encoding="utf-8")
        return self._segment_handle

    def add_entry(self, entry: IndexEntry) -> bool:
        """Absorb + journal one entry; False when already present."""
        with self._lock:
            if not self._absorb(entry):
                return False
            handle = self._segment()
            faults.append_line(
                handle, json.dumps(entry.to_dict(), sort_keys=True) + "\n",
                site="index.segment.append")
            handle.flush()
            return True

    def close(self) -> None:
        with self._lock:
            if self._segment_handle is not None:
                self._segment_handle.close()
                self._segment_handle = None

    # -- body store (the reassembler's get_body/put_body duck type) ---------

    def _body_path(self, digest: str) -> str:
        return os.path.join(self.bodies_dir, f"{digest}.json")

    def get_body(self, digest: str) -> list | None:
        with self._lock:
            memo = self._body_memo.get(digest)
        if memo is not None:
            return memo
        try:
            with open(self._body_path(digest), encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) or doc.get("version") != BODY_OPS_VERSION:
            return None
        ops = doc.get("ops")
        if not isinstance(ops, list):
            return None
        with self._lock:
            self._body_memo.setdefault(digest, ops)
        return ops

    def put_body(self, digest: str, ops: list) -> None:
        with self._lock:
            self._body_memo.setdefault(digest, ops)
        path = self._body_path(digest)
        if os.path.exists(path):
            return  # first writer won; contents are digest-determined
        faults.atomic_write_json(
            path, {"version": BODY_OPS_VERSION, "ops": ops},
            site="index.body.write", tmp=f"{path}.{self._writer_id}.tmp")

    # -- registration (pipeline integration) --------------------------------

    def register_method(self, record, digests: MethodDigests, app_id: str,
                        artifact: str | None = None) -> bool:
        return self.add_entry(IndexEntry(
            kind="method",
            app_id=app_id,
            class_desc=record.class_desc,
            method=record.signature,
            exact=digests.exact,
            norm=digests.norm,
            fuzzy=digests.fuzzy,
            artifact=artifact,
        ))

    def register_class(self, class_desc: str, fuzzy: str | None,
                       app_id: str, artifact: str | None = None) -> bool:
        return self.add_entry(IndexEntry(
            kind="class",
            app_id=app_id,
            class_desc=class_desc,
            method=None,
            exact=None,
            norm=None,
            fuzzy=fuzzy,
            artifact=artifact,
        ))

    def register_reassembly(self, store, reassembler, app_id: str | None,
                            artifact: str | None = None) -> dict:
        """Index every executed method of one reveal; return savings stats.

        ``corpus_known`` counts methods whose exact digest the index
        already held (from any app) before this registration —
        the cross-app overlap this reveal could lean on.
        """
        app = app_id or "<unknown-app>"
        known = new = 0
        by_class: dict[str, list] = {}
        for record in store.executed_records():
            exact = reassembler.body_digests.get(record.signature)
            digests = method_digests(record, exact=exact)
            if self.lookup_exact(digests.exact):
                known += 1
            else:
                new += 1
            self.register_method(record, digests, app, artifact=artifact)
            by_class.setdefault(record.class_desc, []).append(record)
        for class_desc in sorted(by_class):
            self.register_class(
                class_desc, class_fuzzy_digest(by_class[class_desc]),
                app, artifact=artifact,
            )
        return {
            "bodies_emitted": reassembler.bodies_emitted,
            "bodies_replayed": reassembler.bodies_replayed,
            "corpus_known": known,
            "corpus_new": new,
        }

    def probe_method_store(self, store) -> dict:
        """Pre-reassembly probe: how much of this store the corpus knows."""
        executed = store.executed_records()
        known = sum(
            1 for record in executed
            if self.lookup_exact(exact_method_digest(record))
        )
        return {
            "index_known_methods": known,
            "index_executed_methods": len(executed),
        }

    # -- queries ------------------------------------------------------------

    def lookup_exact(self, digest: str) -> list[IndexEntry]:
        with self._lock:
            return list(self._by_exact.get(digest, ()))

    def lookup_norm(self, digest: str) -> list[IndexEntry]:
        with self._lock:
            return list(self._by_norm.get(digest, ()))

    def lookup_signature(self, signature: str) -> list[IndexEntry]:
        """Every (app, digest) sighting of one method signature."""
        with self._lock:
            return [e for e in self._entries
                    if e.kind == "method" and e.method == signature]

    def apps_with_norm(self, digest: str) -> list[str]:
        """'Which apps contain this method?' — by structural digest."""
        return sorted({entry.app_id for entry in self.lookup_norm(digest)})

    def nearest(self, fuzzy: str, limit: int = 5, kind: str | None = None,
                exhaustive: bool = False) -> list[tuple[int, IndexEntry]]:
        """Nearest neighbours of a fuzzy digest.

        Routed through the banded LSH when one is attached
        (:meth:`attach_lsh`); ``exhaustive=True`` — or no attached
        LSH — is the exact linear-scan oracle.  Both paths score with
        the same :func:`~repro.index.fuzzy.fuzzy_distance` and order by
        ``(distance, entry key)``, so they agree wherever they overlap.
        """
        with self._lock:
            lsh = self._lsh
            if lsh is not None and not exhaustive:
                if kind is None:
                    return lsh.nearest(fuzzy, limit=limit)
                return lsh.nearest(fuzzy, limit=limit,
                                   accept=lambda entry: entry.kind == kind)
            candidates = [e for e in self._entries if e.fuzzy
                          and (kind is None or e.kind == kind)]
        scored = [(fuzzy_distance(fuzzy, entry.fuzzy), entry)
                  for entry in candidates]
        scored.sort(key=lambda pair: (pair[0], pair[1].key()))
        return scored[:limit]

    def entries(self) -> list[IndexEntry]:
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict:
        with self._lock:
            methods = [e for e in self._entries if e.kind == "method"]
            classes = [e for e in self._entries if e.kind == "class"]
            apps = {e.app_id for e in self._entries}
            exact = len(self._by_exact)
            norm = len(self._by_norm)
        try:
            bodies = sum(1 for name in os.listdir(self.bodies_dir)
                         if name.endswith(".json"))
            segments = sum(1 for name in os.listdir(self.segments_dir)
                           if name.endswith(".jsonl"))
        except OSError:
            bodies = segments = 0
        return {
            "version": INDEX_FORMAT_VERSION,
            "methods": len(methods),
            "classes": len(classes),
            "apps": len(apps),
            "exact_digests": exact,
            "norm_digests": norm,
            "bodies": bodies,
            "segments": segments,
            "corrupt_lines": self.corrupt_lines,
        }

    # -- maintenance --------------------------------------------------------

    def compact(self) -> int:
        """Fold every segment into one, atomically; returns entry count.

        The merged segment is written to a temp file and renamed into
        place before the old segments are removed, so a reader opening
        mid-compaction sees either layout, never neither.
        """
        with self._lock:
            if self._segment_handle is not None:
                self._segment_handle.close()
                self._segment_handle = None
            old = [name for name in os.listdir(self.segments_dir)
                   if name.endswith(".jsonl")]
            merged = f"seg-compact-{uuid.uuid4().hex[:12]}.jsonl"
            payload = "".join(
                json.dumps(entry.to_dict(), sort_keys=True) + "\n"
                for entry in self._entries)
            faults.atomic_write_text(
                os.path.join(self.segments_dir, merged), payload,
                site="index.compact")
            for name in old:
                if name == merged:
                    continue
                try:
                    os.unlink(os.path.join(self.segments_dir, name))
                except OSError:
                    logger.warning("compact: could not remove segment %s",
                                   name)
            return len(self._entries)
