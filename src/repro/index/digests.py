"""Digest bundles: one method or class → (exact, structural, fuzzy).

Composes the three similarity levels the corpus index stores:

* ``exact`` — :func:`repro.core.body_cache.exact_method_digest`; equal
  digests mean the reassembler can *replay* the body byte-identically.
* ``norm`` — SHA-256 of the register/pool-insensitive token stream
  (:func:`repro.core.body_cache.normalized_method_tokens`); equal
  digests mean "same code modulo register allocation and constant-pool
  numbering" — the right key for "which apps contain this method?".
* ``fuzzy`` — TLSH-style locality digest (:mod:`repro.index.fuzzy`)
  over the same tokens minus positions; ``None`` for tiny methods.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.body_cache import (
    exact_method_digest,
    method_fuzzy_bytes,
    normalized_method_digest,
)
from repro.core.method_store import MethodRecord
from repro.index.fuzzy import fuzzy_digest


@dataclass(frozen=True)
class MethodDigests:
    """The three digest levels for one executed method."""

    exact: str
    norm: str
    fuzzy: str | None


def method_digests(record: MethodRecord,
                   exact: str | None = None) -> MethodDigests:
    """All three digests for one record.

    ``exact`` can be passed when the caller already computed it (the
    reassembler does, to key its body cache).
    """
    return MethodDigests(
        exact=exact or exact_method_digest(record),
        norm=normalized_method_digest(record),
        fuzzy=fuzzy_digest(method_fuzzy_bytes(record)),
    )


def class_fuzzy_digest(records: list[MethodRecord]) -> str | None:
    """Fuzzy digest of a whole class: member streams, signature order.

    Sorting by signature makes the digest independent of collection
    order, so the same class revealed in two apps digests identically.
    """
    blob = b"".join(
        method_fuzzy_bytes(record)
        for record in sorted(records, key=lambda r: r.signature)
    )
    return fuzzy_digest(blob)
