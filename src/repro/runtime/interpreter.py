"""The bytecode interpreter (``ExecuteSwitchImpl`` analogue).

Executes code-unit arrays instruction by instruction.  Three properties
matter for the reproduction:

* **Live fetch** — every step observes the method's mutable code-unit
  array, so in-place modification by native code changes behaviour
  exactly as on ART.
* **Instrumentation** — listeners observe the fetch (``on_instruction``),
  branches, invokes, class events and exceptions; DexLego's collector is
  just a listener.
* **Branch control** — a :class:`~repro.runtime.hooks.BranchController`
  may override conditional-branch outcomes (force execution), and the
  runtime can be configured to clear unhandled exceptions (§IV-E).

The execution loop runs a *fast path* that is observably identical to
naive decode-every-step interpretation (see docs/architecture.md,
"Interpreter fast path"):

* a **generation-tracked predecode cache** — decoded instructions are
  cached per :class:`~repro.dex.code_units.CodeUnits` array and trusted
  only while the array's mutation generation matches; on mismatch an
  entry is revalidated against the raw units it was decoded from, so
  self-modifying code invalidates exactly the entries it rewrote and
  live-fetch semantics are preserved bit for bit;
* **opcode-value dispatch** — handlers and per-format operand decoders
  are resolved once into 256-slot tables indexed by opcode byte instead
  of per-step string-mnemonic lookups;
* **zero-cost listener fan-out** — per-event listener tuples
  (:class:`~repro.runtime.hooks.ListenerFanout`) skip listeners that
  inherit the base-class no-ops, so uninstrumented runs pay a single
  falsy check per event.

Constructing the interpreter with ``fast_path=False`` yields the naive
reference loop (decode every step, string-mnemonic handler lookup); the
differential tests drive both over the self-modifying benchsuite and
assert identical traces.
"""

from __future__ import annotations

import math

from repro.dex.instructions import Instruction
from repro.dex.opcodes import OPCODE_TABLE
from repro.dex.payloads import decode_payload
from repro.dex.structures import MethodRef
from repro.errors import BudgetExceeded, ClassLinkError, VmCrash
from repro.runtime.exceptions import VmThrow, is_instance_of
from repro.runtime.frames import Frame
from repro.runtime.klass import RuntimeMethod
from repro.runtime.natives import NativeContext
from repro.runtime.values import (
    WIDE_HIGH,
    VmArray,
    VmClassObject,
    VmObject,
    VmString,
    i32,
    i64,
    java_div,
    java_rem,
)

_MAX_CALL_DEPTH = 200


class Interpreter:
    """Executes bytecode methods against a runtime.

    ``fast_path=False`` selects the naive reference loop: decode from
    the live array on every step, look handlers up by string mnemonic.
    It exists to *prove* the fast path changes nothing observable — the
    differential tests run both and compare traces and collector stats.
    """

    def __init__(self, runtime, fast_path: bool = True) -> None:
        self.runtime = runtime
        self.fast_path = fast_path

    # ------------------------------------------------------------------ entry

    def execute(self, method: RuntimeMethod, arg_words: list, caller=None):
        """Execute ``method`` with already-flattened argument words."""
        runtime = self.runtime
        if method.is_native or method.code is None:
            return self._call_native(method, arg_words, caller)
        frame = Frame(method, arg_words, caller)
        if frame.depth > _MAX_CALL_DEPTH:
            raise self._vm_exception(
                "Ljava/lang/StackOverflowError;", method.ref.signature
            )
        for listener in runtime.fanout.on_method_enter:
            listener.on_method_enter(frame)
        result = None
        try:
            result = self._run_frame(frame)
        finally:
            # Fires on abrupt (exception) exits too, with result None, so
            # collectors can finalize per-frame state.
            for listener in runtime.fanout.on_method_exit:
                listener.on_method_exit(frame, result)
        return result

    def invoke_signature(self, signature: str, args: list):
        """Resolve a full method signature and execute it with VM values."""
        from repro.dex.sigs import parse_method_signature

        ref = parse_method_signature(signature)
        klass = self.runtime.class_linker.lookup(ref.class_desc)
        method = klass.find_method(ref.name, ref.param_descs, ref.return_desc)
        if method is None:
            raise ClassLinkError(f"method not found: {signature}")
        self.runtime.class_linker.ensure_initialized(klass)
        return self.execute(method, self._flatten_args(method, args))

    def _flatten_args(self, method: RuntimeMethod, args: list) -> list:
        """Expand VM values into register words (wide values take two)."""
        words: list = []
        descs = method.ref.param_descs
        values = list(args)
        if not method.is_static:
            words.append(values.pop(0))
        for desc, value in zip(descs, values):
            words.append(value)
            if desc in ("J", "D"):
                words.append(WIDE_HIGH)
        return words

    # ----------------------------------------------------------------- natives

    def _call_native(self, method: RuntimeMethod, arg_words: list, caller):
        runtime = self.runtime
        impl = method.native_impl
        if impl is None:
            impl = runtime.natives.resolve(method.ref.signature)
        if impl is None:
            raise self._vm_exception(
                "Ljava/lang/UnsatisfiedLinkError;", method.ref.signature
            )
        args = self._words_to_values(method, arg_words)
        ctx = NativeContext(runtime, caller, method)
        for listener in runtime.fanout.on_native_call:
            listener.on_native_call(caller, method, args)
        return impl(ctx, *args)

    def _words_to_values(self, method: RuntimeMethod, arg_words: list) -> list:
        values: list = []
        index = 0
        if not method.is_static:
            values.append(arg_words[0])
            index = 1
        for desc in method.ref.param_descs:
            values.append(arg_words[index])
            index += 2 if desc in ("J", "D") else 1
        return values

    # -------------------------------------------------------------------- loop

    def _run_frame(self, frame: Frame):
        if not self.fast_path:
            return self._run_frame_reference(frame)
        runtime = self.runtime
        code = frame.code
        while True:
            pc = frame.dex_pc
            # Fetch stays live: the array object and its generation are
            # re-read every step, so any mutation (or wholesale
            # replacement) of code.insns is observed before this decode.
            # Checked before the step is counted so the fallback below
            # hands the reference loop an uncounted step.
            units = code.insns
            try:
                cache = units.predecode
                generation = units.generation
            except AttributeError:
                # A plain list was injected behind CodeItem's back: no
                # generation to trust, so decode every step instead.
                return self._run_frame_reference(frame)
            # consume_step() inlined: at ~13M calls per bench the call
            # overhead alone is measurable.  Semantics are identical —
            # steps/max_steps re-read every iteration (frames nest, and
            # reset_budget may zero the counter between runs).
            runtime.steps = steps = runtime.steps + 1
            if steps % 997 == 0:
                runtime.clock_ms += 1
            max_steps = runtime.max_steps
            if max_steps is not None and steps > max_steps:
                raise BudgetExceeded(
                    f"execution budget of {max_steps} steps exhausted"
                )
            entry = cache.get(pc)
            if entry is None or entry[0] != generation:
                try:
                    entry = _predecode(units, pc, generation, entry)
                except Exception as exc:
                    raise VmCrash(
                        f"undecodable instruction at "
                        f"{frame.method.ref.signature}@{pc}: {exc}"
                    ) from exc
                cache[pc] = entry
            ins = entry[1]
            handler = entry[2]
            # fanout is re-read per step, not hoisted: a listener
            # attached mid-frame (add_listener swaps the fanout object)
            # must observe the very next fetch, as on the naive loop.
            listeners = runtime.fanout.on_instruction
            if listeners:
                for listener in listeners:
                    listener.on_instruction(frame, pc, ins)
            if handler is None:
                raise VmCrash(f"no handler for opcode {ins.name}")
            try:
                outcome = handler(self, frame, pc, ins)
            except VmThrow as thrown:
                outcome = self._handle_throw(frame, pc, ins, thrown)
                if outcome is _UNWIND:
                    raise
            if outcome is None:
                frame.dex_pc = pc + entry[3]
            elif isinstance(outcome, int):
                frame.dex_pc = outcome
            else:  # ("return", value)
                return outcome[1]

    def _run_frame_reference(self, frame: Frame):
        """Naive loop: decode from the live array on every single step
        and dispatch by string mnemonic.  The behavioural baseline the
        fast path is differentially tested against."""
        runtime = self.runtime
        while True:
            pc = frame.dex_pc
            runtime.consume_step()
            try:
                ins = Instruction.decode_at(frame.code_units, pc)
            except Exception as exc:
                raise VmCrash(
                    f"undecodable instruction at {frame.method.ref.signature}"
                    f"@{pc}: {exc}"
                ) from exc
            for listener in runtime.fanout.on_instruction:
                listener.on_instruction(frame, pc, ins)
            try:
                outcome = self._dispatch(frame, pc, ins)
            except VmThrow as thrown:
                outcome = self._handle_throw(frame, pc, ins, thrown)
                if outcome is _UNWIND:
                    raise
            if outcome is None:
                frame.dex_pc = pc + ins.unit_count
            elif isinstance(outcome, int):
                frame.dex_pc = outcome
            else:  # ("return", value)
                return outcome[1]

    def _handle_throw(self, frame: Frame, pc: int, ins: Instruction, thrown: VmThrow):
        runtime = self.runtime
        fanout = runtime.fanout
        exception_obj = thrown.exception_obj
        code = frame.code
        for try_block in code.tries:
            if not try_block.covers(pc):
                continue
            dex = frame.method.declaring_class.source_dex
            for type_idx, handler_addr in try_block.handlers:
                type_desc = dex.type_descriptor(type_idx) if dex else None
                if type_desc and is_instance_of(exception_obj, type_desc):
                    frame.pending_exception = exception_obj
                    for listener in fanout.on_exception_thrown:
                        listener.on_exception_thrown(frame, exception_obj)
                    return handler_addr
            if try_block.catch_all is not None:
                frame.pending_exception = exception_obj
                for listener in fanout.on_exception_thrown:
                    listener.on_exception_thrown(frame, exception_obj)
                return try_block.catch_all
        for listener in fanout.on_exception_thrown:
            listener.on_exception_thrown(frame, exception_obj)
        if runtime.tolerate_exceptions:
            # Force execution (§IV-E): clear the unhandled exception and
            # continue with the next instruction.  ``ins`` is the very
            # instruction the run loop already decoded for this step —
            # no re-decode.  Skipping a bare throw falls through exactly
            # like any other cleared instruction.
            for listener in fanout.on_exception_cleared:
                listener.on_exception_cleared(frame, exception_obj)
            if ins.opcode.is_return:
                return ("return", None)
            return pc + ins.unit_count
        return _UNWIND

    # --------------------------------------------------------------- dispatch

    def _dispatch(self, frame: Frame, pc: int, ins: Instruction):
        name = ins.name
        handler = _HANDLERS.get(name)
        if handler is None:
            raise VmCrash(f"no handler for opcode {name}")
        return handler(self, frame, pc, ins)

    # -- helpers ------------------------------------------------------------

    def _vm_exception(self, descriptor: str, message: str = "") -> VmThrow:
        return VmThrow(self.runtime.new_exception(descriptor, message))

    def _throw_npe(self, what: str):
        raise self._vm_exception("Ljava/lang/NullPointerException;", what)

    def _dex_of(self, frame: Frame):
        dex = frame.method.declaring_class.source_dex
        if dex is None:
            raise VmCrash(
                f"pool access from non-DEX method {frame.method.ref.signature}"
            )
        return dex

    def _resolve_static_field(self, frame: Frame, field_idx: int):
        dex = self._dex_of(frame)
        ref = dex.field_ref(field_idx)
        klass = self.runtime.class_linker.lookup(ref.class_desc)
        owner = klass.static_owner(ref.name) or klass
        self.runtime.class_linker.ensure_initialized(owner)
        return owner, ref

    def _resolve_instance_field(self, frame: Frame, field_idx: int, obj):
        if obj is None or (isinstance(obj, int) and obj == 0):
            self._throw_npe(f"field access @{frame.dex_pc}")
        dex = self._dex_of(frame)
        ref = dex.field_ref(field_idx)
        if isinstance(obj, VmObject):
            runtime_field = obj.klass.find_field(ref.name)
            declaring = (
                runtime_field.declaring_desc if runtime_field else ref.class_desc
            )
        else:
            declaring = ref.class_desc
        return (declaring, ref.name)

    # -- invoke -----------------------------------------------------------------

    def _do_invoke(self, frame: Frame, pc: int, ins: Instruction):
        dex = self._dex_of(frame)
        ref = dex.method_ref(ins.pool_index)
        regs = ins.invoke_registers
        arg_words = [frame.reg(r) for r in regs]
        kind = _INVOKE_KINDS[ins.name]
        callee = self._resolve_callee(frame, ref, kind, arg_words)
        fanout = self.runtime.fanout
        for listener in fanout.on_invoke:
            listener.on_invoke(frame, pc, callee, arg_words)
        result = self.execute(callee, arg_words, caller=frame)
        frame.result = result
        for listener in fanout.on_return_value:
            listener.on_return_value(frame, result)
        return None

    def _resolve_callee(
        self, frame: Frame, ref: MethodRef, kind: str, arg_words: list
    ) -> RuntimeMethod:
        linker = self.runtime.class_linker
        if kind == "static":
            klass = linker.lookup(ref.class_desc)
            linker.ensure_initialized(klass)
            method = klass.find_method(ref.name, ref.param_descs, ref.return_desc)
        elif kind == "super":
            start = frame.method.declaring_class.superclass
            if start is None:
                raise self._vm_exception(
                    "Ljava/lang/NoSuchMethodError;", ref.signature
                )
            method = start.find_method(ref.name, ref.param_descs, ref.return_desc)
        elif kind == "direct":
            klass = linker.lookup(ref.class_desc)
            method = klass.find_method(ref.name, ref.param_descs, ref.return_desc)
        else:  # virtual / interface: dispatch on the receiver
            receiver = arg_words[0] if arg_words else None
            if receiver is None or (isinstance(receiver, int) and receiver == 0):
                self._throw_npe(f"invoke-{kind} {ref.signature}")
            if isinstance(receiver, (VmObject, VmClassObject)):
                klass = (
                    receiver.klass
                    if isinstance(receiver, VmObject)
                    else linker.lookup("Ljava/lang/Class;")
                )
            elif isinstance(receiver, VmString):
                klass = linker.lookup("Ljava/lang/String;")
            elif isinstance(receiver, VmArray):
                klass = linker.lookup("Ljava/lang/Object;")
            else:
                klass = linker.lookup(ref.class_desc)
            method = klass.find_method(ref.name, ref.param_descs, ref.return_desc)
            if method is None:
                # Interface default resolution / framework fallback.
                method = linker.lookup(ref.class_desc).find_method(
                    ref.name, ref.param_descs, ref.return_desc
                )
        if method is None or method.is_abstract:
            raise self._vm_exception("Ljava/lang/NoSuchMethodError;", ref.signature)
        return method


_UNWIND = object()


# ---------------------------------------------------------------------------
# Opcode handlers.  Each returns None (fall through), an int (new dex_pc) or
# ("return", value).
# ---------------------------------------------------------------------------


def _is_null(value) -> bool:
    """Registers are untyped: integer zero is the null reference."""
    return value is None or (isinstance(value, int) and value == 0)


def _op_nop(interp, frame, pc, ins):
    return None


def _op_move(interp, frame, pc, ins):
    dst, src = ins.operands
    frame.set_reg(dst, frame.reg(src))
    return None


def _op_move_wide(interp, frame, pc, ins):
    dst, src = ins.operands
    frame.set_reg(dst, frame.reg(src))
    frame.set_reg(dst + 1, WIDE_HIGH)
    return None


def _op_move_result(interp, frame, pc, ins):
    frame.set_reg(ins.operands[0], frame.result)
    return None


def _op_move_result_wide(interp, frame, pc, ins):
    dst = ins.operands[0]
    frame.set_reg(dst, frame.result)
    frame.set_reg(dst + 1, WIDE_HIGH)
    return None


def _op_move_exception(interp, frame, pc, ins):
    frame.set_reg(ins.operands[0], frame.pending_exception)
    frame.pending_exception = None
    return None


def _op_return_void(interp, frame, pc, ins):
    return ("return", None)


def _op_return(interp, frame, pc, ins):
    return ("return", frame.reg(ins.operands[0]))


def _op_const(interp, frame, pc, ins):
    frame.set_reg(ins.operands[0], ins.operands[1])
    return None


def _op_const_high16(interp, frame, pc, ins):
    frame.set_reg(ins.operands[0], i32(ins.operands[1] << 16))
    return None


def _op_const_wide(interp, frame, pc, ins):
    dst = ins.operands[0]
    frame.set_reg(dst, ins.operands[1])
    frame.set_reg(dst + 1, WIDE_HIGH)
    return None


def _op_const_wide_high16(interp, frame, pc, ins):
    dst = ins.operands[0]
    frame.set_reg(dst, i64(ins.operands[1] << 48))
    frame.set_reg(dst + 1, WIDE_HIGH)
    return None


def _op_const_string(interp, frame, pc, ins):
    dex = interp._dex_of(frame)
    value = interp.runtime.interned_string(dex, ins.pool_index)
    frame.set_reg(ins.operands[0], value)
    return None


def _op_const_class(interp, frame, pc, ins):
    dex = interp._dex_of(frame)
    descriptor = dex.type_descriptor(ins.pool_index)
    klass = interp.runtime.class_linker.lookup(descriptor)
    frame.set_reg(ins.operands[0], VmClassObject(klass))
    return None


def _op_monitor(interp, frame, pc, ins):
    if _is_null(frame.reg(ins.operands[0])):
        interp._throw_npe("monitor")
    return None


def _op_check_cast(interp, frame, pc, ins):
    value = frame.reg(ins.operands[0])
    if _is_null(value):
        return None
    dex = interp._dex_of(frame)
    descriptor = dex.type_descriptor(ins.pool_index)
    if not _is_type_instance(interp, value, descriptor):
        raise interp._vm_exception("Ljava/lang/ClassCastException;", descriptor)
    return None


def _op_instance_of(interp, frame, pc, ins):
    dst, src, type_idx = ins.operands
    value = frame.reg(src)
    dex = interp._dex_of(frame)
    descriptor = dex.type_descriptor(type_idx)
    frame.set_reg(dst, 1 if (value is not None and _is_type_instance(interp, value, descriptor)) else 0)
    return None


def _is_type_instance(interp, value, descriptor: str) -> bool:
    if descriptor == "Ljava/lang/Object;":
        return True
    if isinstance(value, VmString):
        return descriptor == "Ljava/lang/String;"
    if isinstance(value, VmArray):
        return descriptor.startswith("[") or descriptor == "Ljava/lang/Object;"
    if isinstance(value, VmClassObject):
        return descriptor == "Ljava/lang/Class;"
    if isinstance(value, VmObject):
        return value.klass.is_subclass_of(descriptor)
    return False


def _op_array_length(interp, frame, pc, ins):
    dst, src = ins.operands
    array = frame.reg(src)
    if _is_null(array):
        interp._throw_npe("array-length")
    frame.set_reg(dst, array.length)
    return None


def _op_new_instance(interp, frame, pc, ins):
    dex = interp._dex_of(frame)
    descriptor = dex.type_descriptor(ins.pool_index)
    klass = interp.runtime.class_linker.lookup(descriptor)
    interp.runtime.class_linker.ensure_initialized(klass)
    frame.set_reg(ins.operands[0], VmObject(klass))
    return None


def _op_new_array(interp, frame, pc, ins):
    dst, size_reg, type_idx = ins.operands
    size = frame.reg(size_reg)
    if size < 0:
        raise interp._vm_exception(
            "Ljava/lang/NegativeArraySizeException;", str(size)
        )
    dex = interp._dex_of(frame)
    frame.set_reg(dst, VmArray(dex.type_descriptor(type_idx), size))
    return None


def _op_filled_new_array(interp, frame, pc, ins):
    dex = interp._dex_of(frame)
    descriptor = dex.type_descriptor(ins.pool_index)
    regs = ins.invoke_registers
    array = VmArray(descriptor, len(regs))
    for i, reg in enumerate(regs):
        array.elements[i] = frame.reg(reg)
    frame.result = array
    return None


def _op_fill_array_data(interp, frame, pc, ins):
    array = frame.reg(ins.operands[0])
    if _is_null(array):
        interp._throw_npe("fill-array-data")
    payload = decode_payload(frame.code_units, pc + ins.branch_target)
    values = payload.elements()
    array.elements[: len(values)] = values
    return None


def _op_throw(interp, frame, pc, ins):
    obj = frame.reg(ins.operands[0])
    if _is_null(obj):
        interp._throw_npe("throw")
    raise VmThrow(obj)


def _op_goto(interp, frame, pc, ins):
    return pc + ins.branch_target


def _op_switch(interp, frame, pc, ins):
    key = frame.reg(ins.operands[0])
    payload = decode_payload(frame.code_units, pc + ins.branch_target)
    target = payload.lookup(key)
    if target is None:
        return None
    return pc + target


def _cmp(a, b, nan_result):
    if isinstance(a, float) and (math.isnan(a) or math.isnan(b)):
        return nan_result
    return (a > b) - (a < b)


def _op_cmpl(interp, frame, pc, ins):
    dst, b, c = ins.operands
    frame.set_reg(dst, _cmp(frame.reg(b), frame.reg(c), -1))
    return None


def _op_cmpg(interp, frame, pc, ins):
    dst, b, c = ins.operands
    frame.set_reg(dst, _cmp(frame.reg(b), frame.reg(c), 1))
    return None


def _op_cmp_long(interp, frame, pc, ins):
    dst, b, c = ins.operands
    frame.set_reg(dst, _cmp(frame.reg(b), frame.reg(c), 0))
    return None


_IF_CONDS = {
    "eq": lambda a, b: _ref_eq(a, b),
    "ne": lambda a, b: not _ref_eq(a, b),
    "lt": lambda a, b: a < b,
    "ge": lambda a, b: a >= b,
    "gt": lambda a, b: a > b,
    "le": lambda a, b: a <= b,
}


def _ref_eq(a, b) -> bool:
    if isinstance(a, (VmObject, VmString, VmArray, VmClassObject)) or isinstance(
        b, (VmObject, VmString, VmArray, VmClassObject)
    ):
        return a is b
    return a == b


def _make_if(cond: str, zero: bool):
    test = _IF_CONDS[cond]

    def handler(interp, frame, pc, ins):
        if zero:
            a = frame.reg(ins.operands[0])
            b = None if isinstance(a, (VmObject, VmString, VmArray, VmClassObject)) or a is None else 0
            taken = test(a, b)
        else:
            taken = test(frame.reg(ins.operands[0]), frame.reg(ins.operands[1]))
        runtime = interp.runtime
        controller = runtime.branch_controller
        if controller is not None:
            forced = controller.decide(frame, pc, ins, taken)
            if forced is not None:
                if forced != taken:
                    for listener in runtime.fanout.on_branch_forced:
                        listener.on_branch_forced(frame, pc, ins, forced)
                taken = forced
        for listener in runtime.fanout.on_branch:
            listener.on_branch(frame, pc, ins, taken)
        if taken:
            return pc + ins.branch_target
        return None

    return handler


# -- arrays -------------------------------------------------------------------


def _op_aget(interp, frame, pc, ins):
    dst, array_reg, index_reg = ins.operands
    array = frame.reg(array_reg)
    if _is_null(array):
        interp._throw_npe("aget")
    index = frame.reg(index_reg)
    if not 0 <= index < array.length:
        raise interp._vm_exception(
            "Ljava/lang/ArrayIndexOutOfBoundsException;", str(index)
        )
    frame.set_reg(dst, array.elements[index])
    if ins.name == "aget-wide":
        frame.set_reg(dst + 1, WIDE_HIGH)
    return None


def _op_aput(interp, frame, pc, ins):
    src, array_reg, index_reg = ins.operands
    array = frame.reg(array_reg)
    if _is_null(array):
        interp._throw_npe("aput")
    index = frame.reg(index_reg)
    if not 0 <= index < array.length:
        raise interp._vm_exception(
            "Ljava/lang/ArrayIndexOutOfBoundsException;", str(index)
        )
    array.elements[index] = frame.reg(src)
    return None


# -- fields ----------------------------------------------------------------------


def _op_iget(interp, frame, pc, ins):
    dst, obj_reg, field_idx = ins.operands
    obj = frame.reg(obj_reg)
    key = interp._resolve_instance_field(frame, field_idx, obj)
    value = obj.fields.get(key, _default_for(ins.name))
    frame.set_reg(dst, value)
    if ins.name == "iget-wide":
        frame.set_reg(dst + 1, WIDE_HIGH)
    for listener in interp.runtime.fanout.on_field_read:
        listener.on_field_read(frame, key, value)
    return None


def _op_iput(interp, frame, pc, ins):
    src, obj_reg, field_idx = ins.operands
    obj = frame.reg(obj_reg)
    key = interp._resolve_instance_field(frame, field_idx, obj)
    value = frame.reg(src)
    obj.fields[key] = value
    for listener in interp.runtime.fanout.on_field_write:
        listener.on_field_write(frame, key, value)
    return None


def _op_sget(interp, frame, pc, ins):
    dst, field_idx = ins.operands
    owner, ref = interp._resolve_static_field(frame, field_idx)
    value = owner.statics.get(ref.name, _default_for(ins.name))
    frame.set_reg(dst, value)
    if ins.name == "sget-wide":
        frame.set_reg(dst + 1, WIDE_HIGH)
    for listener in interp.runtime.fanout.on_field_read:
        listener.on_field_read(frame, (owner.descriptor, ref.name), value)
    return None


def _op_sput(interp, frame, pc, ins):
    src, field_idx = ins.operands
    owner, ref = interp._resolve_static_field(frame, field_idx)
    value = frame.reg(src)
    owner.statics[ref.name] = value
    for listener in interp.runtime.fanout.on_field_write:
        listener.on_field_write(frame, (owner.descriptor, ref.name), value)
    return None


def _default_for(name: str):
    return None if name.endswith("-object") else 0


# -- arithmetic -------------------------------------------------------------------


def _unary(fn):
    def handler(interp, frame, pc, ins):
        dst, src = ins.operands
        frame.set_reg(dst, fn(frame.reg(src)))
        return None

    return handler


def _unary_wide_out(fn):
    def handler(interp, frame, pc, ins):
        dst, src = ins.operands
        frame.set_reg(dst, fn(frame.reg(src)))
        frame.set_reg(dst + 1, WIDE_HIGH)
        return None

    return handler


def _int_div(interp, a, b):
    if b == 0:
        raise interp._vm_exception("Ljava/lang/ArithmeticException;", "divide by zero")
    return java_div(a, b)


def _int_rem(interp, a, b):
    if b == 0:
        raise interp._vm_exception("Ljava/lang/ArithmeticException;", "divide by zero")
    return java_rem(a, b)


_INT_OPS = {
    "add": lambda interp, a, b: a + b,
    "sub": lambda interp, a, b: a - b,
    "mul": lambda interp, a, b: a * b,
    "div": _int_div,
    "rem": _int_rem,
    "and": lambda interp, a, b: a & b,
    "or": lambda interp, a, b: a | b,
    "xor": lambda interp, a, b: a ^ b,
    "shl": lambda interp, a, b: a << (b & 31),
    "shr": lambda interp, a, b: a >> (b & 31),
    "ushr": lambda interp, a, b: (a & 0xFFFFFFFF) >> (b & 31),
}

_LONG_SHIFTS = {"shl", "shr", "ushr"}


def _float_div(interp, a, b):
    if b == 0:
        if a == 0:
            return math.nan
        return math.inf if a > 0 else -math.inf
    return a / b


def _float_rem(interp, a, b):
    if b == 0:
        return math.nan
    return math.fmod(a, b)


_FLOAT_OPS = {
    "add": lambda interp, a, b: a + b,
    "sub": lambda interp, a, b: a - b,
    "mul": lambda interp, a, b: a * b,
    "div": _float_div,
    "rem": _float_rem,
}


def _make_binop(op: str, width: str, two_addr: bool):
    is_float = width in ("float", "double")
    ops = _FLOAT_OPS if is_float else _INT_OPS
    fn = ops[op]
    wrap = (
        float
        if is_float
        else (i64 if width == "long" else i32)
    )
    is_wide = width in ("long", "double")

    def handler(interp, frame, pc, ins):
        if two_addr:
            dst, src_b = ins.operands
            a = frame.reg(dst)
            b = frame.reg(src_b)
        else:
            dst, src_a, src_b = ins.operands
            a = frame.reg(src_a)
            b = frame.reg(src_b)
        if width == "long" and op in _LONG_SHIFTS:
            shift = b & 63
            if op == "shl":
                result = a << shift
            elif op == "shr":
                result = a >> shift
            else:  # ushr
                result = (a & 0xFFFFFFFFFFFFFFFF) >> shift
        else:
            result = fn(interp, a, b)
        frame.set_reg(dst, wrap(result))
        if is_wide:
            frame.set_reg(dst + 1, WIDE_HIGH)
        return None

    return handler


def _make_lit_binop(op: str):
    fn = _INT_OPS.get(op)  # None for rsub, handled explicitly

    def handler(interp, frame, pc, ins):
        dst, src, literal = ins.operands
        a = frame.reg(src)
        if op == "rsub":
            result = literal - a
        else:
            result = fn(interp, a, literal)
        frame.set_reg(dst, i32(result))
        return None

    return handler


def _float_to_int(value: float) -> int:
    if math.isnan(value):
        return 0
    if value >= 2**31 - 1:
        return 2**31 - 1
    if value <= -(2**31):
        return -(2**31)
    return int(value)


def _float_to_long(value: float) -> int:
    if math.isnan(value):
        return 0
    if value >= 2**63 - 1:
        return 2**63 - 1
    if value <= -(2**63):
        return -(2**63)
    return int(value)


def _to_char(value: int) -> int:
    return value & 0xFFFF


def _to_byte(value: int) -> int:
    value &= 0xFF
    return value - 0x100 if value >= 0x80 else value


def _to_short(value: int) -> int:
    value &= 0xFFFF
    return value - 0x10000 if value >= 0x8000 else value


# ---------------------------------------------------------------------------
# Handler table construction
# ---------------------------------------------------------------------------


def _build_handlers() -> dict:
    handlers: dict = {}
    handlers["nop"] = _op_nop
    for name in ("move", "move/from16", "move/16", "move-object",
                 "move-object/from16", "move-object/16"):
        handlers[name] = _op_move
    for name in ("move-wide", "move-wide/from16", "move-wide/16"):
        handlers[name] = _op_move_wide
    handlers["move-result"] = _op_move_result
    handlers["move-result-object"] = _op_move_result
    handlers["move-result-wide"] = _op_move_result_wide
    handlers["move-exception"] = _op_move_exception
    handlers["return-void"] = _op_return_void
    for name in ("return", "return-object", "return-wide"):
        handlers[name] = _op_return
    for name in ("const/4", "const/16", "const"):
        handlers[name] = _op_const
    handlers["const/high16"] = _op_const_high16
    for name in ("const-wide/16", "const-wide/32", "const-wide"):
        handlers[name] = _op_const_wide
    handlers["const-wide/high16"] = _op_const_wide_high16
    handlers["const-string"] = _op_const_string
    handlers["const-string/jumbo"] = _op_const_string
    handlers["const-class"] = _op_const_class
    handlers["monitor-enter"] = _op_monitor
    handlers["monitor-exit"] = _op_monitor
    handlers["check-cast"] = _op_check_cast
    handlers["instance-of"] = _op_instance_of
    handlers["array-length"] = _op_array_length
    handlers["new-instance"] = _op_new_instance
    handlers["new-array"] = _op_new_array
    handlers["filled-new-array"] = _op_filled_new_array
    handlers["filled-new-array/range"] = _op_filled_new_array
    handlers["fill-array-data"] = _op_fill_array_data
    handlers["throw"] = _op_throw
    for name in ("goto", "goto/16", "goto/32"):
        handlers[name] = _op_goto
    handlers["packed-switch"] = _op_switch
    handlers["sparse-switch"] = _op_switch
    handlers["cmpl-float"] = _op_cmpl
    handlers["cmpg-float"] = _op_cmpg
    handlers["cmpl-double"] = _op_cmpl
    handlers["cmpg-double"] = _op_cmpg
    handlers["cmp-long"] = _op_cmp_long
    for cond in ("eq", "ne", "lt", "ge", "gt", "le"):
        handlers[f"if-{cond}"] = _make_if(cond, zero=False)
        handlers[f"if-{cond}z"] = _make_if(cond, zero=True)
    for suffix in ("", "-wide", "-object", "-boolean", "-byte", "-char", "-short"):
        handlers[f"aget{suffix}"] = _op_aget
        handlers[f"aput{suffix}"] = _op_aput
        handlers[f"iget{suffix}"] = _op_iget
        handlers[f"iput{suffix}"] = _op_iput
        handlers[f"sget{suffix}"] = _op_sget
        handlers[f"sput{suffix}"] = _op_sput
    for kind in ("virtual", "super", "direct", "static", "interface"):
        handlers[f"invoke-{kind}"] = Interpreter._do_invoke
        handlers[f"invoke-{kind}/range"] = Interpreter._do_invoke

    handlers["neg-int"] = _unary(lambda v: i32(-v))
    handlers["not-int"] = _unary(lambda v: i32(~v))
    handlers["neg-long"] = _unary_wide_out(lambda v: i64(-v))
    handlers["not-long"] = _unary_wide_out(lambda v: i64(~v))
    handlers["neg-float"] = _unary(lambda v: -v)
    handlers["neg-double"] = _unary_wide_out(lambda v: -v)
    handlers["int-to-long"] = _unary_wide_out(lambda v: v)
    handlers["int-to-float"] = _unary(float)
    handlers["int-to-double"] = _unary_wide_out(float)
    handlers["long-to-int"] = _unary(i32)
    handlers["long-to-float"] = _unary(float)
    handlers["long-to-double"] = _unary_wide_out(float)
    handlers["float-to-int"] = _unary(_float_to_int)
    handlers["float-to-long"] = _unary_wide_out(_float_to_long)
    handlers["float-to-double"] = _unary_wide_out(lambda v: v)
    handlers["double-to-int"] = _unary(_float_to_int)
    handlers["double-to-long"] = _unary_wide_out(_float_to_long)
    handlers["double-to-float"] = _unary(lambda v: v)
    handlers["int-to-byte"] = _unary(_to_byte)
    handlers["int-to-char"] = _unary(_to_char)
    handlers["int-to-short"] = _unary(_to_short)

    int_ops = ("add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr", "ushr")
    float_ops = ("add", "sub", "mul", "div", "rem")
    for op in int_ops:
        handlers[f"{op}-int"] = _make_binop(op, "int", False)
        handlers[f"{op}-int/2addr"] = _make_binop(op, "int", True)
        handlers[f"{op}-long"] = _make_binop(op, "long", False)
        handlers[f"{op}-long/2addr"] = _make_binop(op, "long", True)
    for op in float_ops:
        handlers[f"{op}-float"] = _make_binop(op, "float", False)
        handlers[f"{op}-float/2addr"] = _make_binop(op, "float", True)
        handlers[f"{op}-double"] = _make_binop(op, "double", False)
        handlers[f"{op}-double/2addr"] = _make_binop(op, "double", True)
    for op in ("add", "rsub", "mul", "div", "rem", "and", "or", "xor"):
        suffix = "" if op == "rsub" else "/lit16"
        handlers[f"{op}-int{suffix}"] = _make_lit_binop(op)
    for op in ("add", "rsub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr", "ushr"):
        handlers[f"{op}-int/lit8"] = _make_lit_binop(op)
    return handlers


_HANDLERS = _build_handlers()

# Opcode-value dispatch: the string-keyed handler table above, resolved
# once into a 256-slot list indexed by opcode byte (parallel to
# ``OPCODE_TABLE``).  ``None`` slots are unassigned opcode values or
# opcodes without a handler; the run loop reports them with the same
# VmCrash as name-keyed dispatch.
_DISPATCH: list = [
    None if info is None else _HANDLERS.get(info.name) for info in OPCODE_TABLE
]

# invoke-<kind>[/range] mnemonic -> resolution kind, precomputed so the
# invoke handler does a single dict probe instead of two string splits.
_INVOKE_KINDS: dict[str, str] = {
    f"invoke-{kind}{suffix}": kind
    for kind in ("virtual", "super", "direct", "static", "interface")
    for suffix in ("", "/range")
}


def _predecode(units, pc: int, generation: int, stale):
    """Build (or revalidate) the predecode-cache entry for ``pc``.

    Entries are ``(generation, ins, handler, unit_count, raw_units)``.
    Three sources, all content-validated against the *live* array:

    1. a stale own-cache entry (the array mutated since it was cached):
       if the bytes in its own region are untouched the decode is
       reused and only the generation stamp refreshes — a patch
       invalidates exactly the instructions it rewrote, nothing else;
    2. the cross-copy shared store (another runtime's copy of the same
       code item already decoded this pc): adopted only when the raw
       units it was decoded from equal this array's live bytes;
    3. a fresh decode, written through to the shared store
       (``setdefault``: first writer wins, racing writers are
       equivalent for equal bytes).
    """
    if stale is not None:
        count = stale[3]
        if stale[4] == tuple(units[pc:pc + count]):
            return (generation, stale[1], stale[2], count, stale[4])
    shared = units.shared.get(pc)
    if shared is not None:
        count = shared[3]
        if shared[4] == tuple(units[pc:pc + count]):
            return (generation, shared[1], shared[2], count, shared[4])
    ins = Instruction.decode_at(units, pc)
    count = ins.unit_count
    entry = (
        generation,
        ins,
        _DISPATCH[ins.opcode.value],
        count,
        tuple(units[pc:pc + count]),
    )
    units.shared.setdefault(pc, entry)
    return entry
