"""VM exception plumbing.

A thrown Dalvik exception travels through the Python interpreter as a
:class:`VmThrow`; each frame consults its try blocks and either catches
(storing the exception object for ``move-exception``) or re-raises.
"""

from __future__ import annotations

from repro.runtime.values import VmObject, VmString


class VmThrow(Exception):
    """Carrier for an in-flight VM exception object."""

    def __init__(self, exception_obj: VmObject) -> None:
        self.exception_obj = exception_obj
        super().__init__(describe_exception(exception_obj))


def describe_exception(exception_obj: VmObject) -> str:
    descriptor = exception_obj.klass.descriptor
    message = exception_obj.fields.get(("Ljava/lang/Throwable;", "message"))
    if isinstance(message, VmString):
        return f"{descriptor}: {message.value}"
    return descriptor


def is_instance_of(exception_obj: VmObject, type_desc: str) -> bool:
    """Walk the class hierarchy to test ``instanceof`` for catch matching."""
    klass = exception_obj.klass
    while klass is not None:
        if klass.descriptor == type_desc:
            return True
        for interface in klass.interfaces:
            if interface.descriptor == type_desc:
                return True
        klass = klass.superclass
    return False
