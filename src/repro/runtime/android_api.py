"""Android framework stubs: activities, telephony, SMS, location, files.

Two roles:

1. Provide the framework surface the benchmark corpus calls (lifecycle,
   views, intents, system services, storage).
2. Define the **canonical source/sink tables** used by both the runtime's
   taint oracle (provenance stamping / sink logging) and the static
   analysis tools.

Taint tags: ``imei``, ``sim``, ``subscriber``, ``phone-number``,
``location``, ``ssid``, ``android-id``, ``contacts``.
"""

from __future__ import annotations

from repro.runtime.class_linker import NativeClassSpec
from repro.runtime.exceptions import VmThrow
from repro.runtime.values import VmArray, VmObject, VmString, provenance_of

# ---------------------------------------------------------------------------
# Canonical source/sink tables (shared with repro.analysis.sources_sinks)
# ---------------------------------------------------------------------------

SOURCE_SIGNATURES: dict[str, str] = {
    "Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String;": "imei",
    "Landroid/telephony/TelephonyManager;->getSimSerialNumber()Ljava/lang/String;": "sim",
    "Landroid/telephony/TelephonyManager;->getSubscriberId()Ljava/lang/String;": "subscriber",
    "Landroid/telephony/TelephonyManager;->getLine1Number()Ljava/lang/String;": "phone-number",
    "Landroid/location/LocationManager;->getLastKnownLocation(Ljava/lang/String;)Landroid/location/Location;": "location",
    "Landroid/location/Location;->toString()Ljava/lang/String;": "location",
    "Landroid/net/wifi/WifiInfo;->getSSID()Ljava/lang/String;": "ssid",
    "Landroid/provider/Settings$Secure;->getString(Landroid/content/ContentResolver;Ljava/lang/String;)Ljava/lang/String;": "android-id",
    "Landroid/content/ContentResolver;->query(Ljava/lang/String;)Ljava/lang/String;": "contacts",
}

SINK_SIGNATURES: dict[str, str] = {
    "Landroid/telephony/SmsManager;->sendTextMessage(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Landroid/app/PendingIntent;Landroid/app/PendingIntent;)V": "sms",
    "Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I": "log",
    "Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I": "log",
    "Landroid/util/Log;->e(Ljava/lang/String;Ljava/lang/String;)I": "log",
    "Landroid/util/Log;->v(Ljava/lang/String;Ljava/lang/String;)I": "log",
    "Landroid/util/Log;->w(Ljava/lang/String;Ljava/lang/String;)I": "log",
    "Ljava/net/URL;-><init>(Ljava/lang/String;)V": "network",
    "Ljava/net/URLConnection;->sendData(Ljava/lang/String;)V": "network",
    "Landroid/webkit/WebView;->loadUrl(Ljava/lang/String;)V": "network",
    "Ljava/io/OutputStream;->write([B)V": "stream",
}


def _throw(ctx, descriptor: str, message: str = ""):
    raise VmThrow(ctx.runtime.new_exception(descriptor, message))


def _source_string(ctx, signature: str, raw: str) -> VmString:
    tag = SOURCE_SIGNATURES[signature]
    ctx.runtime.record_source(signature, tag, ctx.frame)
    return VmString(raw, (tag,))


def _sink(ctx, signature: str, args: list) -> None:
    ctx.runtime.record_sink(signature, args, ctx.frame)


def _new(ctx, descriptor: str) -> VmObject:
    return VmObject(ctx.runtime.class_linker.lookup(descriptor))


# ---------------------------------------------------------------------------
# Context / Activity / lifecycle
# ---------------------------------------------------------------------------


def context_spec() -> NativeClassSpec:
    spec = NativeClassSpec("Landroid/content/Context;")
    spec.method("<init>", (), "V", lambda ctx, this: None)

    def get_system_service(ctx, this, name: VmString):
        mapping = {
            "phone": "Landroid/telephony/TelephonyManager;",
            "location": "Landroid/location/LocationManager;",
            "wifi": "Landroid/net/wifi/WifiManager;",
            "connectivity": "Landroid/net/ConnectivityManager;",
        }
        descriptor = mapping.get(name.value)
        if descriptor is None:
            return None
        return _new(ctx, descriptor)

    spec.method("getSystemService", ("Ljava/lang/String;",),
                "Ljava/lang/Object;", get_system_service)
    spec.method(
        "getSharedPreferences", ("Ljava/lang/String;", "I"),
        "Landroid/content/SharedPreferences;",
        lambda ctx, this, name, mode: _shared_prefs(ctx, name.value),
    )
    spec.method(
        "getApplicationContext", (), "Landroid/content/Context;",
        lambda ctx, this: this,
    )
    spec.method(
        "getContentResolver", (), "Landroid/content/ContentResolver;",
        lambda ctx, this: _new(ctx, "Landroid/content/ContentResolver;"),
    )
    spec.method("startActivity", ("Landroid/content/Intent;",), "V",
                _start_activity)
    return spec


def _shared_prefs(ctx, name: str) -> VmObject:
    obj = _new(ctx, "Landroid/content/SharedPreferences;")
    obj.native_data = ctx.runtime.shared_prefs.setdefault(name, {})
    return obj


def _start_activity(ctx, this, intent: VmObject):
    """Launch the activity named in the intent (ICC within the app)."""
    runtime = ctx.runtime
    target = intent.fields.get(("Landroid/content/Intent;", "component"))
    if not isinstance(target, VmString):
        return
    descriptor = target.value
    if not runtime.class_linker.is_known(descriptor):
        return
    klass = runtime.class_linker.lookup(descriptor)
    runtime.class_linker.ensure_initialized(klass)
    activity = VmObject(klass)
    activity.fields[("Landroid/app/Activity;", "intent")] = intent
    init = klass.find_method("<init>", (), "V")
    if init is not None:
        runtime.interpreter.execute(init, [activity], caller=ctx.frame)
    on_create = klass.find_method("onCreate", ("Landroid/os/Bundle;",), "V")
    if on_create is not None:
        runtime.interpreter.execute(on_create, [activity, None], caller=ctx.frame)


def activity_spec() -> NativeClassSpec:
    spec = NativeClassSpec(
        "Landroid/app/Activity;", superclass="Landroid/content/Context;"
    )
    spec.method("<init>", (), "V", lambda ctx, this: None)
    for hook in ("onCreate",):
        spec.method(hook, ("Landroid/os/Bundle;",), "V",
                    lambda ctx, this, bundle: None)
    for hook in ("onStart", "onResume", "onPause", "onStop", "onDestroy",
                 "onRestart", "finish"):
        spec.method(hook, (), "V", lambda ctx, this: None)
    spec.method("setContentView", ("I",), "V", lambda ctx, this, layout: None)
    spec.method(
        "getIntent", (), "Landroid/content/Intent;",
        lambda ctx, this: this.fields.get(("Landroid/app/Activity;", "intent")),
    )
    spec.method("findViewById", ("I",), "Landroid/view/View;", _find_view_by_id)
    spec.method(
        "runOnUiThread", ("Ljava/lang/Runnable;",), "V",
        lambda ctx, this, runnable: _run_runnable(ctx, runnable),
    )
    return spec


def _run_runnable(ctx, runnable):
    if runnable is None:
        return
    method = runnable.klass.find_method("run", (), "V")
    if method is not None:
        ctx.runtime.interpreter.execute(method, [runnable], caller=ctx.frame)


def _find_view_by_id(ctx, this, view_id: int) -> VmObject:
    runtime = ctx.runtime
    view = runtime.ui_views.get(view_id)
    if view is None:
        view = _new(ctx, "Landroid/widget/Button;")
        view.fields[("Landroid/view/View;", "id")] = view_id
        runtime.ui_views[view_id] = view
    return view


def service_spec() -> NativeClassSpec:
    spec = NativeClassSpec(
        "Landroid/app/Service;", superclass="Landroid/content/Context;"
    )
    spec.method("<init>", (), "V", lambda ctx, this: None)
    spec.method("onCreate", (), "V", lambda ctx, this: None)
    return spec


def application_spec() -> NativeClassSpec:
    spec = NativeClassSpec(
        "Landroid/app/Application;", superclass="Landroid/content/Context;"
    )
    spec.method("<init>", (), "V", lambda ctx, this: None)
    spec.method("onCreate", (), "V", lambda ctx, this: None)
    spec.method("attachBaseContext", ("Landroid/content/Context;",), "V",
                lambda ctx, this, base: None)
    return spec


# ---------------------------------------------------------------------------
# Bundles and intents
# ---------------------------------------------------------------------------


def bundle_spec() -> NativeClassSpec:
    spec = NativeClassSpec("Landroid/os/Bundle;")

    def init(ctx, this):
        this.native_data = {}

    spec.method("<init>", (), "V", init)
    spec.method(
        "putString", ("Ljava/lang/String;", "Ljava/lang/String;"), "V",
        lambda ctx, this, key, value: this.native_data.__setitem__(key.value, value),
    )
    spec.method(
        "getString", ("Ljava/lang/String;",), "Ljava/lang/String;",
        lambda ctx, this, key: this.native_data.get(key.value)
        if this.native_data else None,
    )
    return spec


def intent_spec() -> NativeClassSpec:
    spec = NativeClassSpec("Landroid/content/Intent;")

    def init(ctx, this, *args):
        this.native_data = {}
        # Intent(Context, Class) form names the target component.
        for arg in args:
            klass_obj = getattr(arg, "klass", None)
            if arg is not None and klass_obj is not None and hasattr(arg, "object_id"):
                from repro.runtime.values import VmClassObject

                if isinstance(arg, VmClassObject):
                    this.fields[("Landroid/content/Intent;", "component")] = VmString(
                        arg.klass.descriptor
                    )

    spec.method("<init>", (), "V", init)
    spec.method("<init>", ("Landroid/content/Context;", "Ljava/lang/Class;"),
                "V", init)
    spec.method(
        "putExtra", ("Ljava/lang/String;", "Ljava/lang/String;"),
        "Landroid/content/Intent;",
        lambda ctx, this, key, value: (
            this.native_data.__setitem__(key.value, value),
            this.add_provenance(provenance_of(value)),
            this,
        )[-1],
    )
    spec.method(
        "getStringExtra", ("Ljava/lang/String;",), "Ljava/lang/String;",
        lambda ctx, this, key: this.native_data.get(key.value)
        if this.native_data else None,
    )
    spec.method(
        "setComponent", ("Ljava/lang/String;",), "Landroid/content/Intent;",
        lambda ctx, this, name: (
            this.fields.__setitem__(
                ("Landroid/content/Intent;", "component"), name
            ),
            this,
        )[-1],
    )
    return spec


# ---------------------------------------------------------------------------
# Telephony, SMS, location, wifi  (sources and sinks)
# ---------------------------------------------------------------------------


def telephony_spec() -> NativeClassSpec:
    spec = NativeClassSpec("Landroid/telephony/TelephonyManager;")
    spec.method("<init>", (), "V", lambda ctx, this: None)
    spec.method(
        "getDeviceId", (), "Ljava/lang/String;",
        lambda ctx, this: _source_string(
            ctx,
            "Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String;",
            ctx.runtime.device.imei,
        ),
    )
    spec.method(
        "getSimSerialNumber", (), "Ljava/lang/String;",
        lambda ctx, this: _source_string(
            ctx,
            "Landroid/telephony/TelephonyManager;->getSimSerialNumber()Ljava/lang/String;",
            ctx.runtime.device.sim_serial,
        ),
    )
    spec.method(
        "getSubscriberId", (), "Ljava/lang/String;",
        lambda ctx, this: _source_string(
            ctx,
            "Landroid/telephony/TelephonyManager;->getSubscriberId()Ljava/lang/String;",
            ctx.runtime.device.subscriber_id,
        ),
    )
    spec.method(
        "getLine1Number", (), "Ljava/lang/String;",
        lambda ctx, this: _source_string(
            ctx,
            "Landroid/telephony/TelephonyManager;->getLine1Number()Ljava/lang/String;",
            ctx.runtime.device.phone_number,
        ),
    )
    return spec


def sms_spec() -> NativeClassSpec:
    spec = NativeClassSpec("Landroid/telephony/SmsManager;")
    spec.method(
        "getDefault", (), "Landroid/telephony/SmsManager;",
        lambda ctx: _new(ctx, "Landroid/telephony/SmsManager;"),
        static=True,
    )

    def send_text(ctx, this, dest, sc, text, sent_intent, delivery_intent):
        _sink(
            ctx,
            "Landroid/telephony/SmsManager;->sendTextMessage(Ljava/lang/String;"
            "Ljava/lang/String;Ljava/lang/String;Landroid/app/PendingIntent;"
            "Landroid/app/PendingIntent;)V",
            [text],
        )

    spec.method(
        "sendTextMessage",
        ("Ljava/lang/String;", "Ljava/lang/String;", "Ljava/lang/String;",
         "Landroid/app/PendingIntent;", "Landroid/app/PendingIntent;"),
        "V",
        send_text,
    )
    return spec


def log_spec() -> NativeClassSpec:
    spec = NativeClassSpec("Landroid/util/Log;")
    for level in ("d", "i", "e", "v", "w"):
        signature = (
            f"Landroid/util/Log;->{level}(Ljava/lang/String;Ljava/lang/String;)I"
        )

        def log_impl(ctx, tag, message, _sig=signature):
            _sink(ctx, _sig, [message])
            return 0

        spec.method(level, ("Ljava/lang/String;", "Ljava/lang/String;"), "I",
                    log_impl, static=True)
    return spec


def location_specs() -> list[NativeClassSpec]:
    manager = NativeClassSpec("Landroid/location/LocationManager;")
    manager.method("<init>", (), "V", lambda ctx, this: None)

    def last_known(ctx, this, provider):
        signature = (
            "Landroid/location/LocationManager;->getLastKnownLocation"
            "(Ljava/lang/String;)Landroid/location/Location;"
        )
        ctx.runtime.record_source(signature, "location", ctx.frame)
        location = _new(ctx, "Landroid/location/Location;")
        location.add_provenance(("location",))
        location.native_data = (
            ctx.runtime.device.latitude,
            ctx.runtime.device.longitude,
        )
        return location

    manager.method("getLastKnownLocation", ("Ljava/lang/String;",),
                   "Landroid/location/Location;", last_known)

    location = NativeClassSpec("Landroid/location/Location;")
    location.method("getLatitude", (), "D",
                    lambda ctx, this: this.native_data[0])
    location.method("getLongitude", (), "D",
                    lambda ctx, this: this.native_data[1])
    location.method(
        "toString", (), "Ljava/lang/String;",
        lambda ctx, this: VmString(
            f"Location[{this.native_data[0]:.4f},{this.native_data[1]:.4f}]",
            this.provenance,
        ),
    )
    return [manager, location]


def wifi_specs() -> list[NativeClassSpec]:
    manager = NativeClassSpec("Landroid/net/wifi/WifiManager;")
    manager.method("<init>", (), "V", lambda ctx, this: None)
    manager.method(
        "getConnectionInfo", (), "Landroid/net/wifi/WifiInfo;",
        lambda ctx, this: _new(ctx, "Landroid/net/wifi/WifiInfo;"),
    )
    info = NativeClassSpec("Landroid/net/wifi/WifiInfo;")
    info.method(
        "getSSID", (), "Ljava/lang/String;",
        lambda ctx, this: _source_string(
            ctx,
            "Landroid/net/wifi/WifiInfo;->getSSID()Ljava/lang/String;",
            ctx.runtime.device.ssid,
        ),
    )
    connectivity = NativeClassSpec("Landroid/net/ConnectivityManager;")
    connectivity.method("<init>", (), "V", lambda ctx, this: None)
    return [manager, info, connectivity]


def settings_specs() -> list[NativeClassSpec]:
    resolver = NativeClassSpec("Landroid/content/ContentResolver;")
    resolver.method("<init>", (), "V", lambda ctx, this: None)

    def query(ctx, this, uri):
        signature = (
            "Landroid/content/ContentResolver;->query(Ljava/lang/String;)"
            "Ljava/lang/String;"
        )
        return _source_string(ctx, signature, "contact:alice:+15557654321")

    resolver.method("query", ("Ljava/lang/String;",), "Ljava/lang/String;", query)

    secure = NativeClassSpec("Landroid/provider/Settings$Secure;")
    secure.method(
        "getString",
        ("Landroid/content/ContentResolver;", "Ljava/lang/String;"),
        "Ljava/lang/String;",
        lambda ctx, resolver_obj, key: _source_string(
            ctx,
            "Landroid/provider/Settings$Secure;->getString(Landroid/content/"
            "ContentResolver;Ljava/lang/String;)Ljava/lang/String;",
            ctx.runtime.device.android_id,
        ),
        static=True,
    )
    return [resolver, secure]


# ---------------------------------------------------------------------------
# Build info (emulator / tablet detection)
# ---------------------------------------------------------------------------


def build_spec() -> NativeClassSpec:
    spec = NativeClassSpec("Landroid/os/Build;")
    spec.static_fields["MODEL"] = (
        "Ljava/lang/String;",
        lambda runtime: VmString(runtime.device.model),
    )
    spec.static_fields["BRAND"] = (
        "Ljava/lang/String;",
        lambda runtime: VmString(runtime.device.brand),
    )
    spec.static_fields["FINGERPRINT"] = (
        "Ljava/lang/String;",
        lambda runtime: VmString(runtime.device.fingerprint),
    )
    spec.static_fields["HARDWARE"] = (
        "Ljava/lang/String;",
        lambda runtime: VmString(runtime.device.hardware),
    )
    return spec


# ---------------------------------------------------------------------------
# Views / widgets
# ---------------------------------------------------------------------------


def view_specs() -> list[NativeClassSpec]:
    listener_iface = NativeClassSpec("Landroid/view/View$OnClickListener;")

    view = NativeClassSpec("Landroid/view/View;")
    view.method("<init>", (), "V", lambda ctx, this: None)
    view.method(
        "getId", (), "I",
        lambda ctx, this: this.fields.get(("Landroid/view/View;", "id"), 0),
    )
    view.method(
        "setId", ("I",), "V",
        lambda ctx, this, view_id: (
            this.fields.__setitem__(("Landroid/view/View;", "id"), view_id),
            ctx.runtime.ui_views.__setitem__(view_id, this),
            None,
        )[-1],
    )

    def set_on_click(ctx, this, listener):
        ctx.runtime.click_listeners.append((this, listener))

    view.method("setOnClickListener", ("Landroid/view/View$OnClickListener;",),
                "V", set_on_click)

    text_view = NativeClassSpec(
        "Landroid/widget/TextView;", superclass="Landroid/view/View;"
    )
    text_view.method("<init>", (), "V", lambda ctx, this: None)
    text_view.method(
        "setText", ("Ljava/lang/String;",), "V",
        lambda ctx, this, text: this.fields.__setitem__(
            ("Landroid/widget/TextView;", "text"), text
        ),
    )
    text_view.method(
        "getText", (), "Ljava/lang/String;",
        lambda ctx, this: this.fields.get(
            ("Landroid/widget/TextView;", "text"), VmString("")
        ),
    )

    # Button extends TextView in the real framework; the benchmark corpus
    # relies on check-cast Button -> TextView succeeding.
    button = NativeClassSpec(
        "Landroid/widget/Button;", superclass="Landroid/widget/TextView;"
    )
    button.method("<init>", (), "V", lambda ctx, this: None)

    web_view = NativeClassSpec(
        "Landroid/webkit/WebView;", superclass="Landroid/view/View;"
    )
    web_view.method("<init>", (), "V", lambda ctx, this: None)
    web_view.method(
        "loadUrl", ("Ljava/lang/String;",), "V",
        lambda ctx, this, url: _sink(
            ctx, "Landroid/webkit/WebView;->loadUrl(Ljava/lang/String;)V", [url]
        ),
    )

    pending_intent = NativeClassSpec("Landroid/app/PendingIntent;")

    handler = NativeClassSpec("Landroid/os/Handler;")
    handler.method("<init>", (), "V", lambda ctx, this: None)
    handler.method(
        "post", ("Ljava/lang/Runnable;",), "Z",
        lambda ctx, this, runnable: (_run_runnable(ctx, runnable), 1)[-1],
    )
    handler.method(
        "postDelayed", ("Ljava/lang/Runnable;", "J"), "Z",
        lambda ctx, this, runnable, delay: (_run_runnable(ctx, runnable), 1)[-1],
    )
    return [listener_iface, view, button, text_view, web_view, pending_intent, handler]


# ---------------------------------------------------------------------------
# Network sinks
# ---------------------------------------------------------------------------


def network_specs() -> list[NativeClassSpec]:
    url = NativeClassSpec("Ljava/net/URL;")

    def url_init(ctx, this, spec_string):
        this.fields[("Ljava/net/URL;", "spec")] = spec_string
        this.add_provenance(provenance_of(spec_string))
        _sink(ctx, "Ljava/net/URL;-><init>(Ljava/lang/String;)V", [spec_string])

    url.method("<init>", ("Ljava/lang/String;",), "V", url_init)
    url.method(
        "openConnection", (), "Ljava/net/URLConnection;",
        lambda ctx, this: _new(ctx, "Ljava/net/URLConnection;"),
    )

    connection = NativeClassSpec("Ljava/net/URLConnection;")
    connection.method("<init>", (), "V", lambda ctx, this: None)
    connection.method("connect", (), "V", lambda ctx, this: None)
    connection.method(
        "sendData", ("Ljava/lang/String;",), "V",
        lambda ctx, this, data: _sink(
            ctx, "Ljava/net/URLConnection;->sendData(Ljava/lang/String;)V", [data]
        ),
    )
    connection.method(
        "getOutputStream", (), "Ljava/io/OutputStream;",
        lambda ctx, this: _new(ctx, "Ljava/io/OutputStream;"),
    )
    return [url, connection]


# ---------------------------------------------------------------------------
# Files / storage (the PrivateDataLeak3 channel)
# ---------------------------------------------------------------------------


def file_specs() -> list[NativeClassSpec]:
    file_spec_obj = NativeClassSpec("Ljava/io/File;")

    def file_init(ctx, this, *args):
        parts = []
        for arg in args:
            if isinstance(arg, VmString):
                parts.append(arg.value)
            elif isinstance(arg, VmObject):
                path = arg.fields.get(("Ljava/io/File;", "path"))
                parts.append(path.value if isinstance(path, VmString) else "")
        this.fields[("Ljava/io/File;", "path")] = VmString("/".join(parts))

    file_spec_obj.method("<init>", ("Ljava/lang/String;",), "V", file_init)
    file_spec_obj.method(
        "<init>", ("Ljava/io/File;", "Ljava/lang/String;"), "V", file_init
    )
    file_spec_obj.method(
        "getPath", (), "Ljava/lang/String;",
        lambda ctx, this: this.fields.get(("Ljava/io/File;", "path")),
    )
    file_spec_obj.method(
        "exists", (), "Z",
        lambda ctx, this: 1
        if _file_path(this) in ctx.runtime.filesystem
        else 0,
    )

    out_stream = NativeClassSpec("Ljava/io/OutputStream;")
    out_stream.method("<init>", (), "V", lambda ctx, this: None)
    out_stream.method(
        "write", ("[B",), "V",
        lambda ctx, this, data: _sink(
            ctx, "Ljava/io/OutputStream;->write([B)V", [data]
        ),
    )
    out_stream.method("close", (), "V", lambda ctx, this: None)
    out_stream.method("flush", (), "V", lambda ctx, this: None)

    fos = NativeClassSpec(
        "Ljava/io/FileOutputStream;", superclass="Ljava/io/OutputStream;"
    )

    def fos_init(ctx, this, target):
        path = (
            target.value
            if isinstance(target, VmString)
            else _file_path(target)
        )
        this.native_data = path
        ctx.runtime.filesystem.setdefault(path, b"")

    def fos_write(ctx, this, data: VmArray):
        # NOTE: the byte payload is persisted but provenance is NOT —
        # storage round-trips launder taint, which is exactly why every
        # tool in Table IV misses the file-based flow in PrivateDataLeak3.
        raw = bytes((b & 0xFF) for b in data.elements)
        path = this.native_data
        ctx.runtime.filesystem[path] = ctx.runtime.filesystem.get(path, b"") + raw

    fos.method("<init>", ("Ljava/lang/String;",), "V", fos_init)
    fos.method("<init>", ("Ljava/io/File;",), "V", fos_init)
    fos.method("write", ("[B",), "V", fos_write)
    fos.method("close", (), "V", lambda ctx, this: None)

    in_stream = NativeClassSpec("Ljava/io/InputStream;")
    in_stream.method("<init>", (), "V", lambda ctx, this: None)

    fis = NativeClassSpec(
        "Ljava/io/FileInputStream;", superclass="Ljava/io/InputStream;"
    )

    def fis_init(ctx, this, target):
        path = (
            target.value if isinstance(target, VmString) else _file_path(target)
        )
        if path not in ctx.runtime.filesystem:
            _throw(ctx, "Ljava/io/FileNotFoundException;", path)
        this.native_data = path

    def fis_read(ctx, this, buffer: VmArray):
        data = ctx.runtime.filesystem.get(this.native_data, b"")
        count = min(len(data), buffer.length)
        for i in range(count):
            byte = data[i]
            buffer.elements[i] = byte - 256 if byte >= 128 else byte
        return count if count else -1

    fis.method("<init>", ("Ljava/lang/String;",), "V", fis_init)
    fis.method("<init>", ("Ljava/io/File;",), "V", fis_init)
    fis.method("read", ("[B",), "I", fis_read)
    fis.method("close", (), "V", lambda ctx, this: None)

    environment = NativeClassSpec("Landroid/os/Environment;")
    environment.method(
        "getExternalStorageDirectory", (), "Ljava/io/File;",
        lambda ctx: _make_file(ctx, "/sdcard"),
        static=True,
    )

    prefs = NativeClassSpec("Landroid/content/SharedPreferences;")
    prefs.method(
        "getString", ("Ljava/lang/String;", "Ljava/lang/String;"),
        "Ljava/lang/String;",
        lambda ctx, this, key, default: this.native_data.get(key.value, default),
    )
    prefs.method(
        "edit", (), "Landroid/content/SharedPreferences;",
        lambda ctx, this: this,
    )
    prefs.method(
        "putString", ("Ljava/lang/String;", "Ljava/lang/String;"),
        "Landroid/content/SharedPreferences;",
        lambda ctx, this, key, value: (
            this.native_data.__setitem__(key.value, value), this
        )[-1],
    )
    prefs.method("commit", (), "Z", lambda ctx, this: 1)
    prefs.method("apply", (), "V", lambda ctx, this: None)

    return [file_spec_obj, out_stream, fos, in_stream, fis, environment, prefs]


def _file_path(file_obj: VmObject) -> str:
    path = file_obj.fields.get(("Ljava/io/File;", "path"))
    return path.value if isinstance(path, VmString) else ""


def _make_file(ctx, path: str) -> VmObject:
    obj = _new(ctx, "Ljava/io/File;")
    obj.fields[("Ljava/io/File;", "path")] = VmString(path)
    return obj


# ---------------------------------------------------------------------------
# Dynamic loading (DexClassLoader analogue)
# ---------------------------------------------------------------------------


def classloader_specs() -> list[NativeClassSpec]:
    loader = NativeClassSpec("Ldalvik/system/DexClassLoader;")

    def loader_init(ctx, this, dex_path, *rest):
        """Load a secondary DEX: from APK assets or the in-memory fs."""
        runtime = ctx.runtime
        path = dex_path.value if isinstance(dex_path, VmString) else ""
        payload = None
        apk = runtime.current_apk
        if apk is not None and path in apk.assets:
            payload = apk.assets[path]
        elif path in runtime.filesystem:
            payload = runtime.filesystem[path]
        if payload is None:
            _throw(ctx, "Ljava/io/FileNotFoundException;", path)
        from repro.dex.reader import read_dex

        dex = read_dex(payload, strict=False)
        runtime.class_linker.register_dex(dex)
        this.native_data = [dex.class_descriptor(c) for c in dex.class_defs]

    def load_class(ctx, this, name: VmString):
        descriptor = "L" + name.value.replace(".", "/") + ";"
        linker = ctx.runtime.class_linker
        if not linker.is_known(descriptor):
            _throw(ctx, "Ljava/lang/ClassNotFoundException;", name.value)
        from repro.runtime.values import VmClassObject

        return VmClassObject(linker.lookup(descriptor))

    loader.method(
        "<init>",
        ("Ljava/lang/String;", "Ljava/lang/String;", "Ljava/lang/String;",
         "Ljava/lang/ClassLoader;"),
        "V",
        loader_init,
    )
    loader.method("<init>", ("Ljava/lang/String;",), "V", loader_init)
    loader.method("loadClass", ("Ljava/lang/String;",), "Ljava/lang/Class;",
                  load_class)

    base_loader = NativeClassSpec("Ljava/lang/ClassLoader;")
    base_loader.method("<init>", (), "V", lambda ctx, this: None)
    return [loader, base_loader]


def all_specs() -> list[NativeClassSpec]:
    """Every framework class spec, in dependency order."""
    return (
        [
            context_spec(),
            activity_spec(),
            service_spec(),
            application_spec(),
            bundle_spec(),
            intent_spec(),
            telephony_spec(),
            sms_spec(),
            log_spec(),
            build_spec(),
        ]
        + location_specs()
        + wifi_specs()
        + settings_specs()
        + view_specs()
        + network_specs()
        + file_specs()
        + classloader_specs()
    )
