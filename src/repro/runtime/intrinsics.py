"""``java.lang`` / ``java.util`` / ``java.io`` intrinsics.

Framework classes implemented in Python and registered on the boot
classpath.  String operations propagate provenance tags so the runtime's
taint oracle survives concatenation, builders and copies — mirroring how
real taint trackers propagate through the string library.
"""

from __future__ import annotations

import math

from repro.runtime.class_linker import NativeClassSpec
from repro.runtime.exceptions import VmThrow
from repro.runtime.values import (
    VmArray,
    VmClassObject,
    VmObject,
    VmString,
    i32,
    i64,
    provenance_of,
)


def _throw(ctx, descriptor: str, message: str = ""):
    raise VmThrow(ctx.runtime.new_exception(descriptor, message))


def _str(value) -> str:
    """Render a VM value the way java.lang.String.valueOf would."""
    if value is None:
        return "null"
    if isinstance(value, VmString):
        return value.value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, VmObject):
        data = value.native_data
        if isinstance(data, list) and all(isinstance(p, str) for p in data):
            return "".join(data)
        return f"{value.klass.descriptor}@{value.object_id:x}"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return f"{value:.1f}"
    return str(value)


def _derive(ctx, text: str, *parents) -> VmString:
    """New string whose provenance is the union of its parents'."""
    tags = frozenset().union(*(provenance_of(p) for p in parents)) if parents else frozenset()
    return VmString(text, tags)


# ---------------------------------------------------------------------------
# java.lang.Object and Throwable hierarchy
# ---------------------------------------------------------------------------


def object_spec() -> NativeClassSpec:
    spec = NativeClassSpec("Ljava/lang/Object;", superclass=None)
    spec.method("<init>", (), "V", lambda ctx, this: None)
    spec.method(
        "toString", (), "Ljava/lang/String;", lambda ctx, this: _derive(ctx, _str(this), this)
    )
    spec.method("hashCode", (), "I", lambda ctx, this: i32(this.object_id * 31))
    spec.method("equals", ("Ljava/lang/Object;",), "Z",
                lambda ctx, this, other: 1 if this is other else 0)
    spec.method("getClass", (), "Ljava/lang/Class;",
                lambda ctx, this: VmClassObject(_class_of(ctx, this)))
    return spec


def _class_of(ctx, value):
    if isinstance(value, VmString):
        return ctx.runtime.class_linker.lookup("Ljava/lang/String;")
    if isinstance(value, VmObject):
        return value.klass
    return ctx.runtime.class_linker.lookup("Ljava/lang/Object;")


_THROWABLE_TYPES = [
    ("Ljava/lang/Throwable;", "Ljava/lang/Object;"),
    ("Ljava/lang/Error;", "Ljava/lang/Throwable;"),
    ("Ljava/lang/Exception;", "Ljava/lang/Throwable;"),
    ("Ljava/lang/RuntimeException;", "Ljava/lang/Exception;"),
    ("Ljava/lang/NullPointerException;", "Ljava/lang/RuntimeException;"),
    ("Ljava/lang/ArithmeticException;", "Ljava/lang/RuntimeException;"),
    ("Ljava/lang/ArrayIndexOutOfBoundsException;", "Ljava/lang/RuntimeException;"),
    ("Ljava/lang/ClassCastException;", "Ljava/lang/RuntimeException;"),
    ("Ljava/lang/IllegalStateException;", "Ljava/lang/RuntimeException;"),
    ("Ljava/lang/IllegalArgumentException;", "Ljava/lang/RuntimeException;"),
    ("Ljava/lang/NumberFormatException;", "Ljava/lang/IllegalArgumentException;"),
    ("Ljava/lang/NegativeArraySizeException;", "Ljava/lang/RuntimeException;"),
    ("Ljava/lang/UnsupportedOperationException;", "Ljava/lang/RuntimeException;"),
    ("Ljava/lang/SecurityException;", "Ljava/lang/RuntimeException;"),
    ("Ljava/lang/StackOverflowError;", "Ljava/lang/Error;"),
    ("Ljava/lang/UnsatisfiedLinkError;", "Ljava/lang/Error;"),
    ("Ljava/lang/ClassNotFoundException;", "Ljava/lang/Exception;"),
    ("Ljava/lang/NoSuchMethodError;", "Ljava/lang/Error;"),
    ("Ljava/lang/NoSuchMethodException;", "Ljava/lang/Exception;"),
    ("Ljava/lang/InterruptedException;", "Ljava/lang/Exception;"),
    ("Ljava/io/IOException;", "Ljava/lang/Exception;"),
    ("Ljava/io/FileNotFoundException;", "Ljava/io/IOException;"),
]


def throwable_specs() -> list[NativeClassSpec]:
    specs = []
    for descriptor, superclass in _THROWABLE_TYPES:
        spec = NativeClassSpec(descriptor, superclass=superclass)
        spec.method("<init>", (), "V", lambda ctx, this: None)
        spec.method(
            "<init>",
            ("Ljava/lang/String;",),
            "V",
            lambda ctx, this, message: this.fields.__setitem__(
                ("Ljava/lang/Throwable;", "message"), message
            ),
        )
        spec.method(
            "getMessage",
            (),
            "Ljava/lang/String;",
            lambda ctx, this: this.fields.get(("Ljava/lang/Throwable;", "message")),
        )
        spec.method(
            "toString",
            (),
            "Ljava/lang/String;",
            lambda ctx, this: _derive(
                ctx,
                this.klass.descriptor,
                this.fields.get(("Ljava/lang/Throwable;", "message")),
            ),
        )
        specs.append(spec)
    return specs


# ---------------------------------------------------------------------------
# java.lang.String
# ---------------------------------------------------------------------------


def string_spec() -> NativeClassSpec:
    spec = NativeClassSpec("Ljava/lang/String;")
    spec.method("<init>", (), "V", lambda ctx, this: None)
    spec.method("length", (), "I", lambda ctx, this: len(this.value))
    spec.method("isEmpty", (), "Z", lambda ctx, this: 1 if not this.value else 0)
    spec.method(
        "charAt", ("I",), "C",
        lambda ctx, this, index: _char_at(ctx, this, index),
    )
    spec.method(
        "equals", ("Ljava/lang/Object;",), "Z",
        lambda ctx, this, other: 1
        if isinstance(other, VmString) and other.value == this.value
        else 0,
    )
    spec.method(
        "equalsIgnoreCase", ("Ljava/lang/String;",), "Z",
        lambda ctx, this, other: 1
        if isinstance(other, VmString) and other.value.lower() == this.value.lower()
        else 0,
    )
    spec.method(
        "concat", ("Ljava/lang/String;",), "Ljava/lang/String;",
        lambda ctx, this, other: _derive(ctx, this.value + other.value, this, other),
    )
    spec.method(
        "substring", ("I",), "Ljava/lang/String;",
        lambda ctx, this, start: _derive(ctx, this.value[start:], this),
    )
    spec.method(
        "substring", ("I", "I"), "Ljava/lang/String;",
        lambda ctx, this, start, end: _derive(ctx, this.value[start:end], this),
    )
    spec.method(
        "indexOf", ("Ljava/lang/String;",), "I",
        lambda ctx, this, needle: this.value.find(needle.value),
    )
    spec.method(
        "contains", ("Ljava/lang/CharSequence;",), "Z",
        lambda ctx, this, needle: 1 if needle.value in this.value else 0,
    )
    spec.method(
        "startsWith", ("Ljava/lang/String;",), "Z",
        lambda ctx, this, prefix: 1 if this.value.startswith(prefix.value) else 0,
    )
    spec.method(
        "endsWith", ("Ljava/lang/String;",), "Z",
        lambda ctx, this, suffix: 1 if this.value.endswith(suffix.value) else 0,
    )
    spec.method(
        "replace", ("Ljava/lang/CharSequence;", "Ljava/lang/CharSequence;"),
        "Ljava/lang/String;",
        lambda ctx, this, old, new: _derive(
            ctx, this.value.replace(old.value, new.value), this, new
        ),
    )
    spec.method(
        "toLowerCase", (), "Ljava/lang/String;",
        lambda ctx, this: _derive(ctx, this.value.lower(), this),
    )
    spec.method(
        "toUpperCase", (), "Ljava/lang/String;",
        lambda ctx, this: _derive(ctx, this.value.upper(), this),
    )
    spec.method(
        "trim", (), "Ljava/lang/String;",
        lambda ctx, this: _derive(ctx, this.value.strip(), this),
    )
    spec.method(
        "hashCode", (), "I", lambda ctx, this: _string_hash(this.value)
    )
    spec.method(
        "compareTo", ("Ljava/lang/String;",), "I",
        lambda ctx, this, other: (this.value > other.value) - (this.value < other.value),
    )
    spec.method(
        "toString", (), "Ljava/lang/String;", lambda ctx, this: this
    )
    spec.method(
        "intern", (), "Ljava/lang/String;", lambda ctx, this: this
    )
    spec.method(
        "getBytes", (), "[B", lambda ctx, this: _string_bytes(this)
    )
    spec.method(
        "toCharArray", (), "[C", lambda ctx, this: _string_chars(this)
    )
    spec.method(
        "split", ("Ljava/lang/String;",), "[Ljava/lang/String;",
        lambda ctx, this, sep: _string_split(this, sep),
    )
    spec.method(
        "valueOf", ("Ljava/lang/Object;",), "Ljava/lang/String;",
        lambda ctx, value: _derive(ctx, _str(value), value),
        static=True,
    )
    spec.method(
        "valueOf", ("I",), "Ljava/lang/String;",
        lambda ctx, value: VmString(str(value)),
        static=True,
    )
    spec.method(
        "valueOf", ("J",), "Ljava/lang/String;",
        lambda ctx, value: VmString(str(value)),
        static=True,
    )
    spec.method(
        "valueOf", ("D",), "Ljava/lang/String;",
        lambda ctx, value: VmString(_str(float(value))),
        static=True,
    )
    spec.method(
        "valueOf", ("C",), "Ljava/lang/String;",
        lambda ctx, value: VmString(chr(value & 0xFFFF)),
        static=True,
    )
    spec.method(
        "format",
        ("Ljava/lang/String;", "[Ljava/lang/Object;"),
        "Ljava/lang/String;",
        _string_format,
        static=True,
    )
    return spec


def _char_at(ctx, this: VmString, index: int) -> int:
    if not 0 <= index < len(this.value):
        _throw(ctx, "Ljava/lang/ArrayIndexOutOfBoundsException;", str(index))
    return ord(this.value[index])


def _string_hash(value: str) -> int:
    result = 0
    for ch in value:
        result = i32(result * 31 + ord(ch))
    return result


def _string_bytes(this: VmString) -> VmArray:
    data = this.value.encode("utf-8")
    array = VmArray("[B", len(data))
    array.elements = [b - 256 if b >= 128 else b for b in data]
    array.provenance = this.provenance
    return array


def _string_chars(this: VmString) -> VmArray:
    array = VmArray("[C", len(this.value))
    array.elements = [ord(c) for c in this.value]
    array.provenance = this.provenance
    return array


def _string_split(this: VmString, sep: VmString) -> VmArray:
    parts = this.value.split(sep.value)
    array = VmArray("[Ljava/lang/String;", len(parts))
    array.elements = [VmString(p, this.provenance) for p in parts]
    return array


def _string_format(ctx, fmt: VmString, args: VmArray | None) -> VmString:
    values = args.elements if args is not None else []
    text = fmt.value
    for value in values:
        for spec_token in ("%s", "%d", "%f"):
            if spec_token in text:
                text = text.replace(spec_token, _str(value), 1)
                break
    return _derive(ctx, text, fmt, *(values or []))


# ---------------------------------------------------------------------------
# StringBuilder / StringBuffer
# ---------------------------------------------------------------------------


def _builder_spec(descriptor: str) -> NativeClassSpec:
    spec = NativeClassSpec(descriptor)

    def init(ctx, this, seed=None):
        this.native_data = [seed.value] if isinstance(seed, VmString) else []
        if isinstance(seed, VmString):
            this.add_provenance(seed.provenance)

    def append(ctx, this, value):
        this.native_data.append(_str(value))
        this.add_provenance(provenance_of(value))
        return this

    def append_char(ctx, this, value):
        this.native_data.append(chr(value & 0xFFFF))
        return this

    spec.method("<init>", (), "V", init)
    spec.method("<init>", ("Ljava/lang/String;",), "V", init)
    spec.method("<init>", ("I",), "V", lambda ctx, this, cap: init(ctx, this))
    for param in ("Ljava/lang/String;", "Ljava/lang/Object;", "I", "J", "Z", "D"):
        spec.method("append", (param,), descriptor, append)
    spec.method("append", ("C",), descriptor, append_char)
    spec.method(
        "toString", (), "Ljava/lang/String;",
        lambda ctx, this: VmString("".join(this.native_data), this.provenance),
    )
    spec.method(
        "length", (), "I", lambda ctx, this: len("".join(this.native_data))
    )
    return spec


# ---------------------------------------------------------------------------
# Boxed primitives, Math, System
# ---------------------------------------------------------------------------


def _parse_int(ctx, text: VmString, base: int = 10) -> int:
    try:
        return i32(int(text.value, base))
    except ValueError:
        _throw(ctx, "Ljava/lang/NumberFormatException;", text.value)


def boxed_specs() -> list[NativeClassSpec]:
    integer = NativeClassSpec("Ljava/lang/Integer;", superclass="Ljava/lang/Number;")
    integer.static_fields["MAX_VALUE"] = ("I", lambda rt: 2**31 - 1)
    integer.static_fields["MIN_VALUE"] = ("I", lambda rt: -(2**31))
    integer.method("parseInt", ("Ljava/lang/String;",), "I",
                   lambda ctx, text: _parse_int(ctx, text), static=True)
    integer.method("parseInt", ("Ljava/lang/String;", "I"), "I",
                   lambda ctx, text, base: _parse_int(ctx, text, base), static=True)
    integer.method("valueOf", ("I",), "Ljava/lang/Integer;",
                   lambda ctx, value: _box(ctx, "Ljava/lang/Integer;", value),
                   static=True)
    integer.method("intValue", (), "I", lambda ctx, this: this.native_data)
    integer.method("toString", ("I",), "Ljava/lang/String;",
                   lambda ctx, value: VmString(str(value)), static=True)
    integer.method("toString", (), "Ljava/lang/String;",
                   lambda ctx, this: VmString(str(this.native_data), this.provenance))

    number = NativeClassSpec("Ljava/lang/Number;")
    number.method("<init>", (), "V", lambda ctx, this: None)

    long_spec = NativeClassSpec("Ljava/lang/Long;", superclass="Ljava/lang/Number;")
    long_spec.method("parseLong", ("Ljava/lang/String;",), "J",
                     lambda ctx, text: i64(int(text.value)), static=True)
    long_spec.method("valueOf", ("J",), "Ljava/lang/Long;",
                     lambda ctx, value: _box(ctx, "Ljava/lang/Long;", value),
                     static=True)
    long_spec.method("longValue", (), "J", lambda ctx, this: this.native_data)

    boolean = NativeClassSpec("Ljava/lang/Boolean;")
    boolean.method("valueOf", ("Z",), "Ljava/lang/Boolean;",
                   lambda ctx, value: _box(ctx, "Ljava/lang/Boolean;", value),
                   static=True)
    boolean.method("booleanValue", (), "Z", lambda ctx, this: this.native_data)
    boolean.method("parseBoolean", ("Ljava/lang/String;",), "Z",
                   lambda ctx, text: 1 if text.value == "true" else 0, static=True)

    character = NativeClassSpec("Ljava/lang/Character;")
    character.method("valueOf", ("C",), "Ljava/lang/Character;",
                     lambda ctx, value: _box(ctx, "Ljava/lang/Character;", value),
                     static=True)
    character.method("charValue", (), "C", lambda ctx, this: this.native_data)

    double_spec = NativeClassSpec("Ljava/lang/Double;", superclass="Ljava/lang/Number;")
    double_spec.method("valueOf", ("D",), "Ljava/lang/Double;",
                       lambda ctx, value: _box(ctx, "Ljava/lang/Double;", value),
                       static=True)
    double_spec.method("doubleValue", (), "D", lambda ctx, this: this.native_data)
    double_spec.method("parseDouble", ("Ljava/lang/String;",), "D",
                       lambda ctx, text: float(text.value), static=True)
    return [number, integer, long_spec, boolean, character, double_spec]


def _box(ctx, descriptor: str, value) -> VmObject:
    obj = VmObject(ctx.runtime.class_linker.lookup(descriptor))
    obj.native_data = value
    if isinstance(value, (VmString,)):
        obj.add_provenance(value.provenance)
    return obj


def math_spec() -> NativeClassSpec:
    spec = NativeClassSpec("Ljava/lang/Math;")
    spec.method("abs", ("I",), "I", lambda ctx, v: i32(abs(v)), static=True)
    spec.method("abs", ("J",), "J", lambda ctx, v: i64(abs(v)), static=True)
    spec.method("abs", ("D",), "D", lambda ctx, v: abs(v), static=True)
    spec.method("max", ("I", "I"), "I", lambda ctx, a, b: max(a, b), static=True)
    spec.method("min", ("I", "I"), "I", lambda ctx, a, b: min(a, b), static=True)
    spec.method("max", ("D", "D"), "D", lambda ctx, a, b: max(a, b), static=True)
    spec.method("min", ("D", "D"), "D", lambda ctx, a, b: min(a, b), static=True)
    spec.method("sqrt", ("D",), "D",
                lambda ctx, v: math.sqrt(v) if v >= 0 else math.nan, static=True)
    spec.method("pow", ("D", "D"), "D", lambda ctx, a, b: float(a) ** float(b),
                static=True)
    spec.method("floor", ("D",), "D", lambda ctx, v: float(math.floor(v)), static=True)
    spec.method("ceil", ("D",), "D", lambda ctx, v: float(math.ceil(v)), static=True)
    spec.method("random", (), "D", lambda ctx: ctx.runtime.next_random(), static=True)
    return spec


def system_spec() -> NativeClassSpec:
    spec = NativeClassSpec("Ljava/lang/System;")
    spec.static_fields["out"] = (
        "Ljava/io/PrintStream;",
        lambda runtime: _print_stream(runtime),
    )
    spec.method(
        "currentTimeMillis", (), "J",
        lambda ctx: i64(1_500_000_000_000 + ctx.runtime.clock_ms), static=True,
    )
    spec.method(
        "nanoTime", (), "J",
        lambda ctx: i64(ctx.runtime.steps * 1000), static=True,
    )
    spec.method("arraycopy",
                ("Ljava/lang/Object;", "I", "Ljava/lang/Object;", "I", "I"), "V",
                _arraycopy, static=True)
    spec.method("exit", ("I",), "V",
                lambda ctx, code: ctx.crash(f"System.exit({code})"), static=True)
    spec.method("getProperty", ("Ljava/lang/String;",), "Ljava/lang/String;",
                lambda ctx, key: VmString("dalvik"), static=True)
    return spec


def _arraycopy(ctx, src, src_pos, dst, dst_pos, length):
    if src is None or dst is None:
        _throw(ctx, "Ljava/lang/NullPointerException;", "arraycopy")
    if (
        src_pos < 0
        or dst_pos < 0
        or length < 0
        or src_pos + length > src.length
        or dst_pos + length > dst.length
    ):
        _throw(ctx, "Ljava/lang/ArrayIndexOutOfBoundsException;", "arraycopy")
    dst.elements[dst_pos : dst_pos + length] = src.elements[src_pos : src_pos + length]
    dst.add_provenance(src.provenance)


def _print_stream(runtime) -> VmObject:
    klass = runtime.class_linker.lookup("Ljava/io/PrintStream;")
    return VmObject(klass)


def print_stream_spec() -> NativeClassSpec:
    spec = NativeClassSpec("Ljava/io/PrintStream;")

    def println(ctx, this, value=None):
        ctx.runtime.stdout.append(_str(value) if value is not None else "")

    spec.method("println", (), "V", println)
    for param in ("Ljava/lang/String;", "Ljava/lang/Object;", "I", "J", "D", "Z"):
        spec.method("println", (param,), "V", println)
        spec.method("print", (param,), "V", println)
    return spec


# ---------------------------------------------------------------------------
# Threads (deterministic synchronous model) and collections
# ---------------------------------------------------------------------------


def thread_specs() -> list[NativeClassSpec]:
    runnable = NativeClassSpec("Ljava/lang/Runnable;")
    # Interface: no implementation; bytecode classes implement run().

    thread = NativeClassSpec("Ljava/lang/Thread;")

    def thread_init(ctx, this, runnable_obj=None):
        this.native_data = runnable_obj

    def thread_start(ctx, this):
        # Deterministic threading: run() executes synchronously on start().
        target = this.native_data if this.native_data is not None else this
        klass = target.klass if isinstance(target, VmObject) else None
        if klass is None:
            return
        method = klass.find_method("run", (), "V")
        if method is not None:
            ctx.runtime.interpreter.execute(method, [target], caller=ctx.frame)

    thread.method("<init>", (), "V", thread_init)
    thread.method("<init>", ("Ljava/lang/Runnable;",), "V", thread_init)
    thread.method("start", (), "V", thread_start)
    thread.method("run", (), "V", lambda ctx, this: thread_start(ctx, this))
    thread.method("join", (), "V", lambda ctx, this: None)
    thread.method("sleep", ("J",), "V",
                  lambda ctx, ms: setattr(ctx.runtime, "clock_ms",
                                          ctx.runtime.clock_ms + ms),
                  static=True)
    thread.method("currentThread", (), "Ljava/lang/Thread;",
                  lambda ctx: _box(ctx, "Ljava/lang/Thread;", None), static=True)
    return [runnable, thread]


def collection_specs() -> list[NativeClassSpec]:
    specs = []
    iterable = NativeClassSpec("Ljava/lang/Iterable;")
    char_sequence = NativeClassSpec("Ljava/lang/CharSequence;")
    list_iface = NativeClassSpec("Ljava/util/List;", interfaces=())
    map_iface = NativeClassSpec("Ljava/util/Map;")
    specs += [iterable, char_sequence, list_iface, map_iface]

    array_list = NativeClassSpec(
        "Ljava/util/ArrayList;", interfaces=("Ljava/util/List;",)
    )

    def list_init(ctx, this, _cap=None):
        this.native_data = []

    array_list.method("<init>", (), "V", list_init)
    array_list.method("<init>", ("I",), "V", list_init)
    array_list.method(
        "add", ("Ljava/lang/Object;",), "Z",
        lambda ctx, this, value: (this.native_data.append(value),
                                  this.add_provenance(provenance_of(value)), 1)[-1],
    )
    array_list.method(
        "get", ("I",), "Ljava/lang/Object;",
        lambda ctx, this, index: _list_get(ctx, this, index),
    )
    array_list.method("size", (), "I", lambda ctx, this: len(this.native_data))
    array_list.method(
        "remove", ("I",), "Ljava/lang/Object;",
        lambda ctx, this, index: this.native_data.pop(index),
    )
    array_list.method(
        "contains", ("Ljava/lang/Object;",), "Z",
        lambda ctx, this, value: 1 if any(_vm_eq(e, value) for e in this.native_data) else 0,
    )
    array_list.method("clear", (), "V", lambda ctx, this: this.native_data.clear())
    array_list.method("isEmpty", (), "Z",
                      lambda ctx, this: 0 if this.native_data else 1)
    specs.append(array_list)

    hash_map = NativeClassSpec("Ljava/util/HashMap;", interfaces=("Ljava/util/Map;",))

    def map_init(ctx, this, _cap=None):
        this.native_data = {}

    def map_key(key):
        return key.value if isinstance(key, VmString) else key

    hash_map.method("<init>", (), "V", map_init)
    hash_map.method("<init>", ("I",), "V", map_init)
    hash_map.method(
        "put", ("Ljava/lang/Object;", "Ljava/lang/Object;"), "Ljava/lang/Object;",
        lambda ctx, this, key, value: (
            this.native_data.update({map_key(key): value}),
            this.add_provenance(provenance_of(value)),
            None,
        )[-1],
    )
    hash_map.method(
        "get", ("Ljava/lang/Object;",), "Ljava/lang/Object;",
        lambda ctx, this, key: this.native_data.get(map_key(key)),
    )
    hash_map.method(
        "containsKey", ("Ljava/lang/Object;",), "Z",
        lambda ctx, this, key: 1 if map_key(key) in this.native_data else 0,
    )
    hash_map.method("size", (), "I", lambda ctx, this: len(this.native_data))
    specs.append(hash_map)

    random = NativeClassSpec("Ljava/util/Random;")
    random.method("<init>", (), "V", lambda ctx, this: None)
    random.method("<init>", ("J",), "V", lambda ctx, this, seed: None)
    random.method(
        "nextInt", ("I",), "I",
        lambda ctx, this, bound: int(ctx.runtime.next_random() * bound),
    )
    random.method(
        "nextInt", (), "I",
        lambda ctx, this: i32(int(ctx.runtime.next_random() * 2**32)),
    )
    random.method(
        "nextBoolean", (), "Z",
        lambda ctx, this: 1 if ctx.runtime.next_random() >= 0.5 else 0,
    )
    specs.append(random)
    return specs


def _list_get(ctx, this, index):
    if not 0 <= index < len(this.native_data):
        _throw(ctx, "Ljava/lang/ArrayIndexOutOfBoundsException;", str(index))
    return this.native_data[index]


def _vm_eq(a, b) -> bool:
    if isinstance(a, VmString) and isinstance(b, VmString):
        return a.value == b.value
    return a is b


def all_specs() -> list[NativeClassSpec]:
    """Every intrinsic class spec, in registration order."""
    return (
        [object_spec()]
        + throwable_specs()
        + [
            string_spec(),
            _builder_spec("Ljava/lang/StringBuilder;"),
            _builder_spec("Ljava/lang/StringBuffer;"),
            math_spec(),
            system_spec(),
            print_stream_spec(),
        ]
        + boxed_specs()
        + thread_specs()
        + collection_specs()
    )
