"""``java.lang.Class`` and ``java.lang.reflect`` intrinsics.

Reflection is central to the paper: the runtime *knows* the resolved
target of every reflective call (§IV-D), so ``Method.invoke`` fires the
``on_reflective_call`` hook with the concrete target — the collection
point DexLego uses to replace reflective calls with direct calls.  This
works no matter how the name string was produced (constant, decrypted,
or computed without any string at all).
"""

from __future__ import annotations

from repro.runtime.class_linker import NativeClassSpec
from repro.runtime.exceptions import VmThrow
from repro.runtime.values import (
    WIDE_HIGH,
    VmArray,
    VmClassObject,
    VmObject,
    VmReflectField,
    VmReflectMethod,
    VmString,
)


def _throw(ctx, descriptor: str, message: str = ""):
    raise VmThrow(ctx.runtime.new_exception(descriptor, message))


def _human_to_descriptor(name: str) -> str:
    return "L" + name.replace(".", "/") + ";"


def _for_name(ctx, name: VmString) -> VmClassObject:
    descriptor = _human_to_descriptor(name.value)
    linker = ctx.runtime.class_linker
    if not linker.is_known(descriptor):
        _throw(ctx, "Ljava/lang/ClassNotFoundException;", name.value)
    return VmClassObject(linker.lookup(descriptor))


def _get_method(ctx, this: VmClassObject, name: VmString, _param_classes=None):
    method = this.klass.find_method_by_name(name.value)
    if method is None:
        _throw(ctx, "Ljava/lang/NoSuchMethodException;", name.value)
    return VmReflectMethod(method)


def _get_methods(ctx, this: VmClassObject) -> VmArray:
    methods = [
        VmReflectMethod(m)
        for m in this.klass.methods.values()
        if not m.is_constructor
    ]
    methods.sort(key=lambda rm: rm.method.ref.name)
    array = VmArray("[Ljava/lang/reflect/Method;", len(methods))
    array.elements = methods
    return array


def _new_instance(ctx, this: VmClassObject):
    klass = this.klass
    ctx.runtime.class_linker.ensure_initialized(klass)
    obj = VmObject(klass)
    init = klass.find_method("<init>", (), "V")
    if init is not None:
        ctx.runtime.interpreter.execute(init, [obj], caller=ctx.frame)
    return obj


def _method_invoke(ctx, this: VmReflectMethod, receiver, args_array):
    """The reflective dispatch point (paper §IV-D)."""
    method = this.method
    args = list(args_array.elements) if isinstance(args_array, VmArray) else []
    runtime = ctx.runtime
    for listener in runtime.fanout.on_reflective_call:
        listener.on_reflective_call(ctx.frame, method, receiver, args)
    arg_words: list = []
    if not method.is_static:
        if receiver is None:
            _throw(ctx, "Ljava/lang/NullPointerException;", "Method.invoke")
        arg_words.append(receiver)
    for desc, value in zip(method.ref.param_descs, args):
        arg_words.append(_unbox_for(desc, value))
        if desc in ("J", "D"):
            arg_words.append(WIDE_HIGH)
    runtime.class_linker.ensure_initialized(method.declaring_class)
    return runtime.interpreter.execute(method, arg_words, caller=ctx.frame)


def _unbox_for(desc: str, value):
    if isinstance(value, VmObject) and desc in ("I", "J", "Z", "B", "S", "C", "F", "D"):
        if value.native_data is not None:
            return value.native_data
    return value


def _field_get(ctx, this: VmReflectField, receiver):
    klass = this.klass
    runtime_field = klass.find_field(this.field_name)
    if runtime_field is None:
        _throw(ctx, "Ljava/lang/NoSuchMethodException;", this.field_name)
    if runtime_field.is_static:
        owner = klass.static_owner(this.field_name) or klass
        ctx.runtime.class_linker.ensure_initialized(owner)
        return owner.statics.get(this.field_name)
    if receiver is None:
        _throw(ctx, "Ljava/lang/NullPointerException;", "Field.get")
    return receiver.fields.get((runtime_field.declaring_desc, this.field_name))


def _field_set(ctx, this: VmReflectField, receiver, value):
    klass = this.klass
    runtime_field = klass.find_field(this.field_name)
    if runtime_field is None:
        _throw(ctx, "Ljava/lang/NoSuchMethodException;", this.field_name)
    if runtime_field.is_static:
        owner = klass.static_owner(this.field_name) or klass
        owner.statics[this.field_name] = value
    else:
        receiver.fields[(runtime_field.declaring_desc, this.field_name)] = value


def class_spec() -> NativeClassSpec:
    spec = NativeClassSpec("Ljava/lang/Class;")
    spec.method("forName", ("Ljava/lang/String;",), "Ljava/lang/Class;",
                _for_name, static=True)
    spec.method(
        "getName", (), "Ljava/lang/String;",
        lambda ctx, this: VmString(
            this.klass.descriptor[1:-1].replace("/", ".")
        ),
    )
    spec.method(
        "getSimpleName", (), "Ljava/lang/String;",
        lambda ctx, this: VmString(
            this.klass.descriptor[1:-1].split("/")[-1]
        ),
    )
    spec.method("getMethod",
                ("Ljava/lang/String;", "[Ljava/lang/Class;"),
                "Ljava/lang/reflect/Method;", _get_method)
    spec.method("getMethod", ("Ljava/lang/String;",),
                "Ljava/lang/reflect/Method;", _get_method)
    spec.method("getDeclaredMethod",
                ("Ljava/lang/String;", "[Ljava/lang/Class;"),
                "Ljava/lang/reflect/Method;", _get_method)
    spec.method("getDeclaredMethod", ("Ljava/lang/String;",),
                "Ljava/lang/reflect/Method;", _get_method)
    spec.method("getMethods", (), "[Ljava/lang/reflect/Method;", _get_methods)
    spec.method("getDeclaredMethods", (), "[Ljava/lang/reflect/Method;",
                _get_methods)
    spec.method(
        "getField", ("Ljava/lang/String;",), "Ljava/lang/reflect/Field;",
        lambda ctx, this, name: VmReflectField(this.klass, name.value),
    )
    spec.method(
        "getDeclaredField", ("Ljava/lang/String;",), "Ljava/lang/reflect/Field;",
        lambda ctx, this, name: VmReflectField(this.klass, name.value),
    )
    spec.method("newInstance", (), "Ljava/lang/Object;", _new_instance)
    return spec


def method_spec() -> NativeClassSpec:
    spec = NativeClassSpec("Ljava/lang/reflect/Method;")
    spec.method("invoke",
                ("Ljava/lang/Object;", "[Ljava/lang/Object;"),
                "Ljava/lang/Object;", _method_invoke)
    spec.method("invoke", ("Ljava/lang/Object;",), "Ljava/lang/Object;",
                lambda ctx, this, receiver: _method_invoke(ctx, this, receiver, None))
    spec.method("setAccessible", ("Z",), "V", lambda ctx, this, flag: None)
    spec.method(
        "getName", (), "Ljava/lang/String;",
        lambda ctx, this: VmString(this.method.ref.name),
    )
    return spec


def field_spec() -> NativeClassSpec:
    spec = NativeClassSpec("Ljava/lang/reflect/Field;")
    spec.method("get", ("Ljava/lang/Object;",), "Ljava/lang/Object;", _field_get)
    spec.method("set", ("Ljava/lang/Object;", "Ljava/lang/Object;"), "V", _field_set)
    spec.method("setAccessible", ("Z",), "V", lambda ctx, this, flag: None)
    spec.method(
        "getName", (), "Ljava/lang/String;",
        lambda ctx, this: VmString(this.field_name),
    )
    return spec


def all_specs() -> list[NativeClassSpec]:
    return [class_spec(), method_spec(), field_spec()]
