"""Application driver: install, launch, deliver UI events.

The analogue of instrumentation harnesses (monkey / Sapienz execution
layer): it installs an APK into a runtime, walks activity lifecycles and
delivers click events to registered listeners.  Fuzzing and force
execution both drive applications through this interface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BudgetExceeded, VmCrash
from repro.runtime.apk import Apk
from repro.runtime.art import AndroidRuntime
from repro.runtime.exceptions import VmThrow
from repro.runtime.values import VmObject


@dataclass
class DriveReport:
    """What happened while driving the app."""

    launched: bool = False
    crashed: bool = False
    crash_reason: str = ""
    events_delivered: int = 0
    budget_exhausted: bool = False


class AppDriver:
    """Installs and exercises one application."""

    def __init__(self, runtime: AndroidRuntime, apk: Apk) -> None:
        self.runtime = runtime
        self.apk = apk
        self.activity: VmObject | None = None
        self.installed = False

    def install(self) -> None:
        if not self.installed:
            self.runtime.install_apk(self.apk)
            self.installed = True

    # -- lifecycle ------------------------------------------------------------

    def launch(self, activity_desc: str | None = None) -> DriveReport:
        """Create the main activity and run onCreate/onStart/onResume."""
        self.install()
        report = DriveReport()
        descriptor = activity_desc or self.apk.main_activity
        runtime = self.runtime
        try:
            klass = runtime.class_linker.lookup(descriptor)
            runtime.class_linker.ensure_initialized(klass)
            activity = VmObject(klass)
            self.activity = activity
            self._call_if_defined(activity, "<init>", (), [activity])
            self._call_if_defined(
                activity, "onCreate", ("Landroid/os/Bundle;",), [activity, None]
            )
            self._call_if_defined(activity, "onStart", (), [activity])
            self._call_if_defined(activity, "onResume", (), [activity])
            report.launched = True
        except BudgetExceeded:
            report.budget_exhausted = True
        except (VmThrow, VmCrash) as exc:
            report.crashed = True
            report.crash_reason = str(exc)
        return report

    def pause_resume(self) -> None:
        if self.activity is None:
            return
        self._call_if_defined(self.activity, "onPause", (), [self.activity])
        self._call_if_defined(self.activity, "onResume", (), [self.activity])

    def stop(self) -> None:
        if self.activity is None:
            return
        for hook in ("onPause", "onStop", "onDestroy"):
            self._call_if_defined(self.activity, hook, (), [self.activity])

    def _call_if_defined(self, receiver: VmObject, name: str, params, args) -> None:
        method = receiver.klass.find_method(name, tuple(params), "V")
        if method is not None and (method.code is not None or method.is_native):
            self.runtime.interpreter.execute(method, args)

    # -- events ------------------------------------------------------------------

    def click_all(self, report: DriveReport | None = None) -> int:
        """Deliver onClick to every registered listener (snapshot)."""
        delivered = 0
        for view, listener in list(self.runtime.click_listeners):
            self.click(view, listener)
            delivered += 1
            if report is not None:
                report.events_delivered += 1
        return delivered

    def click(self, view: VmObject, listener: VmObject) -> None:
        method = listener.klass.find_method(
            "onClick", ("Landroid/view/View;",), "V"
        )
        if method is not None:
            try:
                self.runtime.interpreter.execute(method, [listener, view])
            except (VmThrow, VmCrash):
                pass  # one bad handler must not kill the drive

    def run_standard_session(self) -> DriveReport:
        """Launch, click everything twice, pause/resume, stop.

        The deterministic analogue of the paper's "open the application
        and close" baseline execution.
        """
        report = self.launch()
        if not report.launched:
            return report
        try:
            self.click_all(report)
            self.pause_resume()
            self.click_all(report)
            self.stop()
        except BudgetExceeded:
            report.budget_exhausted = True
        except (VmThrow, VmCrash) as exc:
            report.crashed = True
            report.crash_reason = str(exc)
        return report
