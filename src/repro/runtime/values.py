"""Runtime value model of the simulated Android Runtime.

Registers hold either Python ``int``/``float`` primitives, ``None`` (the
null reference), or reference values: :class:`VmObject`,
:class:`VmString` and :class:`VmArray`.  Wide (long/double) values occupy
a register pair — the value lives in the low register and the
:data:`WIDE_HIGH` sentinel in the high one, mirroring Dalvik's register
word pairs.

Reference values carry a ``provenance`` tag set used as the ground-truth
oracle for taint experiments: framework sources stamp fresh values and
sinks inspect them.  String intrinsics propagate provenance through
copies and concatenations.
"""

from __future__ import annotations

import itertools
from typing import Iterable


class _WideHigh:
    """Sentinel filling the high register of a wide value."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<wide-high>"


WIDE_HIGH = _WideHigh()

_object_ids = itertools.count(1)


class VmValue:
    """Base class for reference values (objects, strings, arrays)."""

    __slots__ = ("object_id", "provenance")

    def __init__(self) -> None:
        self.object_id = next(_object_ids)
        self.provenance: frozenset[str] = frozenset()

    def add_provenance(self, tags: Iterable[str]) -> None:
        self.provenance = self.provenance | frozenset(tags)


class VmObject(VmValue):
    """An instance of a class; fields keyed by (declaring class, name)."""

    __slots__ = ("klass", "fields", "native_data")

    def __init__(self, klass) -> None:
        super().__init__()
        self.klass = klass
        self.fields: dict[tuple[str, str], object] = {}
        # Slot for framework-implemented classes (StringBuilder buffer,
        # collection backing store, stream state, ...).
        self.native_data: object = None

    def __repr__(self) -> str:
        return f"<{self.klass.descriptor} #{self.object_id}>"


class VmString(VmValue):
    """A java.lang.String value (identity-bearing wrapper over str)."""

    __slots__ = ("value",)

    def __init__(self, value: str, provenance: Iterable[str] = ()) -> None:
        super().__init__()
        self.value = value
        self.provenance = frozenset(provenance)

    def __repr__(self) -> str:
        return f"VmString({self.value!r})"


class VmArray(VmValue):
    """An array; ``elements`` is a plain Python list of register values."""

    __slots__ = ("type_desc", "elements")

    def __init__(self, type_desc: str, length: int, fill: object = None) -> None:
        super().__init__()
        self.type_desc = type_desc
        element_desc = type_desc[1:] if type_desc.startswith("[") else "?"
        if fill is None and element_desc in ("I", "B", "S", "C", "Z", "J", "F", "D"):
            fill = 0.0 if element_desc in ("F", "D") else 0
        self.elements: list[object] = [fill] * length

    @property
    def length(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:
        return f"VmArray({self.type_desc}, len={self.length})"


class VmClassObject(VmValue):
    """A ``java.lang.Class`` reference (result of const-class / forName)."""

    __slots__ = ("klass",)

    def __init__(self, klass) -> None:
        super().__init__()
        self.klass = klass

    def __repr__(self) -> str:
        return f"VmClassObject({self.klass.descriptor})"


class VmReflectMethod(VmValue):
    """A ``java.lang.reflect.Method`` reference."""

    __slots__ = ("method",)

    def __init__(self, method) -> None:
        super().__init__()
        self.method = method

    def __repr__(self) -> str:
        return f"VmReflectMethod({self.method.ref.signature})"


class VmReflectField(VmValue):
    """A ``java.lang.reflect.Field`` reference."""

    __slots__ = ("klass", "field_name")

    def __init__(self, klass, field_name: str) -> None:
        super().__init__()
        self.klass = klass
        self.field_name = field_name


# -- numeric helpers ---------------------------------------------------------


def i32(value: int) -> int:
    """Wrap to 32-bit two's-complement."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


def i64(value: int) -> int:
    """Wrap to 64-bit two's-complement."""
    value &= 0xFFFFFFFFFFFFFFFF
    return value - 0x10000000000000000 if value >= 0x8000000000000000 else value


def java_div(a: int, b: int) -> int:
    """Integer division truncating toward zero (Java semantics)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def java_rem(a: int, b: int) -> int:
    """Integer remainder with the sign of the dividend (Java semantics)."""
    return a - java_div(a, b) * b


def to_py(value: object) -> object:
    """Convert a VM value into a plain Python value (for natives)."""
    if isinstance(value, VmString):
        return value.value
    if isinstance(value, VmArray):
        return [to_py(e) for e in value.elements]
    return value


def provenance_of(value: object) -> frozenset[str]:
    """Collect provenance tags reachable from ``value`` (shallow + arrays)."""
    if isinstance(value, VmArray):
        tags = set(value.provenance)
        for element in value.elements:
            if isinstance(element, VmValue):
                tags |= element.provenance
        return frozenset(tags)
    if isinstance(value, VmValue):
        return value.provenance
    return frozenset()
