"""Simulated Android Runtime (the ART substrate).

Public surface:

* :class:`~repro.runtime.art.AndroidRuntime` — one simulated process
* :class:`~repro.runtime.apk.Apk` — application container
* :class:`~repro.runtime.events.AppDriver` — lifecycle/event driver
* :class:`~repro.runtime.hooks.RuntimeListener` — instrumentation hook
* device profiles in :mod:`repro.runtime.device`
"""

from repro.runtime.apk import NATIVE_LIBRARY_REGISTRY, Apk, register_native_library
from repro.runtime.art import AndroidRuntime, SinkEvent, SourceEvent
from repro.runtime.device import EMULATOR, NEXUS_5X, TABLET, DeviceProfile
from repro.runtime.events import AppDriver, DriveReport
from repro.runtime.exceptions import VmThrow
from repro.runtime.hooks import BranchController, RuntimeListener
from repro.runtime.klass import RuntimeClass, RuntimeField, RuntimeMethod
from repro.runtime.values import (
    WIDE_HIGH,
    VmArray,
    VmClassObject,
    VmObject,
    VmString,
    VmValue,
)

__all__ = [
    "EMULATOR",
    "NATIVE_LIBRARY_REGISTRY",
    "NEXUS_5X",
    "TABLET",
    "AndroidRuntime",
    "Apk",
    "AppDriver",
    "BranchController",
    "DeviceProfile",
    "DriveReport",
    "RuntimeClass",
    "RuntimeField",
    "RuntimeListener",
    "RuntimeMethod",
    "SinkEvent",
    "SourceEvent",
    "VmArray",
    "VmClassObject",
    "VmObject",
    "VmString",
    "VmThrow",
    "VmValue",
    "WIDE_HIGH",
    "register_native_library",
]
