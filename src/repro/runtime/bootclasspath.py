"""Boot classpath assembly: registers all framework class specs."""

from __future__ import annotations

from repro.runtime import android_api, intrinsics, reflection


def register_boot_classes(runtime) -> None:
    """Register every intrinsic / framework / reflection class spec."""
    linker = runtime.class_linker
    for spec in intrinsics.all_specs():
        linker.register_boot_class(spec)
    for spec in reflection.all_specs():
        linker.register_boot_class(spec)
    for spec in android_api.all_specs():
        linker.register_boot_class(spec)
