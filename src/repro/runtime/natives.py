"""Native method machinery (the JNI analogue).

Application DEX files may declare ``native`` methods; their
implementations are Python callables registered per signature.  A native
receives a :class:`NativeContext` exposing the runtime *and* the live
code-unit arrays of loaded methods — which is exactly the capability
self-modifying malware exploits (paper Code 1: ``bytecodeTamper``).
"""

from __future__ import annotations

from typing import Callable

from repro.dex.sigs import parse_method_signature
from repro.errors import ClassLinkError, NativeCrash
from repro.runtime.values import VmString


class NativeContext:
    """What a native method implementation can touch."""

    def __init__(self, runtime, frame, method) -> None:
        self.runtime = runtime
        self.frame = frame
        self.method = method

    # -- the self-modification primitive ---------------------------------

    def method_code_units(self, signature: str) -> list[int]:
        """Mutable live code-unit array of a loaded bytecode method.

        Writing into the returned list modifies the instructions the
        interpreter will fetch next — in-place bytecode tampering.
        """
        ref = parse_method_signature(signature)
        klass = self.runtime.class_linker.lookup(ref.class_desc)
        method = klass.find_method(ref.name, ref.param_descs, ref.return_desc)
        if method is None or method.code is None:
            raise ClassLinkError(f"no bytecode method {signature}")
        return method.code.insns

    def patch_code(self, signature: str, unit_offset: int, units: list[int]) -> None:
        """Overwrite ``units`` into a method's code array at ``unit_offset``."""
        code = self.method_code_units(signature)
        code[unit_offset : unit_offset + len(units)] = units

    def _live_dex(self, class_desc: str):
        klass = self.runtime.class_linker.lookup(class_desc)
        if klass.source_dex is None:
            raise ClassLinkError(f"{class_desc} is not backed by a DEX file")
        return klass.source_dex

    def method_pool_index(self, host_class: str, target_signature: str) -> int:
        """Pool index of ``target_signature`` in the live DEX of ``host_class``.

        Self-modifying code must compute indices against the DEX the class
        was actually loaded from — after packing/unpacking the pool order
        differs from build time.  Interning is safe: the interpreter
        resolves through the same live pool.
        """
        dex = self._live_dex(host_class)
        return dex.intern_method_ref(parse_method_signature(target_signature))

    def string_pool_index(self, host_class: str, value: str) -> int:
        """Pool index of a string in the live DEX of ``host_class``."""
        return self._live_dex(host_class).intern_string(value)

    def find_invoke_pc(self, method_signature: str, callee_name: str) -> int:
        """dex_pc of the first invoke of ``callee_name`` in a live method."""
        ref = parse_method_signature(method_signature)
        dex = self._live_dex(ref.class_desc)
        klass = self.runtime.class_linker.lookup(ref.class_desc)
        method = klass.find_method(ref.name, ref.param_descs, ref.return_desc)
        if method is None or method.code is None:
            raise ClassLinkError(f"no bytecode method {method_signature}")
        for dex_pc, ins in method.code.instructions():
            if ins.opcode.is_invoke:
                if dex.method_ref(ins.pool_index).name == callee_name:
                    return dex_pc
        raise ClassLinkError(
            f"{method_signature} has no invoke of {callee_name!r}"
        )

    # -- conveniences -------------------------------------------------------

    def new_string(self, value: str, provenance=()) -> VmString:
        return VmString(value, provenance)

    def crash(self, reason: str):
        raise NativeCrash(f"native crash in {self.method.ref.signature}: {reason}")


class NativeRegistry:
    """Signature -> Python implementation for app-declared natives."""

    def __init__(self) -> None:
        self._impls: dict[str, Callable] = {}

    def register(self, signature: str, impl: Callable) -> None:
        self._impls[signature] = impl

    def register_all(self, impls: dict[str, Callable]) -> None:
        self._impls.update(impls)

    def resolve(self, signature: str) -> Callable | None:
        return self._impls.get(signature)

    def copy(self) -> "NativeRegistry":
        clone = NativeRegistry()
        clone._impls = dict(self._impls)
        return clone
