"""Serialising the cross-copy predecode store (warm decode state).

The interpreter's shared decode store (:class:`~repro.dex.code_units.CodeUnits`
``shared``) lets every in-process copy of a code item reuse the first
decode of each instruction.  That store is process memory: a fresh
worker process — or a resumed session — starts cold and re-decodes the
whole hot set.  This module moves the warm state across the process
boundary:

* :func:`export_predecode_index` snapshots every shared store into a
  JSON-safe index keyed by method signature.  Only entries whose
  recorded raw units still equal the *pristine* code item's live bytes
  are exported — a decode taken from a self-modified copy never leaves
  the process.
* :func:`warm_predecode` rebuilds entries into another process's (or
  session's) code items.  Adoption is content-validated exactly like
  in-process sharing: an entry is re-decoded from the index's raw units
  and installed only when those bytes equal the target array's live
  bytes, so a stale entry — recorded against an older generation of the
  code — is rejected by raw-byte compare, never trusted.

The index never carries decoded objects (handlers are process-local
bound callables); it carries the *facts* needed to re-decode cheaply
and verifiably: pc, the source array's generation at export time, and
the raw code units the decode covered.
"""

from __future__ import annotations

from repro.dex.instructions import Instruction
from repro.runtime.interpreter import _DISPATCH

#: Format version of the serialised index.  Bumped whenever the entry
#: layout changes; loaders refuse foreign versions outright.
PREDECODE_INDEX_VERSION = 1


def export_predecode_index(dex_files) -> dict:
    """Snapshot the shared decode stores of ``dex_files`` as a dict.

    Returns ``{"version": 1, "methods": [...]}`` where each method entry
    is ``{"signature", "generation", "entries": [[pc, [raw units...]],
    ...]}``.  Entries whose raw units no longer match the code item's
    live bytes (the pristine array itself was patched since the decode)
    are dropped at export — the index only ever describes code that can
    be re-verified byte-for-byte on the other side.
    """
    methods = []
    for dex in dex_files:
        for _class_def, method, ref in dex.iter_methods():
            code = method.code
            if code is None:
                continue
            units = code.insns
            shared = getattr(units, "shared", None)
            if not shared:
                continue
            entries = []
            for pc in sorted(shared):
                entry = shared[pc]
                raw = entry[4]
                if tuple(units[pc:pc + entry[3]]) != raw:
                    continue  # decode belongs to a modified copy: skip
                entries.append([pc, list(raw)])
            if entries:
                methods.append({
                    "signature": ref.signature,
                    "generation": units.generation,
                    "entries": entries,
                })
    return {"version": PREDECODE_INDEX_VERSION, "methods": methods}


def validate_predecode_index(index: dict) -> dict:
    """Check the index format version; returns the index unchanged."""
    version = index.get("version")
    if version != PREDECODE_INDEX_VERSION:
        raise ValueError(
            f"unsupported predecode index version {version!r} "
            f"(this build reads version {PREDECODE_INDEX_VERSION})"
        )
    return index


def warm_predecode(dex_files, index: dict) -> int:
    """Install exported decode entries into ``dex_files``' shared stores.

    Every entry is re-validated against the target code item's *live*
    bytes before adoption — the raw-byte compare that also guards
    in-process sharing — so entries recorded against a generation of
    the code that no longer exists are silently rejected rather than
    resurrected.  Returns the number of entries adopted.  Raises
    ``ValueError`` on a foreign index format version.
    """
    validate_predecode_index(index)
    by_signature = {}
    for dex in dex_files:
        for _class_def, method, ref in dex.iter_methods():
            if method.code is not None:
                by_signature[ref.signature] = method.code
    adopted = 0
    for entry in index.get("methods", ()):
        code = by_signature.get(entry["signature"])
        if code is None:
            continue
        units = code.insns
        shared = getattr(units, "shared", None)
        if shared is None:
            continue
        for pc, raw in entry["entries"]:
            raw_units = tuple(raw)
            if tuple(units[pc:pc + len(raw_units)]) != raw_units:
                continue  # stale generation: bytes moved on, reject
            if pc in shared:
                continue  # this process already decoded it
            try:
                ins = Instruction.decode_at(units, pc)
            except Exception:
                continue  # index lied about decodability: stay cold
            if tuple(units[pc:pc + ins.unit_count]) != raw_units:
                continue  # decode spans different bytes than recorded
            shared.setdefault(
                pc,
                (
                    units.generation,
                    ins,
                    _DISPATCH[ins.opcode.value],
                    ins.unit_count,
                    raw_units,
                ),
            )
            adopted += 1
    return adopted
