"""Interpreter frames.

A frame owns the register file of one executing bytecode method.  Like
Dalvik, arguments occupy the *last* ``ins_size`` registers and wide
values span register pairs.
"""

from __future__ import annotations

from repro.runtime.klass import RuntimeMethod


class Frame:
    """Register file + program counter of one method activation."""

    __slots__ = (
        "method",
        "code",
        "registers",
        "dex_pc",
        "result",
        "pending_exception",
        "caller",
        "depth",
    )

    def __init__(
        self,
        method: RuntimeMethod,
        arg_words: list,
        caller: "Frame | None" = None,
    ) -> None:
        code = method.code
        assert code is not None, f"frame for code-less method {method}"
        self.method = method
        self.code = code  # hot-path alias; the insns array stays live
        self.registers: list = [0] * code.registers_size
        if arg_words:
            base = code.registers_size - code.ins_size
            for i, word in enumerate(arg_words):
                self.registers[base + i] = word
        self.dex_pc = 0
        self.result: object = None  # last invoke / filled-new-array result
        self.pending_exception = None  # for move-exception
        self.caller = caller
        self.depth = 0 if caller is None else caller.depth + 1

    @property
    def code_units(self) -> list[int]:
        """The LIVE code-unit array (mutations are visible immediately)."""
        return self.code.insns

    def reg(self, index: int):
        return self.registers[index]

    def set_reg(self, index: int, value) -> None:
        self.registers[index] = value

    def __repr__(self) -> str:
        return f"<frame {self.method.ref.signature} pc={self.dex_pc}>"
