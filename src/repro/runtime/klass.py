"""Linked runtime representation of classes, methods and fields.

The class linker turns DEX structures into :class:`RuntimeClass` /
:class:`RuntimeMethod` objects.  Crucially, each bytecode method gets its
*own mutable copy* of the code-unit array (``RuntimeMethod.code``): this
is the in-memory instruction array the interpreter fetches from and the
array self-modifying native code rewrites — the exact memory DexLego's
JIT collection reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.dex.constants import AccessFlags
from repro.dex.structures import CodeItem, MethodRef


@dataclass
class RuntimeField:
    """One declared field."""

    declaring_desc: str
    name: str
    type_desc: str
    access_flags: int = int(AccessFlags.PUBLIC)

    @property
    def is_static(self) -> bool:
        return bool(self.access_flags & AccessFlags.STATIC)

    @property
    def key(self) -> tuple[str, str]:
        return (self.declaring_desc, self.name)


class RuntimeMethod:
    """One linked method; bytecode methods own a live mutable code item."""

    def __init__(
        self,
        declaring_class: "RuntimeClass",
        ref: MethodRef,
        access_flags: int,
        code: CodeItem | None = None,
        native_impl: Callable | None = None,
    ) -> None:
        self.declaring_class = declaring_class
        self.ref = ref
        self.access_flags = access_flags
        # Live copy: self-modifying natives mutate code.insns in place.
        self.code = code.copy() if code is not None else None
        self.native_impl = native_impl
        # Pristine snapshot used by unpacker baselines ("dump at timing").
        self.loaded_code = code.copy() if code is not None else None

    @property
    def is_static(self) -> bool:
        return bool(self.access_flags & AccessFlags.STATIC)

    @property
    def is_native(self) -> bool:
        return (
            bool(self.access_flags & AccessFlags.NATIVE)
            or (self.code is None and self.native_impl is not None)
        )

    @property
    def is_abstract(self) -> bool:
        return bool(self.access_flags & AccessFlags.ABSTRACT)

    @property
    def is_constructor(self) -> bool:
        return self.ref.name in ("<init>", "<clinit>")

    @property
    def dispatch_key(self) -> tuple[str, tuple[str, ...], str]:
        return (self.ref.name, self.ref.param_descs, self.ref.return_desc)

    @property
    def signature(self) -> str:
        return self.ref.signature

    def __repr__(self) -> str:
        return f"<method {self.ref.signature}>"


class RuntimeClass:
    """One linked class."""

    def __init__(
        self,
        descriptor: str,
        superclass: "RuntimeClass | None" = None,
        interfaces: tuple["RuntimeClass", ...] = (),
        access_flags: int = int(AccessFlags.PUBLIC),
        source_dex: object = None,
    ) -> None:
        self.descriptor = descriptor
        self.superclass = superclass
        self.interfaces = interfaces
        self.access_flags = access_flags
        self.source_dex = source_dex  # DexFile this class was defined from
        self.methods: dict[tuple[str, tuple[str, ...], str], RuntimeMethod] = {}
        self.fields: dict[str, RuntimeField] = {}
        self.statics: dict[str, object] = {}
        self.initialized = False
        self.initializing = False

    # -- membership --------------------------------------------------------

    def add_method(self, method: RuntimeMethod) -> None:
        self.methods[method.dispatch_key] = method

    def add_field(self, runtime_field: RuntimeField) -> None:
        self.fields[runtime_field.name] = runtime_field

    # -- resolution ----------------------------------------------------------

    def find_method(
        self, name: str, param_descs: tuple[str, ...], return_desc: str
    ) -> RuntimeMethod | None:
        """Resolve a method by walking superclasses then interfaces."""
        key = (name, param_descs, return_desc)
        klass: RuntimeClass | None = self
        while klass is not None:
            method = klass.methods.get(key)
            if method is not None:
                return method
            klass = klass.superclass
        for interface in self.all_interfaces():
            method = interface.methods.get(key)
            if method is not None:
                return method
        return None

    def find_method_by_name(self, name: str) -> RuntimeMethod | None:
        """Resolve by bare name (reflection helper); first match wins."""
        klass: RuntimeClass | None = self
        while klass is not None:
            for method in klass.methods.values():
                if method.ref.name == name:
                    return method
            klass = klass.superclass
        return None

    def find_field(self, name: str) -> RuntimeField | None:
        klass: RuntimeClass | None = self
        while klass is not None:
            runtime_field = klass.fields.get(name)
            if runtime_field is not None:
                return runtime_field
            klass = klass.superclass
        return None

    def static_owner(self, name: str) -> "RuntimeClass | None":
        """The class in the hierarchy whose statics hold ``name``."""
        klass: RuntimeClass | None = self
        while klass is not None:
            if name in klass.fields and klass.fields[name].is_static:
                return klass
            klass = klass.superclass
        return None

    def all_interfaces(self) -> list["RuntimeClass"]:
        seen: list[RuntimeClass] = []
        klass: RuntimeClass | None = self
        while klass is not None:
            for interface in klass.interfaces:
                if interface not in seen:
                    seen.append(interface)
                    seen.extend(
                        i for i in interface.all_interfaces() if i not in seen
                    )
            klass = klass.superclass
        return seen

    def is_subclass_of(self, descriptor: str) -> bool:
        klass: RuntimeClass | None = self
        while klass is not None:
            if klass.descriptor == descriptor:
                return True
            for interface in klass.interfaces:
                if interface.is_subclass_of(descriptor):
                    return True
            klass = klass.superclass
        return False

    def own_bytecode_methods(self) -> list[RuntimeMethod]:
        return [m for m in self.methods.values() if m.code is not None]

    def __repr__(self) -> str:
        return f"<class {self.descriptor}>"
