"""APK container: manifest, DEX files, assets and native libraries.

An :class:`Apk` is the unit packers transform and DexLego repacks.  It
serialises to a real ZIP (``classes.dex``, ``classes2.dex``, ...,
``assets/*``, ``manifest.json``) so packers can stash encrypted payloads
in assets exactly like their real counterparts.

Native code (the ``.so`` analogue) cannot be serialised as Python
callables, so APKs reference *named native libraries* resolved through a
process-wide :data:`NATIVE_LIBRARY_REGISTRY` — samples and packers
register their JNI tables there under a stable name.
"""

from __future__ import annotations

import io
import json
import zipfile
from dataclasses import dataclass, field
from typing import Callable

from repro.dex.reader import read_dex
from repro.dex.structures import DexFile
from repro.dex.writer import write_dex
from repro.errors import ReproError

# name -> {signature: impl}
NATIVE_LIBRARY_REGISTRY: dict[str, dict[str, Callable]] = {}


def register_native_library(name: str, impls: dict[str, Callable]) -> str:
    """Register (or replace) a named JNI table; returns the name."""
    NATIVE_LIBRARY_REGISTRY[name] = dict(impls)
    return name


@dataclass
class Apk:
    """One application package."""

    package: str
    main_activity: str
    dex_files: list[DexFile] = field(default_factory=list)
    assets: dict[str, bytes] = field(default_factory=dict)
    native_libraries: list[str] = field(default_factory=list)
    activities: list[str] = field(default_factory=list)
    version: str = "1.0"

    def __post_init__(self) -> None:
        if self.main_activity and self.main_activity not in self.activities:
            self.activities.insert(0, self.main_activity)

    @property
    def primary_dex(self) -> DexFile:
        if not self.dex_files:
            raise ReproError(f"APK {self.package} has no DEX file")
        return self.dex_files[0]

    def replace_primary_dex(self, dex: DexFile) -> None:
        """Swap ``classes.dex`` (the aapt repackaging step of §IV-C)."""
        if self.dex_files:
            self.dex_files[0] = dex
        else:
            self.dex_files.append(dex)

    def iter_native_impls(self):
        for name in self.native_libraries:
            impls = NATIVE_LIBRARY_REGISTRY.get(name)
            if impls is None:
                raise ReproError(f"native library {name!r} not registered")
            yield impls

    # -- serialisation -----------------------------------------------------

    def to_bytes(self) -> bytes:
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w", zipfile.ZIP_DEFLATED) as zf:
            manifest = {
                "package": self.package,
                "version": self.version,
                "main_activity": self.main_activity,
                "activities": self.activities,
                "native_libraries": self.native_libraries,
            }
            entries = [("manifest.json",
                        json.dumps(manifest, indent=2).encode("utf-8"))]
            for i, dex in enumerate(self.dex_files):
                name = "classes.dex" if i == 0 else f"classes{i + 1}.dex"
                entries.append((name, write_dex(dex)))
            for path, data in sorted(self.assets.items()):
                entries.append((f"assets/{path}", data))
            for name, data in entries:
                # Fixed timestamps keep serialisation a pure function
                # of content: equal APKs produce equal bytes (and equal
                # content-addressed artifact digests) across runs.
                info = zipfile.ZipInfo(name, date_time=(1980, 1, 1, 0, 0, 0))
                info.compress_type = zipfile.ZIP_DEFLATED
                zf.writestr(info, data)
        return buffer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Apk":
        with zipfile.ZipFile(io.BytesIO(data)) as zf:
            manifest = json.loads(zf.read("manifest.json"))
            dex_files = []
            index = 1
            while True:
                name = "classes.dex" if index == 1 else f"classes{index}.dex"
                try:
                    dex_files.append(read_dex(zf.read(name)))
                except KeyError:
                    break
                index += 1
            assets = {
                info.filename[len("assets/"):]: zf.read(info.filename)
                for info in zf.infolist()
                if info.filename.startswith("assets/")
            }
        apk = cls(
            package=manifest["package"],
            main_activity=manifest["main_activity"],
            dex_files=dex_files,
            assets=assets,
            native_libraries=list(manifest.get("native_libraries", ())),
            activities=list(manifest.get("activities", ())),
            version=manifest.get("version", "1.0"),
        )
        return apk

    def clone(self) -> "Apk":
        """Deep copy via serialisation (what a packer service receives)."""
        return Apk.from_bytes(self.to_bytes())
