"""Device profiles for the simulated runtime.

The paper runs DexLego on a physical LG Nexus 5X; device identity matters
for three experiments: EmulatorDetection samples only leak on real
hardware, one DroidBench sample only leaks on tablets (the paper's single
missed flow), and sources (IMEI, location, SSID) read device state.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceProfile:
    """Identity and sensor state of the simulated device."""

    name: str
    model: str
    fingerprint: str
    brand: str
    hardware: str
    is_emulator: bool
    form_factor: str  # "phone" or "tablet"
    imei: str = "352099001761481"
    sim_serial: str = "8901260222780227227"
    subscriber_id: str = "310260000000000"
    phone_number: str = "+15551234567"
    latitude: float = 42.3314
    longitude: float = -83.0458
    ssid: str = "compass-lab-wifi"
    android_id: str = "9774d56d682e549c"

    @property
    def is_tablet(self) -> bool:
        return self.form_factor == "tablet"


NEXUS_5X = DeviceProfile(
    name="nexus5x",
    model="Nexus 5X",
    fingerprint="google/bullhead/bullhead:6.0/MDA89E/2294819:user/release-keys",
    brand="google",
    hardware="bullhead",
    is_emulator=False,
    form_factor="phone",
)

EMULATOR = DeviceProfile(
    name="emulator",
    model="sdk_gphone_x86",
    fingerprint="generic/sdk/generic:6.0/MASTER/eng.build:eng/test-keys",
    brand="generic",
    hardware="goldfish",
    is_emulator=True,
    form_factor="phone",
    imei="000000000000000",
)

TABLET = DeviceProfile(
    name="tablet",
    model="Pixel C",
    fingerprint="google/ryu/dragon:6.0/MXB48J/2362199:user/release-keys",
    brand="google",
    hardware="dragon",
    is_emulator=False,
    form_factor="tablet",
)
