"""Class linker: loads, links and initializes classes.

Mirrors ART's flow from §III-A of the paper: the DEX file is registered
with the linker, classes are linked on first use (collection point for
class metadata), and initialization runs ``<clinit>`` plus static-value
assignment (collection point for static values).  Dynamically loaded DEX
files (``DexClassLoader`` analogue) register through the same path, so
"the execution of the code in the dynamic loaded DEX file also follows
the same flow".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dex.constants import NO_INDEX, AccessFlags, EncodedValueType
from repro.dex.structures import ClassDef, DexFile
from repro.errors import ClassLinkError
from repro.runtime.klass import RuntimeClass, RuntimeField, RuntimeMethod
from repro.runtime.values import VmString


@dataclass
class NativeMethodSpec:
    """Declaration of one framework-implemented method."""

    name: str
    param_descs: tuple[str, ...]
    return_desc: str
    impl: Callable
    static: bool = False
    access: int = int(AccessFlags.PUBLIC)


@dataclass
class NativeClassSpec:
    """Declaration of one framework (boot classpath) class."""

    descriptor: str
    superclass: str | None = "Ljava/lang/Object;"
    interfaces: tuple[str, ...] = ()
    methods: list[NativeMethodSpec] = field(default_factory=list)
    instance_fields: list[tuple[str, str]] = field(default_factory=list)
    # name -> (type_desc, factory(runtime) -> value)
    static_fields: dict[str, tuple[str, Callable]] = field(default_factory=dict)
    access: int = int(AccessFlags.PUBLIC)

    def method(
        self,
        name: str,
        param_descs: tuple[str, ...],
        return_desc: str,
        impl: Callable,
        static: bool = False,
    ) -> "NativeClassSpec":
        self.methods.append(
            NativeMethodSpec(name, tuple(param_descs), return_desc, impl, static)
        )
        return self


class ClassLinker:
    """Loads classes from registered DEX files and boot-class specs."""

    def __init__(self, runtime) -> None:
        self.runtime = runtime
        self.loaded: dict[str, RuntimeClass] = {}
        # descriptor -> (DexFile, ClassDef); later registrations shadow
        # earlier ones only if the descriptor is not yet loaded.
        self._pending: dict[str, tuple[DexFile, ClassDef]] = {}
        self._boot_specs: dict[str, NativeClassSpec] = {}
        self.app_dex_files: list[DexFile] = []

    # -- registration ---------------------------------------------------------

    def register_boot_class(self, spec: NativeClassSpec) -> None:
        self._boot_specs[spec.descriptor] = spec

    def register_dex(self, dex: DexFile) -> list[str]:
        """Register an application DEX file; returns its class descriptors."""
        self.app_dex_files.append(dex)
        descriptors = []
        for class_def in dex.class_defs:
            descriptor = dex.class_descriptor(class_def)
            descriptors.append(descriptor)
            if descriptor not in self._pending and descriptor not in self.loaded:
                self._pending[descriptor] = (dex, class_def)
        return descriptors

    # -- lookup / linking ---------------------------------------------------------

    def lookup(self, descriptor: str) -> RuntimeClass:
        """Return the linked class, loading it on first use."""
        klass = self.loaded.get(descriptor)
        if klass is not None:
            return klass
        if descriptor.startswith("["):
            return self._load_array_class(descriptor)
        pending = self._pending.get(descriptor)
        if pending is not None:
            return self._load_dex_class(*pending)
        spec = self._boot_specs.get(descriptor)
        if spec is not None:
            return self._load_boot_class(spec)
        raise ClassLinkError(f"class not found: {descriptor}")

    def is_known(self, descriptor: str) -> bool:
        return (
            descriptor in self.loaded
            or descriptor in self._pending
            or descriptor in self._boot_specs
            or descriptor.startswith("[")
        )

    def loaded_app_classes(self) -> list[RuntimeClass]:
        return [k for k in self.loaded.values() if k.source_dex is not None]

    def _load_array_class(self, descriptor: str) -> RuntimeClass:
        klass = RuntimeClass(
            descriptor, superclass=self.lookup("Ljava/lang/Object;")
        )
        self.loaded[descriptor] = klass
        return klass

    def _load_boot_class(self, spec: NativeClassSpec) -> RuntimeClass:
        superclass = (
            self.lookup(spec.superclass) if spec.superclass is not None else None
        )
        interfaces = tuple(self.lookup(i) for i in spec.interfaces)
        klass = RuntimeClass(
            spec.descriptor, superclass, interfaces, access_flags=spec.access
        )
        self.loaded[spec.descriptor] = klass
        from repro.dex.structures import MethodRef

        for method_spec in spec.methods:
            access = method_spec.access | int(AccessFlags.NATIVE)
            if method_spec.static:
                access |= int(AccessFlags.STATIC)
            ref = MethodRef(
                spec.descriptor,
                method_spec.name,
                method_spec.param_descs,
                method_spec.return_desc,
            )
            klass.add_method(
                RuntimeMethod(klass, ref, access, native_impl=method_spec.impl)
            )
        for name, type_desc in spec.instance_fields:
            klass.add_field(RuntimeField(spec.descriptor, name, type_desc))
        for name, (type_desc, factory) in spec.static_fields.items():
            klass.add_field(
                RuntimeField(
                    spec.descriptor,
                    name,
                    type_desc,
                    int(AccessFlags.PUBLIC | AccessFlags.STATIC),
                )
            )
            klass.statics[name] = factory(self.runtime)
        klass.initialized = True  # boot classes need no <clinit>
        return klass

    def _load_dex_class(self, dex: DexFile, class_def: ClassDef) -> RuntimeClass:
        descriptor = dex.class_descriptor(class_def)
        superclass = None
        if class_def.superclass_idx != NO_INDEX:
            superclass = self.lookup(dex.type_descriptor(class_def.superclass_idx))
        interfaces = tuple(
            self.lookup(dex.type_descriptor(i)) for i in class_def.interfaces
        )
        klass = RuntimeClass(
            descriptor,
            superclass,
            interfaces,
            access_flags=class_def.access_flags,
            source_dex=dex,
        )
        self.loaded[descriptor] = klass
        self._pending.pop(descriptor, None)

        for encoded in class_def.all_fields():
            ref = dex.field_ref(encoded.field_idx)
            klass.add_field(
                RuntimeField(descriptor, ref.name, ref.type_desc, encoded.access_flags)
            )
        for encoded in class_def.all_methods():
            ref = dex.method_ref(encoded.method_idx)
            method = RuntimeMethod(klass, ref, encoded.access_flags, encoded.code)
            klass.add_method(method)
        # Static values are assigned during initialization, but record the
        # declared defaults now for the collector's benefit.
        klass._static_value_defaults = self._decode_static_values(dex, class_def)
        for listener in self.runtime.fanout.on_class_loaded:
            listener.on_class_loaded(klass)
        return klass

    def _decode_static_values(
        self, dex: DexFile, class_def: ClassDef
    ) -> dict[str, object]:
        defaults: dict[str, object] = {}
        for encoded_field, value in zip(
            class_def.static_fields, class_def.static_values
        ):
            name = dex.field_ref(encoded_field.field_idx).name
            if value.kind is EncodedValueType.STRING:
                defaults[name] = VmString(dex.string(value.value))
            elif value.kind is EncodedValueType.NULL:
                defaults[name] = None
            elif value.kind is EncodedValueType.BOOLEAN:
                defaults[name] = 1 if value.value else 0
            elif value.kind in (
                EncodedValueType.FLOAT,
                EncodedValueType.DOUBLE,
            ):
                defaults[name] = float(value.value)
            else:
                defaults[name] = int(value.value)
        return defaults

    # -- initialization -----------------------------------------------------------

    def ensure_initialized(self, klass: RuntimeClass) -> None:
        """Run static initialization once, superclass first (JLS order)."""
        if klass.initialized or klass.initializing:
            return
        klass.initializing = True
        try:
            if klass.superclass is not None:
                self.ensure_initialized(klass.superclass)
            defaults = getattr(klass, "_static_value_defaults", None)
            if defaults:
                klass.statics.update(defaults)
            clinit = klass.methods.get(("<clinit>", (), "V"))
            if clinit is not None and clinit.code is not None:
                self.runtime.interpreter.execute(clinit, [])
            klass.initialized = True
            for listener in self.runtime.fanout.on_class_initialized:
                listener.on_class_initialized(klass)
        finally:
            klass.initializing = False
