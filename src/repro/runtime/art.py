"""``AndroidRuntime`` — the composed ART analogue.

Owns the class linker, interpreter, native registry, instrumentation
listeners, the simulated device, an in-memory filesystem, the UI
registry and the source/sink event logs.  Every experiment in the paper
runs an application inside one of these.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BudgetExceeded
from repro.runtime.class_linker import ClassLinker
from repro.runtime.device import NEXUS_5X, DeviceProfile
from repro.runtime.hooks import BranchController, ListenerFanout, RuntimeListener
from repro.runtime.interpreter import Interpreter
from repro.runtime.natives import NativeRegistry
from repro.runtime.values import VmObject, VmString, provenance_of


@dataclass
class SinkEvent:
    """One observed call into a sink API."""

    sink_signature: str
    argument_repr: str
    provenance: frozenset[str]
    caller_signature: str | None

    @property
    def is_leak(self) -> bool:
        """True when tainted (source-derived) data reached the sink."""
        return bool(self.provenance)


@dataclass
class SourceEvent:
    """One observed call into a source API."""

    source_signature: str
    tag: str
    caller_signature: str | None


class AndroidRuntime:
    """One simulated Android process."""

    def __init__(
        self,
        device: DeviceProfile = NEXUS_5X,
        max_steps: int | None = None,
    ) -> None:
        self.device = device
        self.listeners: list[RuntimeListener] = []
        self.fanout = ListenerFanout(())
        self.natives = NativeRegistry()
        self.class_linker = ClassLinker(self)
        self.interpreter = Interpreter(self)
        self.branch_controller: BranchController | None = None
        self.tolerate_exceptions = False
        self.max_steps = max_steps
        self.steps = 0
        self.clock_ms = 0
        self._rng_state = 0x5DEECE66D
        self._string_pools: dict[int, dict[int, VmString]] = {}
        # Simulated environment state.
        self.filesystem: dict[str, bytes] = {}
        self.shared_prefs: dict[str, dict[str, object]] = {}
        self.ui_views: dict[int, VmObject] = {}
        self.click_listeners: list[tuple[VmObject, VmObject]] = []
        self.stdout: list[str] = []
        # Taint oracle logs.
        self.sink_log: list[SinkEvent] = []
        self.source_log: list[SourceEvent] = []
        self.current_apk = None
        from repro.runtime.bootclasspath import register_boot_classes

        register_boot_classes(self)

    # -- listeners -----------------------------------------------------------

    def add_listener(self, listener: RuntimeListener) -> None:
        """Attach a listener (the only supported way to add one: it
        rebuilds the per-event fan-out the interpreter dispatches on)."""
        self.listeners.append(listener)
        self.fanout = ListenerFanout(self.listeners)

    def remove_listener(self, listener: RuntimeListener) -> None:
        self.listeners.remove(listener)
        self.fanout = ListenerFanout(self.listeners)

    # -- budget / clock -----------------------------------------------------

    def consume_step(self) -> None:
        self.steps += 1
        self.clock_ms += 1 if self.steps % 997 == 0 else 0
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExceeded(
                f"execution budget of {self.max_steps} steps exhausted"
            )

    def reset_budget(self, max_steps: int | None) -> None:
        self.max_steps = max_steps
        self.steps = 0

    def next_random(self) -> float:
        """Deterministic PRNG behind Math.random / java.util.Random."""
        self._rng_state = (self._rng_state * 6364136223846793005 + 1442695040888963407) % (
            1 << 64
        )
        return (self._rng_state >> 11) / float(1 << 53)

    # -- values ---------------------------------------------------------------

    def interned_string(self, dex, string_idx: int) -> VmString:
        pool = self._string_pools.setdefault(id(dex), {})
        value = pool.get(string_idx)
        if value is None:
            value = VmString(dex.string(string_idx))
            pool[string_idx] = value
        return value

    def new_exception(self, descriptor: str, message: str = "") -> VmObject:
        klass = self.class_linker.lookup(descriptor)
        obj = VmObject(klass)
        obj.fields[("Ljava/lang/Throwable;", "message")] = VmString(message)
        return obj

    # -- taint oracle -----------------------------------------------------------

    def record_source(self, signature: str, tag: str, frame) -> None:
        caller = frame.method.ref.signature if frame is not None else None
        self.source_log.append(SourceEvent(signature, tag, caller))

    def record_sink(self, signature: str, args: list, frame) -> None:
        tags: set[str] = set()
        for arg in args:
            tags |= provenance_of(arg)
        caller = frame.method.ref.signature if frame is not None else None
        self.sink_log.append(
            SinkEvent(
                signature,
                ", ".join(_brief(a) for a in args),
                frozenset(tags),
                caller,
            )
        )

    def observed_leaks(self) -> list[SinkEvent]:
        """Sink events that actually received source-derived data."""
        return [event for event in self.sink_log if event.is_leak]

    # -- app installation ----------------------------------------------------------

    def install_apk(self, apk) -> list[str]:
        """Register the APK's DEX files and native libraries."""
        self.current_apk = apk
        descriptors: list[str] = []
        for dex in apk.dex_files:
            descriptors.extend(self.class_linker.register_dex(dex))
        for impls in apk.iter_native_impls():
            self.natives.register_all(impls)
        return descriptors

    def call(self, signature: str, *args):
        """Convenience: resolve and execute a method by signature."""
        return self.interpreter.invoke_signature(signature, list(args))


def _brief(value) -> str:
    text = repr(value)
    return text if len(text) <= 64 else text[:61] + "..."
