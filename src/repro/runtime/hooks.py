"""Instrumentation surface of the simulated ART.

DexLego's collector, the dynamic taint tools, the coverage tracker and
the unpacker baselines all attach to the runtime as
:class:`RuntimeListener` instances.  The interpreter and class linker
invoke the hooks below at the same points the paper instruments in ART
(class linking / initialization, interpreter fetch, branches, reflective
dispatch).
"""

from __future__ import annotations


class RuntimeListener:
    """Base listener; every hook is a no-op so subclasses pick what they need."""

    def on_class_loaded(self, klass) -> None:
        """A class was linked (paper: class linker collection point)."""

    def on_class_initialized(self, klass) -> None:
        """A class finished <clinit> and static field initialization."""

    def on_method_enter(self, frame) -> None:
        """A bytecode method frame was pushed."""

    def on_method_exit(self, frame, result) -> None:
        """A bytecode method returned normally."""

    def on_instruction(self, frame, dex_pc: int, ins) -> None:
        """About to execute ``ins`` at ``dex_pc`` (interpreter fetch point)."""

    def on_branch(self, frame, dex_pc: int, ins, taken: bool) -> None:
        """A conditional branch resolved to ``taken``."""

    def on_branch_forced(self, frame, dex_pc: int, ins, forced: bool) -> None:
        """Force execution overrode a branch: the concrete outcome was
        ``not forced`` but the controller steered it to ``forced``.
        Fires *before* the matching :meth:`on_branch` (which reports the
        forced outcome), only when the override actually flipped the
        branch — collectors can use it to tell manipulated control flow
        from organic control flow (paper §IV-E)."""

    def on_invoke(self, frame, dex_pc: int, callee, args: list) -> None:
        """About to invoke ``callee`` (bytecode or native)."""

    def on_return_value(self, frame, value) -> None:
        """A callee returned ``value`` into ``frame`` (before move-result)."""

    def on_reflective_call(self, frame, target_method, receiver, args) -> None:
        """Reflection resolved ``target_method`` at runtime (Method.invoke)."""

    def on_exception_thrown(self, frame, exception_obj) -> None:
        """An exception was thrown at ``frame``'s current pc."""

    def on_exception_cleared(self, frame, exception_obj) -> None:
        """Force execution cleared an unhandled exception."""

    def on_native_call(self, frame, method, args: list) -> None:
        """A native (JNI-analogue) method is about to run."""

    def on_field_read(self, frame, field_key, value) -> None:
        """An instance/static field was read."""

    def on_field_write(self, frame, field_key, value) -> None:
        """An instance/static field was written."""


# Every observable hook on the listener surface, in definition order.
LISTENER_HOOKS: tuple[str, ...] = tuple(
    name for name in vars(RuntimeListener) if name.startswith("on_")
)


class ListenerFanout:
    """Per-event listener lists, precomputed once per listener change.

    For each hook the fan-out holds the tuple of listeners that actually
    *override* it — subclasses inheriting the base no-op are filtered
    out.  The interpreter reads these tuples on its hot path, so an
    uninstrumented run pays a single falsy check per event and a
    collector-instrumented run calls only real observers, never the
    base-class no-ops.  Rebuilt by the runtime on ``add_listener`` /
    ``remove_listener`` (the only supported mutation points).
    """

    __slots__ = LISTENER_HOOKS

    def __init__(self, listeners=()) -> None:
        for hook in LISTENER_HOOKS:
            base = getattr(RuntimeListener, hook)
            setattr(
                self,
                hook,
                tuple(
                    listener
                    for listener in listeners
                    if getattr(type(listener), hook, base) is not base
                ),
            )


class BranchController:
    """Force-execution control point for conditional branches.

    Return ``None`` to keep the concrete outcome, or a bool to force the
    branch.  Attached to the runtime by the force-execution engine.
    One controller belongs to exactly one runtime/replay — the parallel
    exploration scheduler never shares a controller across the isolated
    runtimes of a wave, so implementations need no locking.
    """

    def decide(self, frame, dex_pc: int, ins, concrete_taken: bool) -> bool | None:
        return None
