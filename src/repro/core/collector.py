"""Just-in-Time collection (paper §III-A, §IV-A, §IV-C, Figure 2).

:class:`DexLegoCollector` attaches to the runtime as a listener and
collects, the moment ART touches them:

* class metadata at class-link time (superclass, interfaces, fields,
  method structures, try blocks);
* static field values at initialization time;
* executed instructions at interpreter-fetch time, fed through
  Algorithm 1 into per-execution collection trees;
* resolved reflective-call targets at ``Method.invoke`` dispatch.

Only application classes (those backed by a DEX file) are collected —
framework classes are boot-classpath noise, exactly as on ART.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.method_store import CollectedTry, MethodRecord, MethodStore
from repro.core.tree import CollectedInstruction, CollectionTree
from repro.dex.opcodes import IndexKind
from repro.dex.payloads import payload_unit_count
from repro.runtime.hooks import RuntimeListener
from repro.runtime.values import VmString


@dataclass
class CollectedField:
    name: str
    type_desc: str
    access_flags: int
    static_value: tuple = ("null",)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.type_desc,
            "access": self.access_flags,
            "value": list(self.static_value),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CollectedField":
        return cls(
            data["name"],
            data["type"],
            data["access"],
            tuple(data["value"]),
        )


@dataclass
class CollectedClass:
    """Class metadata captured at link/init time (class data file)."""

    descriptor: str
    superclass_desc: str | None
    interface_descs: tuple[str, ...]
    access_flags: int
    fields: list[CollectedField] = field(default_factory=list)
    method_signatures: list[str] = field(default_factory=list)
    initialized: bool = False

    def to_dict(self) -> dict:
        return {
            "descriptor": self.descriptor,
            "superclass": self.superclass_desc,
            "interfaces": list(self.interface_descs),
            "access": self.access_flags,
            "fields": [f.to_dict() for f in self.fields],
            "methods": self.method_signatures,
            "initialized": self.initialized,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CollectedClass":
        return cls(
            descriptor=data["descriptor"],
            superclass_desc=data["superclass"],
            interface_descs=tuple(data["interfaces"]),
            access_flags=data["access"],
            fields=[CollectedField.from_dict(f) for f in data["fields"]],
            method_signatures=list(data["methods"]),
            initialized=bool(data["initialized"]),
        )


@dataclass
class ReflectionSite:
    """One reflective invoke site and the targets resolved there.

    The insertion-ordered ``target_static`` dict is the single source
    of truth and is only ever mutated via ``setdefault`` — atomic under
    the GIL, so concurrent force-execution replays sharing a collector
    can never drop a resolved target.
    """

    caller_signature: str
    dex_pc: int
    target_static: dict[str, bool] = field(default_factory=dict)

    @property
    def targets(self) -> list[str]:
        """Target signatures in first-observed order."""
        return list(self.target_static)

    def add_target(self, signature: str, is_static: bool) -> None:
        self.target_static.setdefault(signature, is_static)


class DexLegoCollector(RuntimeListener):
    """The JIT collection component of DexLego."""

    def __init__(self) -> None:
        self.classes: dict[str, CollectedClass] = {}
        self.method_store = MethodStore()
        self.reflection_sites: dict[tuple[str, int], ReflectionSite] = {}
        self._active_trees: dict[int, CollectionTree] = {}
        self.instructions_observed = 0
        # Per-frame event counts, folded into instructions_observed at
        # method exit under the lock: a frame belongs to exactly one
        # thread, so the hot per-instruction increment never contends,
        # and the shared total never loses updates when parallel
        # force-execution replays share this collector.
        self._frame_counts: dict[int, int] = {}
        self._stats_lock = threading.Lock()

    # -- class linking (metadata collection) --------------------------------

    def on_class_loaded(self, klass) -> None:
        if klass.source_dex is None:
            return  # framework class: not part of the application
        collected = CollectedClass(
            descriptor=klass.descriptor,
            superclass_desc=(
                klass.superclass.descriptor if klass.superclass else None
            ),
            interface_descs=tuple(i.descriptor for i in klass.interfaces),
            access_flags=klass.access_flags,
        )
        for runtime_field in klass.fields.values():
            collected.fields.append(
                CollectedField(
                    runtime_field.name,
                    runtime_field.type_desc,
                    runtime_field.access_flags,
                )
            )
        for method in klass.methods.values():
            if method.declaring_class is not klass:
                continue
            record = MethodRecord(
                signature=method.ref.signature,
                class_desc=klass.descriptor,
                name=method.ref.name,
                param_descs=method.ref.param_descs,
                return_desc=method.ref.return_desc,
                access_flags=method.access_flags,
                is_native=method.is_native,
            )
            if method.code is not None:
                record.registers_size = method.code.registers_size
                record.ins_size = method.code.ins_size
                record.outs_size = method.code.outs_size
                dex = klass.source_dex
                for try_block in method.code.tries:
                    record.tries.append(
                        CollectedTry(
                            try_block.start_addr,
                            try_block.insn_count,
                            [
                                (dex.type_descriptor(t), addr)
                                for t, addr in try_block.handlers
                            ],
                            try_block.catch_all,
                        )
                    )
            self.method_store.ensure(record)
            collected.method_signatures.append(method.ref.signature)
        # setdefault, not assignment: a replay thread may already have
        # linked this class (and recorded init state on its object).
        self.classes.setdefault(klass.descriptor, collected)

    def on_class_initialized(self, klass) -> None:
        collected = self.classes.get(klass.descriptor)
        if collected is None:
            return
        collected.initialized = True
        defaults = getattr(klass, "_static_value_defaults", None) or {}
        for collected_field in collected.fields:
            if collected_field.name in defaults:
                collected_field.static_value = _encode_static(
                    defaults[collected_field.name]
                )

    # -- bytecode collection (Algorithm 1) -------------------------------------

    def on_method_enter(self, frame) -> None:
        method = frame.method
        if method.declaring_class.source_dex is None or method.code is None:
            return
        code = method.code
        self._active_trees[id(frame)] = CollectionTree(
            method.ref.signature,
            code.registers_size,
            code.ins_size,
            code.outs_size,
        )

    def on_instruction(self, frame, dex_pc: int, ins) -> None:
        tree = self._active_trees.get(id(frame))
        if tree is None:
            return
        key = id(frame)
        self._frame_counts[key] = self._frame_counts.get(key, 0) + 1
        units = tuple(frame.code_units[dex_pc : dex_pc + ins.unit_count])
        payload_units = None
        if ins.opcode.fmt == "31t":
            target = dex_pc + ins.branch_target
            if 0 <= target < len(frame.code_units):
                count = payload_unit_count(frame.code_units, target)
                payload_units = tuple(frame.code_units[target : target + count])
        symbol = self._resolve_symbol(frame, ins)
        tree.observe(CollectedInstruction(dex_pc, units, payload_units, symbol))

    @staticmethod
    def _resolve_symbol(frame, ins) -> str | None:
        """Resolve the pool reference to its symbolic form (JIT collection
        of the "related objects" — string / type / field / method)."""
        kind = ins.opcode.index_kind
        if kind is IndexKind.NONE:
            return None
        dex = frame.method.declaring_class.source_dex
        index = ins.pool_index
        if kind is IndexKind.STRING:
            return dex.string(index)
        if kind is IndexKind.TYPE:
            return dex.type_descriptor(index)
        if kind is IndexKind.FIELD:
            return dex.field_ref(index).signature
        return dex.method_ref(index).signature

    def on_method_exit(self, frame, result) -> None:
        tree = self._active_trees.pop(id(frame), None)
        if tree is None:
            return
        observed = self._frame_counts.pop(id(frame), 0)
        if observed:
            with self._stats_lock:
                self.instructions_observed += observed
        if tree.root.il:
            self.method_store.add_tree(tree.method_signature, tree)

    # -- reflection (§IV-D) -------------------------------------------------------

    def on_reflective_call(self, frame, target_method, receiver, args) -> None:
        if frame is None:
            return
        caller = frame.method
        if caller.declaring_class.source_dex is None:
            return
        key = (caller.ref.signature, frame.dex_pc)
        site = self.reflection_sites.get(key)
        if site is None:
            # setdefault keeps the race between concurrent replays
            # benign: whichever site object wins, every thread adds its
            # target to that one.
            site = self.reflection_sites.setdefault(
                key, ReflectionSite(caller.ref.signature, frame.dex_pc)
            )
        site.add_target(target_method.ref.signature, target_method.is_static)

    # -- deltas (process-parallel exploration) -------------------------------

    def delta_dict(self) -> dict:
        """Everything this collector holds, as a JSON-safe value.

        The unit a replay ships back to the engine: a private
        per-replay collector serialises itself and the engine absorbs
        the deltas strictly in pop order, so the merged collector is
        identical no matter which backend or worker count executed the
        replays.  Instruction counts still sitting in per-frame
        buckets (a frame that never exited because the run crashed)
        are deliberately excluded, matching what a directly-attached
        collector would have folded in.
        """
        return {
            "classes": [c.to_dict() for c in self.classes.values()],
            "methods": [
                {
                    "signature": record.signature,
                    "class": record.class_desc,
                    "name": record.name,
                    "params": list(record.param_descs),
                    "return": record.return_desc,
                    "access": record.access_flags,
                    "native": record.is_native,
                    "registers": record.registers_size,
                    "ins": record.ins_size,
                    "outs": record.outs_size,
                    "tries": [t.to_dict() for t in record.tries],
                    "trees": [t.to_dict() for t in record.trees],
                }
                for record in self.method_store.records.values()
            ],
            "reflection": [
                {
                    "caller": site.caller_signature,
                    "dex_pc": site.dex_pc,
                    "targets": [
                        {"signature": sig, "static": site.target_static[sig]}
                        for sig in site.targets
                    ],
                }
                for site in self.reflection_sites.values()
            ],
            "instructions_observed": self.instructions_observed,
        }

    def absorb(self, delta: dict) -> None:
        """Merge one replay's delta into this collector.

        The merge rules mirror what a directly-attached shared
        collector does event-by-event — classes keyed by descriptor,
        method records by signature with fingerprint-deduped trees,
        reflection targets unioned in first-observed order — except
        that here the order is the engine's deterministic merge order
        rather than thread-completion order.  A delta that initialized
        a class carries its real static values, so it overwrites
        link-time defaults (and, like a later serial run re-entering
        ``<clinit>``, any earlier values).
        """
        for entry in delta.get("classes", ()):
            collected = self.classes.get(entry["descriptor"])
            if collected is None:
                self.classes[entry["descriptor"]] = \
                    CollectedClass.from_dict(entry)
            else:
                known = set(collected.method_signatures)
                collected.method_signatures.extend(
                    sig for sig in entry["methods"] if sig not in known
                )
                if entry["initialized"]:
                    collected.initialized = True
                    values = {f["name"]: tuple(f["value"])
                              for f in entry["fields"]}
                    for collected_field in collected.fields:
                        if collected_field.name in values:
                            collected_field.static_value = \
                                values[collected_field.name]
        for entry in delta.get("methods", ()):
            record = self.method_store.get(entry["signature"])
            if record is None:
                record = self.method_store.ensure(
                    MethodRecord(
                        signature=entry["signature"],
                        class_desc=entry["class"],
                        name=entry["name"],
                        param_descs=tuple(entry["params"]),
                        return_desc=entry["return"],
                        access_flags=entry["access"],
                        is_native=entry["native"],
                        registers_size=entry["registers"],
                        ins_size=entry["ins"],
                        outs_size=entry["outs"],
                        tries=[CollectedTry.from_dict(t)
                               for t in entry["tries"]],
                    )
                )
            for tree_data in entry["trees"]:
                record.add_tree(CollectionTree.from_dict(tree_data))
        for entry in delta.get("reflection", ()):
            key = (entry["caller"], entry["dex_pc"])
            site = self.reflection_sites.setdefault(
                key, ReflectionSite(entry["caller"], entry["dex_pc"])
            )
            for target in entry["targets"]:
                site.add_target(target["signature"], target["static"])
        observed = delta.get("instructions_observed", 0)
        if observed:
            with self._stats_lock:
                self.instructions_observed += observed

    # -- summary ---------------------------------------------------------------

    def stats(self) -> dict:
        executed = self.method_store.executed_records()
        return {
            "classes_collected": len(self.classes),
            "methods_linked": len(self.method_store.records),
            "methods_executed": len(executed),
            "unique_trees": sum(len(r.trees) for r in executed),
            "divergent_methods": sum(
                1
                for r in executed
                if any(t.has_divergence() for t in r.trees)
            ),
            "instructions_observed": self.instructions_observed,
            "collected_instructions": self.method_store.total_collected_instructions(),
            "reflection_sites": len(self.reflection_sites),
        }


def _encode_static(value) -> tuple:
    """Encode a VM static value into a serialisable tagged tuple."""
    if value is None:
        return ("null",)
    if isinstance(value, VmString):
        return ("string", value.value)
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, int):
        return ("int", value)
    if isinstance(value, float):
        return ("float", value)
    return ("null",)
