"""End-to-end DexLego pipeline (paper Figure 1), as composed stages.

:class:`Pipeline` chains the four first-class stages of
:mod:`repro.core.stages` — collect → reassemble → verify → repack —
under one :class:`~repro.core.config.RevealConfig`, recording per-stage
wall-clock timings and notifying an optional observer after every
stage.  Because the stages are separable, the pipeline also exposes
suffix entry points: :meth:`Pipeline.collect` runs only the on-device
half, and :func:`reveal_from_archive` runs only the offline half over
previously saved collection files (re-run reassembly after a
reassembler fix without re-driving the app).

:class:`DexLego` and :func:`reveal_apk` remain as thin facades so the
paper-shaped call sites — ``DexLego(run_budget=...).reveal(apk)`` —
keep working unchanged.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.collection_files import PREDECODE_INDEX_FILE, CollectionArchive
from repro.core.config import RevealConfig, resolve_config
from repro.core.force_execution import ForceExecutionReport
from repro.core.stages import (
    STAGE_COLLECT,
    STAGE_REASSEMBLE,
    STAGE_REPACK,
    STAGE_VERIFY,
    CollectResult,
    CollectStage,
    ReassembleStage,
    RepackStage,
    StageEvent,
    VerifyStage,
)
from repro.dex.structures import DexFile
from repro.errors import StageError
from repro.runtime.apk import Apk
from repro.runtime.device import DeviceProfile

logger = logging.getLogger(__name__)

#: Observer signature: called once per finished (or failed) stage.
PipelineObserver = Callable[[StageEvent], None]


@dataclass
class RevealResult:
    """Everything DexLego produced for one application.

    Fields:

    * ``revealed_apk`` — the repacked application whose ``classes.dex``
      is the reassembled DEX (the artefact handed to static analyzers).
      ``None`` for archive-only runs with no original APK to repack.
    * ``reassembled_dex`` — the offline-reassembled DEX after a binary
      round-trip and verification.
    * ``archive`` — the collection files (Figure 2's five on-disk
      intermediates plus reflection records).
    * ``collector_stats`` — :meth:`DexLegoCollector.stats` snapshot:
      classes/methods/instructions observed during the drive (empty for
      archive-only runs, where no collector was live).
    * ``force_report`` — force-execution iteration report when the code
      coverage improvement module ran, else ``None``.
    * ``crashed`` / ``crash_reason`` — the drive died with a VM crash or
      uncaught application throw; collection up to that point is kept.
    * ``budget_exhausted`` — the interpreter step budget expired before
      the drive finished; the reveal covers only the executed prefix.
    * ``stage_timings`` — wall-clock seconds per executed stage, keyed
      by stage name (``collect``/``reassemble``/``verify``/``repack``).
    * ``index_stats`` — corpus-index dedup accounting when
      ``RevealConfig.index_dir`` is set (bodies replayed vs emitted,
      methods the corpus already knew); empty otherwise.
    * ``cluster_stats`` — auto-labeling verdict when
      ``RevealConfig.cluster_dir`` is set (family, per-method known /
      near-miss counts, nearest-known-method evidence); empty
      otherwise.
    """

    revealed_apk: Apk | None
    reassembled_dex: DexFile
    archive: CollectionArchive
    collector_stats: dict
    force_report: ForceExecutionReport | None = None
    crashed: bool = False
    crash_reason: str = ""
    budget_exhausted: bool = False
    stage_timings: dict[str, float] = field(default_factory=dict)
    index_stats: dict = field(default_factory=dict)
    cluster_stats: dict = field(default_factory=dict)

    @property
    def dump_size_bytes(self) -> int:
        return self.archive.total_size_bytes()


class Pipeline:
    """Stage conductor: one config, four stages, timed and observable."""

    def __init__(
        self,
        config: RevealConfig | None = None,
        observer: PipelineObserver | None = None,
        wave_observer=None,
        index=None,
        cluster=None,
    ) -> None:
        self.config = config or RevealConfig()
        self.observer = observer
        #: Optional subsystems this pipeline had to bypass (name ->
        #: reason).  A corrupt or foreign-version index/cluster
        #: directory degrades to running without that store — dedup and
        #: labeling are optimisations, never prerequisites for a reveal.
        self.degraded: dict[str, str] = {}
        if index is None and self.config.index_dir is not None:
            # Lazy import keeps repro.core free of a module-level
            # dependency on repro.index (which imports back into core).
            from repro.index.corpus import CorpusIndex

            try:
                index = CorpusIndex(self.config.index_dir)
            except (OSError, ValueError) as exc:
                self._note_degraded("index", exc)
        self.index = index
        if cluster is None and self.config.cluster_dir is not None:
            # Same lazy, one-way rule for repro.cluster.
            from repro.cluster.store import ClusterStore

            try:
                cluster = ClusterStore(self.config.cluster_dir)
            except (OSError, ValueError) as exc:
                self._note_degraded("cluster", exc)
        self.cluster = cluster
        self.collect_stage = CollectStage(self.config,
                                          wave_observer=wave_observer,
                                          index=index)
        self.reassemble_stage = ReassembleStage(index=index)
        self.verify_stage = VerifyStage()
        self.repack_stage = RepackStage()

    def _note_degraded(self, subsystem: str, reason) -> None:
        if isinstance(reason, Exception):
            reason = f"{type(reason).__name__}: {reason}"
        self.degraded[subsystem] = reason
        logger.warning(
            "%s unavailable (%s); revealing without it",
            subsystem, reason)

    def _load_archive(self, directory: str,
                      strict: bool) -> CollectionArchive:
        """Load an archive directory; in non-strict (service) mode a
        foreign predecode index — pure warm-start state — degrades to a
        cold start instead of failing the run.  The exploration
        frontier is correctness-bearing and stays strict either way."""
        archive = CollectionArchive.load(directory, strict=strict)
        if not strict:
            predecode_path = os.path.join(directory, PREDECODE_INDEX_FILE)
            if os.path.exists(predecode_path) \
                    and archive.predecode_index() is None:
                self._note_degraded(
                    "predecode",
                    f"foreign predecode index at {predecode_path} dropped")
        return archive

    # -- stage execution ----------------------------------------------------

    def _timed(self, stage: str, timings: dict[str, float], fn, *args):
        started = time.perf_counter()
        try:
            result = fn(*args)
        except StageError as err:
            duration = time.perf_counter() - started
            timings[stage] = duration
            self._notify(StageEvent(stage, duration, ok=False,
                                    error=str(err.cause)))
            raise
        duration = time.perf_counter() - started
        timings[stage] = duration
        self._notify(StageEvent(stage, duration))
        return result

    def _notify(self, event: StageEvent) -> None:
        if self.observer is not None:
            self.observer(event)

    # -- entry points -------------------------------------------------------

    def collect(self, apk: Apk, drive=None,
                timings: dict[str, float] | None = None) -> CollectResult:
        """The on-device half only: drive the app, return the archive."""
        timings = timings if timings is not None else {}
        return self._timed(STAGE_COLLECT, timings,
                           self.collect_stage.run, apk, drive)

    def run(self, apk: Apk, drive=None) -> RevealResult:
        """The full Figure-1 pipeline for one application."""
        timings: dict[str, float] = {}
        collected = self.collect(apk, drive, timings=timings)
        return self._finish_run(apk, collected, timings)

    def resume(self, apk: Apk, source: "CollectionArchive | str | os.PathLike",
               drive=None, strict: bool = True) -> RevealResult:
        """Continue an interrupted force-execution exploration.

        ``source`` is a saved collection archive (or directory) whose
        ``exploration_state.json`` carries the frontier of a previous
        run; collection restarts *from that frontier* — no baseline
        re-drive, dedup set intact — then the offline half runs as
        usual.  Raises ``ValueError`` when the archive has no
        exploration state to resume.  ``strict=False`` is the service's
        degradation mode: a foreign predecode index is dropped (cold
        decode, ``degraded`` noted) instead of failing the resume.
        """
        if isinstance(source, (str, os.PathLike)):
            archive = self._load_archive(os.fspath(source), strict)
        else:
            archive = source
        state = archive.exploration_state()
        if state is None:
            raise ValueError(
                "archive carries no exploration_state.json to resume; "
                "run collection with use_force_execution first"
            )
        timings: dict[str, float] = {}
        collected = self._timed(STAGE_COLLECT, timings,
                                self.collect_stage.run, apk, drive, state,
                                archive.predecode_index())
        # The session's collector saw only this session's replays; merge
        # with the archive being resumed so code executed only by the
        # earlier session (baseline drive, prior replays) stays revealed
        # — and a no-op resume (empty frontier) degrades to the saved
        # archive instead of clobbering it with empty collection files.
        collected.archive = CollectionArchive.merged(archive,
                                                     collected.archive)
        return self._finish_run(apk, collected, timings)

    def _finish_run(self, apk: Apk, collected: CollectResult,
                    timings: dict[str, float]) -> RevealResult:
        """Shared archive-persistence + offline suffix after collection."""
        archive = collected.archive
        if self.config.archive_dir is not None:
            # Prove the offline boundary: serialise to disk, reload.
            # Persistence failures belong to the collect stage (its
            # output could not be written) and surface as a StageError;
            # no extra observer event — the stage itself already
            # notified once, and the contract is one event per stage.
            try:
                archive.save(self.config.archive_dir)
                archive = CollectionArchive.load(self.config.archive_dir)
            except OSError as exc:
                raise StageError(STAGE_COLLECT, exc) from exc
        dex, revealed = self._offline(archive, apk, timings)
        return RevealResult(
            revealed_apk=revealed,
            reassembled_dex=dex,
            archive=archive,
            collector_stats=collected.collector_stats,
            force_report=collected.force_report,
            crashed=collected.crashed,
            crash_reason=collected.crash_reason,
            budget_exhausted=collected.budget_exhausted,
            stage_timings=timings,
            index_stats=self._index_stats(),
            cluster_stats=self._cluster_stats(archive, apk.package),
        )

    def reveal_from_archive(
        self,
        source: CollectionArchive | str | os.PathLike,
        apk: Apk | None = None,
        strict: bool = True,
    ) -> RevealResult:
        """The offline half only: saved collection files → verified DEX.

        ``source`` is a :class:`CollectionArchive` or a directory it was
        saved to.  When ``apk`` is provided the DEX is also repacked
        into a revealed application; otherwise ``revealed_apk`` is
        ``None`` and the reassembled DEX is the product.  ``strict``
        as in :meth:`resume`.
        """
        if isinstance(source, (str, os.PathLike)):
            archive = self._load_archive(os.fspath(source), strict)
        else:
            archive = source
        timings: dict[str, float] = {}
        dex, revealed = self._offline(archive, apk, timings)
        return RevealResult(
            revealed_apk=revealed,
            reassembled_dex=dex,
            archive=archive,
            collector_stats={},
            stage_timings=timings,
            index_stats=self._index_stats(),
            cluster_stats=self._cluster_stats(
                archive, apk.package if apk is not None else None),
        )

    def _offline(
        self,
        archive: CollectionArchive,
        apk: Apk | None,
        timings: dict[str, float],
    ) -> tuple[DexFile, Apk | None]:
        """Shared reassemble → verify → (repack) suffix."""
        dex = self._timed(STAGE_REASSEMBLE, timings,
                          self.reassemble_stage.run, archive,
                          apk.package if apk is not None else None,
                          self.config.archive_dir)
        dex = self._timed(STAGE_VERIFY, timings, self.verify_stage.run, dex)
        revealed = None
        if apk is not None:
            revealed = self._timed(STAGE_REPACK, timings,
                                   self.repack_stage.run, apk, dex)
        return dex, revealed

    def _index_stats(self) -> dict:
        """Merged dedup accounting from the index-aware stages."""
        if self.index is None:
            return {}
        stats = dict(self.collect_stage.last_index_probe)
        stats.update(self.reassemble_stage.last_index_stats)
        return stats

    def _cluster_stats(self, archive: CollectionArchive,
                       app_id: str | None) -> dict:
        """Auto-label this reveal, then absorb it for future labeling.

        Labeling runs *before* registration so the reveal never matches
        itself; the app-id filter in the labeler guards the re-reveal
        case.  Advisory like the index probe: failures degrade to no
        labels, never a failed reveal.
        """
        if self.cluster is None:
            return {}
        from repro.cluster.labels import AutoLabeler

        app = app_id or "<unknown-app>"
        records = archive.method_store().executed_records()
        try:
            labeler = AutoLabeler(self.cluster, index=self.index)
            stats = labeler.label_records(records, app)
            self.cluster.register_records(app, records)
        except (OSError, ValueError):
            return {}
        return stats


class DexLego:
    """The DexLego system: JIT collection + offline reassembly.

    Back-compat facade over :class:`Pipeline`: the historical kwargs
    construct a :class:`RevealConfig`, or pass ``config=`` directly.
    """

    def __init__(
        self,
        device: DeviceProfile | None = None,
        use_force_execution: bool | None = None,
        run_budget: int | None = None,
        archive_dir: str | None = None,
        force_iterations: int | None = None,
        index_dir: str | None = None,
        cluster_dir: str | None = None,
        config: RevealConfig | None = None,
        observer: PipelineObserver | None = None,
        wave_observer=None,
        index=None,
        cluster=None,
    ) -> None:
        config = resolve_config(
            config,
            device=device,
            use_force_execution=use_force_execution,
            run_budget=run_budget,
            archive_dir=archive_dir,
            force_iterations=force_iterations,
            index_dir=index_dir,
            cluster_dir=cluster_dir,
        )
        self.config = config
        self.pipeline = Pipeline(config, observer=observer,
                                 wave_observer=wave_observer, index=index,
                                 cluster=cluster)

    # Attribute views kept for callers that read the old constructor
    # fields off the instance.

    @property
    def device(self) -> DeviceProfile:
        return self.config.device

    @property
    def use_force_execution(self) -> bool:
        return self.config.use_force_execution

    @property
    def run_budget(self) -> int:
        return self.config.run_budget

    @property
    def archive_dir(self) -> str | None:
        return self.config.archive_dir

    @property
    def force_iterations(self) -> int:
        return self.config.force_iterations

    # -- collection -----------------------------------------------------------

    def collect(self, apk: Apk, drive=None) -> CollectResult:
        """The on-device half: archive + drive outcome, nothing faked."""
        return self.pipeline.collect(apk, drive)

    # -- full pipeline -----------------------------------------------------------

    def reveal(self, apk: Apk, drive=None) -> RevealResult:
        return self.pipeline.run(apk, drive)

    def reveal_from_archive(
        self,
        source: CollectionArchive | str | os.PathLike,
        apk: Apk | None = None,
        strict: bool = True,
    ) -> RevealResult:
        return self.pipeline.reveal_from_archive(source, apk,
                                                 strict=strict)


def reveal_apk(apk: Apk, **kwargs) -> RevealResult:
    """Convenience one-shot: ``DexLego(**kwargs).reveal(apk)``."""
    return DexLego(**kwargs).reveal(apk)


def reveal_from_archive(
    source: CollectionArchive | str | os.PathLike,
    apk: Apk | None = None,
    config: RevealConfig | None = None,
    observer: PipelineObserver | None = None,
    strict: bool = True,
) -> RevealResult:
    """Standalone offline entry point: saved collection files in,
    verified (optionally repacked) DEX out — no runtime, no drive.
    ``strict=False`` opts into the graceful-degradation policy for the
    archive's *optional* payloads (a foreign predecode index is dropped
    instead of raising); exploration state is always validated."""
    return Pipeline(config, observer=observer).reveal_from_archive(
        source, apk, strict=strict)


def resume_exploration(
    source: CollectionArchive | str | os.PathLike,
    apk: Apk,
    config: RevealConfig | None = None,
    drive=None,
    observer: PipelineObserver | None = None,
    strict: bool = True,
) -> RevealResult:
    """Continue an interrupted force-execution run from a saved archive.

    The archive's ``exploration_state.json`` restores the scheduler
    frontier, covered-outcome map and dedup set; replays pick up where
    the previous session's budget stopped them (``config.max_paths``
    applies afresh to this session).
    """
    return Pipeline(config, observer=observer).resume(apk, source, drive,
                                                      strict=strict)
