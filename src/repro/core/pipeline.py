"""End-to-end DexLego pipeline (paper Figure 1).

``reveal`` executes the target APK inside the instrumented runtime
(just-in-time collection), optionally drives force execution as the code
coverage improvement module, writes the collection files, reassembles a
new DEX offline, verifies it, and swaps it into a copy of the original
APK — the "Revealed Application" handed to static analysis tools.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field

from repro.core.collection_files import CollectionArchive
from repro.core.collector import DexLegoCollector
from repro.core.force_execution import ForceExecutionEngine, ForceExecutionReport
from repro.core.reassembler import Reassembler
from repro.dex.reader import read_dex
from repro.dex.structures import DexFile
from repro.dex.verify import assert_valid
from repro.dex.writer import write_dex
from repro.errors import BudgetExceeded, VmCrash
from repro.runtime.apk import Apk
from repro.runtime.art import AndroidRuntime
from repro.runtime.device import NEXUS_5X, DeviceProfile
from repro.runtime.events import AppDriver, DriveReport
from repro.runtime.exceptions import VmThrow


@dataclass
class RevealResult:
    """Everything DexLego produced for one application.

    Fields:

    * ``revealed_apk`` — the repacked application whose ``classes.dex``
      is the reassembled DEX (the artefact handed to static analyzers).
    * ``reassembled_dex`` — the offline-reassembled DEX after a binary
      round-trip and verification.
    * ``archive`` — the collection files (Figure 2's five on-disk
      intermediates plus reflection records).
    * ``collector_stats`` — :meth:`DexLegoCollector.stats` snapshot:
      classes/methods/instructions observed during the drive.
    * ``force_report`` — force-execution iteration report when the code
      coverage improvement module ran, else ``None``.
    * ``crashed`` / ``crash_reason`` — the drive died with a VM crash or
      uncaught application throw; collection up to that point is kept.
    * ``budget_exhausted`` — the interpreter step budget expired before
      the drive finished; the reveal covers only the executed prefix.
    """

    revealed_apk: Apk
    reassembled_dex: DexFile
    archive: CollectionArchive
    collector_stats: dict
    force_report: ForceExecutionReport | None = None
    crashed: bool = False
    crash_reason: str = ""
    budget_exhausted: bool = False

    @property
    def dump_size_bytes(self) -> int:
        return self.archive.total_size_bytes()


class DexLego:
    """The DexLego system: JIT collection + offline reassembly."""

    def __init__(
        self,
        device: DeviceProfile = NEXUS_5X,
        use_force_execution: bool = False,
        run_budget: int = 2_000_000,
        archive_dir: str | None = None,
        force_iterations: int = 25,
    ) -> None:
        self.device = device
        self.use_force_execution = use_force_execution
        self.run_budget = run_budget
        self.archive_dir = archive_dir
        self.force_iterations = force_iterations

    # -- collection -----------------------------------------------------------

    def collect(self, apk: Apk, drive=None) -> tuple[DexLegoCollector, RevealResult]:
        collector = DexLegoCollector()
        force_report = None
        crashed = False
        crash_reason = ""
        budget_exhausted = False
        drive = drive or (lambda driver: driver.run_standard_session())
        if self.use_force_execution:
            engine = ForceExecutionEngine(
                apk,
                drive=drive,
                device=self.device,
                shared_listeners=[collector],
                run_budget=self.run_budget,
                max_iterations=self.force_iterations,
            )
            force_report = engine.run()
        else:
            runtime = AndroidRuntime(self.device, max_steps=self.run_budget)
            runtime.add_listener(collector)
            driver = AppDriver(runtime, apk)
            try:
                outcome = drive(driver)
            except BudgetExceeded:
                budget_exhausted = True
            except (VmCrash, VmThrow) as exc:
                crashed = True
                crash_reason = str(exc)
            else:
                # Drivers absorb VM failures into their DriveReport
                # (run_standard_session and launch both do); fold those
                # flags into the reveal result rather than losing them.
                if isinstance(outcome, DriveReport):
                    crashed = outcome.crashed
                    crash_reason = outcome.crash_reason
                    budget_exhausted = outcome.budget_exhausted
        partial = RevealResult(
            revealed_apk=apk,
            reassembled_dex=DexFile(),
            archive=CollectionArchive.from_collector(collector),
            collector_stats=collector.stats(),
            force_report=force_report,
            crashed=crashed,
            crash_reason=crash_reason,
            budget_exhausted=budget_exhausted,
        )
        return collector, partial

    # -- full pipeline -----------------------------------------------------------

    def reveal(self, apk: Apk, drive=None) -> RevealResult:
        collector, result = self.collect(apk, drive)
        archive = result.archive
        if self.archive_dir is not None:
            # Prove the offline boundary: serialise to disk, reload.
            archive.save(self.archive_dir)
            archive = CollectionArchive.load(self.archive_dir)

        reassembler = Reassembler(
            archive.collected_class_map(),
            archive.method_store(),
            archive.reflection_sites(),
        )
        dex = reassembler.reassemble()
        # Round-trip through the binary format and verify: the revealed DEX
        # must be a *valid* DEX file (paper §IV-C).
        dex = read_dex(write_dex(dex))
        assert_valid(dex)

        revealed = apk.clone()
        revealed.dex_files = [dex]  # merged: includes dynamically-loaded code
        result.revealed_apk = revealed
        result.reassembled_dex = dex
        result.archive = archive
        return result


def reveal_apk(apk: Apk, **kwargs) -> RevealResult:
    """Convenience one-shot: ``DexLego(**kwargs).reveal(apk)``."""
    return DexLego(**kwargs).reveal(apk)
