"""Collection files: the on-disk intermediate of Figure 2.

The paper's modified ART writes five kinds of files during execution —
class data, field data, method data, static values and bytecode — which
the offline reassembler later combines.  :class:`CollectionArchive`
implements that boundary: it serialises a collector's state to a
directory (or measures its size in memory for Table VI) and loads it back
for offline reassembly, proving collection and reassembly share no
in-process state.
"""

from __future__ import annotations

import json
import logging
import os

from repro import faults
from repro.core.collector import (
    CollectedClass,
    CollectedField,
    DexLegoCollector,
    ReflectionSite,
)
from repro.core.method_store import CollectedTry, MethodRecord, MethodStore
from repro.core.tree import CollectionTree
from repro.runtime.predecode import validate_predecode_index

CLASS_DATA_FILE = "class_data.json"
FIELD_DATA_FILE = "field_data.json"
METHOD_DATA_FILE = "method_data.json"
STATIC_VALUES_FILE = "static_values.json"
BYTECODE_FILE = "bytecode.json"
REFLECTION_FILE = "reflection.json"
EXPLORATION_STATE_FILE = "exploration_state.json"
PREDECODE_INDEX_FILE = "predecode_index.json"

logger = logging.getLogger(__name__)

ALL_FILES = (
    CLASS_DATA_FILE,
    FIELD_DATA_FILE,
    METHOD_DATA_FILE,
    STATIC_VALUES_FILE,
    BYTECODE_FILE,
    REFLECTION_FILE,
)

#: Files an archive may carry but reassembly does not require.
#: ``exploration_state.json`` is the force-execution frontier snapshot
#: (scheduler state, covered-outcome map, counters) that lets a resumed
#: run continue an interrupted exploration instead of restarting.
#: ``predecode_index.json`` is the serialised warm decode state
#: (:mod:`repro.runtime.predecode`) so the resuming session — and its
#: replay worker processes — warm-start instead of re-decoding.
OPTIONAL_FILES = (EXPLORATION_STATE_FILE, PREDECODE_INDEX_FILE)

#: Exploration-state format versions this build can hydrate.  Checked
#: eagerly on load (and again on access): a frontier written by a
#: different format must fail with one clear line *before* any
#: exploration state is rebuilt from it, not corrupt a resumed run.
SUPPORTED_EXPLORATION_STATE_VERSIONS = (1,)


class CollectionArchive:
    """Serialised collection output (the paper's "Collected Files")."""

    def __init__(self, payload: dict[str, str]) -> None:
        self._payload = payload  # filename -> JSON text

    # -- construction -----------------------------------------------------

    @classmethod
    def from_collector(cls, collector: DexLegoCollector) -> "CollectionArchive":
        class_data = []
        field_data = []
        static_values = []
        for collected in collector.classes.values():
            class_data.append(
                {
                    "descriptor": collected.descriptor,
                    "superclass": collected.superclass_desc,
                    "interfaces": list(collected.interface_descs),
                    "access": collected.access_flags,
                    "initialized": collected.initialized,
                    "methods": collected.method_signatures,
                }
            )
            for collected_field in collected.fields:
                field_data.append(
                    {
                        "class": collected.descriptor,
                        **collected_field.to_dict(),
                    }
                )
                static_values.append(
                    {
                        "class": collected.descriptor,
                        "field": collected_field.name,
                        "value": list(collected_field.static_value),
                    }
                )
        method_data = []
        bytecode = []
        for record in collector.method_store.records.values():
            method_data.append(
                {
                    "signature": record.signature,
                    "class": record.class_desc,
                    "name": record.name,
                    "params": list(record.param_descs),
                    "return": record.return_desc,
                    "access": record.access_flags,
                    "native": record.is_native,
                    "registers": record.registers_size,
                    "ins": record.ins_size,
                    "outs": record.outs_size,
                    "tries": [t.to_dict() for t in record.tries],
                }
            )
            for tree in record.trees:
                bytecode.append(tree.to_dict())
        reflection = [
            {
                "caller": site.caller_signature,
                "dex_pc": site.dex_pc,
                "targets": [
                    {"signature": sig, "static": site.target_static[sig]}
                    for sig in site.targets
                ],
            }
            for site in collector.reflection_sites.values()
        ]
        payload = {
            CLASS_DATA_FILE: json.dumps(class_data, indent=1),
            FIELD_DATA_FILE: json.dumps(field_data, indent=1),
            METHOD_DATA_FILE: json.dumps(method_data, indent=1),
            STATIC_VALUES_FILE: json.dumps(static_values, indent=1),
            BYTECODE_FILE: json.dumps(bytecode, indent=1),
            REFLECTION_FILE: json.dumps(reflection, indent=1),
        }
        return cls(payload)

    # -- persistence --------------------------------------------------------

    def save(self, directory: str) -> None:
        os.makedirs(directory, exist_ok=True)
        for name, text in self._payload.items():
            # Atomic per file: a crash mid-save can lose whole files
            # (load will say which) but never leaves a half-written one
            # masquerading as collected data.
            faults.atomic_write_text(os.path.join(directory, name), text,
                                     site="archive.save")
        # Optional files this archive does not carry must not survive
        # from an earlier save — a stale exploration_state.json would
        # resurrect a foreign frontier on the next load/resume.
        for name in OPTIONAL_FILES:
            if name not in self._payload:
                path = os.path.join(directory, name)
                if os.path.exists(path):
                    os.remove(path)

    @classmethod
    def load(cls, directory: str,
             strict: bool = True) -> "CollectionArchive":
        faults.check("archive.load")
        payload = {}
        for name in ALL_FILES:
            path = os.path.join(directory, name)
            with open(path, encoding="utf-8") as fh:
                payload[name] = fh.read()
        for name in OPTIONAL_FILES:
            path = os.path.join(directory, name)
            if os.path.exists(path):
                with open(path, encoding="utf-8") as fh:
                    payload[name] = fh.read()
        archive = cls(payload)
        # Version-validate the stateful optional files *now*: every
        # consumer that hydrates exploration state (reassemble CLI,
        # resume, reveal_from_archive) goes through load, so a foreign
        # format fails here with one line instead of deep in a resume.
        # The exploration frontier is correctness-bearing and always
        # strict; the predecode index is a pure warm-start optimisation,
        # so ``strict=False`` (the service's degradation mode) drops a
        # foreign or unreadable one with a warning instead of failing
        # the load.
        archive.exploration_state()
        try:
            archive.predecode_index()
        except ValueError:
            if strict:
                raise
            logger.warning(
                "dropping unreadable predecode index from archive at %s "
                "(cold decode instead of warm start)", directory)
            archive._payload.pop(PREDECODE_INDEX_FILE, None)
        return archive

    def total_size_bytes(self) -> int:
        """Dump-file size (Table VI's "Dump File Size" column).

        Counts only the Figure-2 collection files; optional
        bookkeeping (the exploration-state snapshot) is not part of the
        paper's metric.
        """
        return sum(
            len(text.encode("utf-8"))
            for name, text in self._payload.items()
            if name not in OPTIONAL_FILES
        )

    # -- merging (resume) ---------------------------------------------------

    @classmethod
    def merged(cls, base: "CollectionArchive",
               update: "CollectionArchive") -> "CollectionArchive":
        """Union of two archives: everything either session collected.

        A resumed exploration collects only its own session's runs, so
        its archive must be merged with the archive it resumed from or
        code executed only by the earlier session (the baseline drive,
        prior replays) would vanish from the reveal.  Keys are unioned
        — classes by descriptor, methods by signature, fields and
        static values by (class, name), reflection sites by (caller,
        pc) with targets unioned, bytecode trees with exact duplicates
        dropped.  On conflicts ``update`` wins, except class-init state
        and static values, where the side that actually ran ``<clinit>``
        wins.  The exploration state is ``update``'s (it supersedes the
        frontier it was resumed from).
        """
        base_classes = {e["descriptor"]: e for e in base.classes()}
        new_classes = {e["descriptor"]: e for e in update.classes()}
        merged_classes = []
        for desc in list(base_classes) + \
                [d for d in new_classes if d not in base_classes]:
            old = base_classes.get(desc)
            new = new_classes.get(desc)
            if old is None or new is None:
                merged_classes.append(old or new)
                continue
            entry = dict(new)
            entry["initialized"] = old["initialized"] or new["initialized"]
            known_methods = set(new["methods"])
            entry["methods"] = list(new["methods"]) + [
                m for m in old["methods"] if m not in known_methods
            ]
            merged_classes.append(entry)
        # Whichever side initialized a class carries its real static
        # values; the other side only has link-time defaults.
        def initialized_side(desc: str) -> str:
            old = base_classes.get(desc)
            new = new_classes.get(desc)
            if new is not None and new["initialized"]:
                return "update"
            if old is not None and old["initialized"]:
                return "base"
            return "update" if new is not None else "base"

        def merge_keyed(base_entries, update_entries, key_of):
            chosen = {}
            order = []
            for origin, entries in (("base", base_entries),
                                    ("update", update_entries)):
                for entry in entries:
                    key = key_of(entry)
                    if key not in chosen:
                        order.append(key)
                        chosen[key] = entry
                    elif origin == initialized_side(entry["class"]):
                        chosen[key] = entry
            return [chosen[key] for key in order]

        fields = merge_keyed(base.fields(), update.fields(),
                             lambda e: (e["class"], e["name"]))
        statics = merge_keyed(base.static_values(), update.static_values(),
                              lambda e: (e["class"], e["field"]))
        methods = {}
        for entry in json.loads(base._payload[METHOD_DATA_FILE]) + \
                json.loads(update._payload[METHOD_DATA_FILE]):
            methods[entry["signature"]] = entry
        seen_trees = set()
        bytecode = []
        for tree in json.loads(base._payload[BYTECODE_FILE]) + \
                json.loads(update._payload[BYTECODE_FILE]):
            digest = json.dumps(tree, sort_keys=True)
            if digest not in seen_trees:
                seen_trees.add(digest)
                bytecode.append(tree)
        reflection = {}
        for entry in json.loads(base._payload[REFLECTION_FILE]) + \
                json.loads(update._payload[REFLECTION_FILE]):
            key = (entry["caller"], entry["dex_pc"])
            site = reflection.get(key)
            if site is None:
                reflection[key] = {
                    "caller": entry["caller"],
                    "dex_pc": entry["dex_pc"],
                    "targets": list(entry["targets"]),
                }
            else:
                known = {t["signature"] for t in site["targets"]}
                site["targets"].extend(
                    t for t in entry["targets"] if t["signature"] not in known
                )
        payload = {
            CLASS_DATA_FILE: json.dumps(merged_classes, indent=1),
            FIELD_DATA_FILE: json.dumps(fields, indent=1),
            METHOD_DATA_FILE: json.dumps(list(methods.values()), indent=1),
            STATIC_VALUES_FILE: json.dumps(statics, indent=1),
            BYTECODE_FILE: json.dumps(bytecode, indent=1),
            REFLECTION_FILE: json.dumps(list(reflection.values()), indent=1),
        }
        archive = cls(payload)
        archive.set_exploration_state(update.exploration_state())
        # Warm decode state: the update session re-exported its stores
        # after running, so its index supersedes; an update without one
        # (e.g. a no-op resume) keeps the base's warmth.
        archive.set_predecode_index(update.predecode_index()
                                    or base.predecode_index())
        return archive

    # -- exploration state (force-execution resume) -------------------------

    def exploration_state(self) -> dict | None:
        """The serialised force-execution frontier, or None.

        Raises ``ValueError`` (one line) when the archive carries a
        frontier in a format version this build cannot hydrate.
        """
        text = self._payload.get(EXPLORATION_STATE_FILE)
        if text is None:
            return None
        state = json.loads(text)
        version = state.get("version")
        if version not in SUPPORTED_EXPLORATION_STATE_VERSIONS:
            raise ValueError(
                f"unsupported exploration state version {version!r} in "
                f"{EXPLORATION_STATE_FILE} (this build reads "
                f"{SUPPORTED_EXPLORATION_STATE_VERSIONS})"
            )
        return state

    def set_exploration_state(self, state: dict | None) -> None:
        """Attach (or clear) the frontier snapshot carried by save/load."""
        if state is None:
            self._payload.pop(EXPLORATION_STATE_FILE, None)
        else:
            self._payload[EXPLORATION_STATE_FILE] = json.dumps(state, indent=1)

    # -- predecode index (warm decode state) --------------------------------

    def predecode_index(self) -> dict | None:
        """The serialised warm decode state, or None.

        Raises ``ValueError`` on a foreign index format version — warm
        state is an optimisation, but silently adopting entries whose
        layout this build misreads would be a correctness bug.
        """
        text = self._payload.get(PREDECODE_INDEX_FILE)
        if text is None:
            return None
        return validate_predecode_index(json.loads(text))

    def set_predecode_index(self, index: dict | None) -> None:
        """Attach (or clear) the warm decode state carried by save/load."""
        if index is None:
            self._payload.pop(PREDECODE_INDEX_FILE, None)
        else:
            self._payload[PREDECODE_INDEX_FILE] = json.dumps(index, indent=1)

    # -- deserialisation into reassembler inputs ----------------------------------

    def classes(self) -> list[dict]:
        return json.loads(self._payload[CLASS_DATA_FILE])

    def fields(self) -> list[dict]:
        return json.loads(self._payload[FIELD_DATA_FILE])

    def static_values(self) -> list[dict]:
        return json.loads(self._payload[STATIC_VALUES_FILE])

    def method_store(self) -> MethodStore:
        store = MethodStore()
        for entry in json.loads(self._payload[METHOD_DATA_FILE]):
            store.ensure(
                MethodRecord(
                    signature=entry["signature"],
                    class_desc=entry["class"],
                    name=entry["name"],
                    param_descs=tuple(entry["params"]),
                    return_desc=entry["return"],
                    access_flags=entry["access"],
                    is_native=entry["native"],
                    registers_size=entry["registers"],
                    ins_size=entry["ins"],
                    outs_size=entry["outs"],
                    tries=[CollectedTry.from_dict(t) for t in entry["tries"]],
                )
            )
        for tree_data in json.loads(self._payload[BYTECODE_FILE]):
            tree = CollectionTree.from_dict(tree_data)
            store.add_tree(tree.method_signature, tree)
        return store

    def reflection_sites(self) -> dict[tuple[str, int], ReflectionSite]:
        sites: dict[tuple[str, int], ReflectionSite] = {}
        for entry in json.loads(self._payload[REFLECTION_FILE]):
            site = ReflectionSite(entry["caller"], entry["dex_pc"])
            for target in entry["targets"]:
                site.add_target(target["signature"], target["static"])
            sites[(site.caller_signature, site.dex_pc)] = site
        return sites

    def collected_class_map(self) -> dict[str, CollectedClass]:
        """Rebuild CollectedClass objects (metadata + fields + values)."""
        by_desc: dict[str, CollectedClass] = {}
        for entry in self.classes():
            by_desc[entry["descriptor"]] = CollectedClass(
                descriptor=entry["descriptor"],
                superclass_desc=entry["superclass"],
                interface_descs=tuple(entry["interfaces"]),
                access_flags=entry["access"],
                initialized=entry["initialized"],
                method_signatures=list(entry["methods"]),
            )
        for entry in self.fields():
            collected = by_desc.get(entry["class"])
            if collected is not None:
                collected.fields.append(
                    CollectedField(
                        entry["name"],
                        entry["type"],
                        entry["access"],
                        tuple(entry["value"]),
                    )
                )
        return by_desc
