"""Process-shippable exploration replay: ReplaySpec in, TraceDelta out.

Force execution replays path files on isolated runtimes.  For replays
to leave the process — a worker pool, eventually a fleet — the unit of
work must be a *value*, not a closure over engine state.  This module
defines that boundary:

* :class:`ReplaySpec` — everything a fresh process needs to hydrate an
  isolated runtime and execute one replay: app identity and serialised
  APK bytes, the device profile, the path file (decision prefix plus
  flip), the per-replay step budget, and an optional predecode index
  (:mod:`repro.runtime.predecode`) so the worker warm-starts instead of
  re-decoding.  Compact, picklable, JSON-round-trippable.
* :class:`TraceDelta` — everything one replay produced: the ordered
  branch decisions, a serialised collector delta (classes, method
  trees, reflection targets, instruction counts), the steps consumed
  and the outcome flags.  The engine merges deltas strictly in pop
  order, which is the whole determinism contract: because *results*
  travel as values and *merging* is single-threaded and ordered, the
  covered-site set, collector stats and exploration order are
  bit-for-bit identical at any worker count on any backend.
* :func:`execute_replay` — the one replay body all backends share:
  hydrate (or borrow) an APK, build a fresh runtime + tracer + private
  collector, drive, and return the delta.  Serial and thread backends
  call it in-process against the engine's APK; the process backend
  calls it in a forked worker against a hydrated copy.

The module-level ``_process_worker_*`` functions are the process-pool
protocol (initializer + task); they live at module scope so the pool
can pickle references to them.  Workers are created with the ``fork``
start method: the process-wide native-library registry
(:data:`repro.runtime.apk.NATIVE_LIBRARY_REGISTRY`) is populated by
sample/packer generation in the parent and is inherited by forked
children, exactly like the batch service's process backend.
"""

from __future__ import annotations

import base64
import dataclasses
from collections import deque
from dataclasses import dataclass, field

from repro.core.collector import DexLegoCollector
from repro.core.exploration import BranchSite, Decision, PathFile
from repro.errors import BudgetExceeded, VmCrash
from repro.runtime.apk import Apk
from repro.runtime.art import AndroidRuntime
from repro.runtime.device import NEXUS_5X, DeviceProfile
from repro.runtime.events import AppDriver, DriveReport
from repro.runtime.exceptions import VmThrow
from repro.runtime.hooks import BranchController, RuntimeListener
from repro.runtime.predecode import warm_predecode

__all__ = [
    "BranchTraceListener",
    "ForcedPathController",
    "ReplaySpec",
    "TraceDelta",
    "execute_replay",
]


class BranchTraceListener(RuntimeListener):
    """Records the ordered conditional-branch decisions of one run."""

    def __init__(self) -> None:
        self.trace: list[Decision] = []

    def on_branch(self, frame, dex_pc: int, ins, taken: bool) -> None:
        method = frame.method
        if method.declaring_class.source_dex is None:
            return
        self.trace.append((method.ref.signature, dex_pc, taken))


class ForcedPathController(BranchController):
    """Forces the interpreter along a path file's decisions, in order."""

    def __init__(self, path: PathFile) -> None:
        self.queue: deque[Decision] = deque(path.decisions)
        self.mismatches = 0
        self.forced = 0

    def decide(self, frame, dex_pc: int, ins, concrete_taken: bool) -> bool | None:
        if not self.queue:
            return None  # past the UCB: free execution
        signature, expected_pc, outcome = self.queue[0]
        if (
            frame.method.declaring_class.source_dex is not None
            and frame.method.ref.signature == signature
            and dex_pc == expected_pc
        ):
            self.queue.popleft()
            self.forced += 1
            return outcome
        if frame.method.declaring_class.source_dex is not None:
            self.mismatches += 1
        return None

    @property
    def reached_target(self) -> bool:
        """True once every decision (including the flip) was forced."""
        return not self.queue


@dataclass
class ReplaySpec:
    """One replay as a value: what a fresh worker process hydrates.

    ``apk_bytes`` is the serialised application (``Apk.to_bytes``);
    ``app_id`` names it for error messages and affinity checks without
    deserialising.  ``path`` is ``None`` for a baseline (unforced) run.
    ``predecode_index`` optionally ships the exporting process's warm
    decode state (content-validated on adoption).  ``collect`` turns
    the per-replay collector off for engines that only measure
    coverage — the delta then carries no collector payload.
    """

    app_id: str
    apk_bytes: bytes
    device: DeviceProfile = NEXUS_5X
    path: PathFile | None = None
    step_budget: int = 2_000_000
    predecode_index: dict | None = None
    collect: bool = True

    def with_path(self, path: PathFile | None) -> "ReplaySpec":
        return dataclasses.replace(self, path=path)

    def hydrate(self) -> Apk:
        """Rebuild the application in this process, warm-started."""
        apk = Apk.from_bytes(self.apk_bytes)
        if self.predecode_index is not None:
            warm_predecode(apk.dex_files, self.predecode_index)
        return apk

    # -- JSON round trip ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "app_id": self.app_id,
            "apk_b64": base64.b64encode(self.apk_bytes).decode("ascii"),
            "device": dataclasses.asdict(self.device),
            "path": None if self.path is None else self.path.to_dict(),
            "step_budget": self.step_budget,
            "predecode_index": self.predecode_index,
            "collect": self.collect,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReplaySpec":
        path = data.get("path")
        return cls(
            app_id=data["app_id"],
            apk_bytes=base64.b64decode(data["apk_b64"]),
            device=DeviceProfile(**data["device"]),
            path=None if path is None else PathFile.from_dict(path),
            step_budget=data.get("step_budget", 2_000_000),
            predecode_index=data.get("predecode_index"),
            collect=bool(data.get("collect", True)),
        )


@dataclass
class TraceDelta:
    """What one replay produced, as a value the engine merges in order.

    ``trace`` is the run's ordered branch decisions; ``collector`` is a
    :meth:`DexLegoCollector.delta_dict` payload (or ``None`` when the
    spec disabled collection); ``steps`` is the interpreter steps the
    run consumed.  The flags mirror what the engine's in-process
    execution used to observe directly: budget exhaustion, a crash, how
    many decisions the controller forced and whether the flip itself
    was reached.  ``worker_lost`` marks a replay whose worker process
    died — the delta is empty and the engine counts the loss without
    failing the wave.
    """

    trace: list[Decision] = field(default_factory=list)
    collector: dict | None = None
    steps: int = 0
    budget_hit: bool = False
    crashed: bool = False
    forced: int = 0
    reached_target: bool = False
    worker_lost: bool = False

    def covered_sites(self) -> set[BranchSite]:
        """The branch sites this replay touched (either outcome)."""
        return {(signature, dex_pc) for signature, dex_pc, _ in self.trace}

    # -- JSON round trip ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "trace": [list(d) for d in self.trace],
            "collector": self.collector,
            "steps": self.steps,
            "budget_hit": self.budget_hit,
            "crashed": self.crashed,
            "forced": self.forced,
            "reached_target": self.reached_target,
            "worker_lost": self.worker_lost,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceDelta":
        return cls(
            trace=[(d[0], d[1], bool(d[2])) for d in data.get("trace", [])],
            collector=data.get("collector"),
            steps=data.get("steps", 0),
            budget_hit=bool(data.get("budget_hit", False)),
            crashed=bool(data.get("crashed", False)),
            forced=data.get("forced", 0),
            reached_target=bool(data.get("reached_target", False)),
            worker_lost=bool(data.get("worker_lost", False)),
        )


def execute_replay(
    spec: ReplaySpec,
    apk: Apk | None = None,
    drive=None,
    extra_listeners: tuple = (),
) -> TraceDelta:
    """The one replay body every backend shares.

    Builds an isolated runtime for ``spec`` and returns its delta.
    ``apk`` lets in-process backends reuse the engine's live object
    (sharing its decode stores) instead of deserialising; a worker
    process passes its hydrated copy.  ``drive`` and
    ``extra_listeners`` exist for the in-process backends only — a
    custom drive callable and live listeners cannot ship to another
    process, which is why the engine refuses to combine them with the
    process backend.
    """
    if apk is None:
        apk = spec.hydrate()
    runtime = AndroidRuntime(spec.device, max_steps=spec.step_budget)
    runtime.tolerate_exceptions = True
    controller = None
    if spec.path is not None:
        controller = ForcedPathController(spec.path)
        runtime.branch_controller = controller
    tracer = BranchTraceListener()
    runtime.add_listener(tracer)
    collector = DexLegoCollector() if spec.collect else None
    if collector is not None:
        runtime.add_listener(collector)
    for listener in extra_listeners:
        runtime.add_listener(listener)
    driver = AppDriver(runtime, apk)
    drive = drive or (lambda d: d.run_standard_session())
    budget_hit = crashed = False
    try:
        outcome = drive(driver)
    except BudgetExceeded:
        budget_hit = True
    except (VmCrash, VmThrow):
        # Native crashes (and any exception escaping the tolerant
        # interpreter) end the run but keep what was collected.
        crashed = True
    else:
        # Standard drivers absorb budget/crash endings into their
        # DriveReport instead of raising; fold those flags in so
        # starved replays are counted as such.
        if isinstance(outcome, DriveReport):
            budget_hit = outcome.budget_exhausted
            crashed = outcome.crashed
    return TraceDelta(
        trace=tracer.trace,
        collector=None if collector is None else collector.delta_dict(),
        steps=runtime.steps,
        budget_hit=budget_hit,
        crashed=crashed,
        forced=controller.forced if controller is not None else 0,
        reached_target=(controller.reached_target
                        if controller is not None else False),
    )


# -- process-pool protocol --------------------------------------------------
# One hydration per worker (the initializer), one replay per task.  The
# hydrated APK persists across tasks, so its shared decode stores stay
# warm for every replay the worker executes — the process-level
# equivalent of the engine reusing its own APK across a wave.

_WORKER_APK: Apk | None = None
_WORKER_SPEC: ReplaySpec | None = None


def _process_worker_init(spec: ReplaySpec) -> None:
    global _WORKER_APK, _WORKER_SPEC
    _WORKER_SPEC = spec
    _WORKER_APK = spec.hydrate()


def _process_worker_replay(path_json: str) -> TraceDelta:
    spec = _WORKER_SPEC.with_path(PathFile.from_json(path_json))
    return execute_replay(spec, apk=_WORKER_APK)
