"""Cross-app method-body dedup for the reassembler.

The reassembler's body emission (:meth:`Reassembler._emit_collected_body`)
is a pure function of the :class:`~repro.core.method_store.MethodRecord`
— *except* that every constant-pool reference is interned into the
output DEX at emission time, so the raw instruction stream it produces
is app-specific.  This module makes the emission portable:

* :func:`exact_method_digest` — a canonical hash of everything the
  emission depends on, with pool indices masked out of the raw units
  (the resolved *symbols* are the identity, not the indices).  Two
  records with equal digests produce byte-identical method bodies in
  any DEX.
* :class:`BodyWriter` — the single funnel all body-emission builder
  calls go through.  It forwards to the live
  :class:`~repro.dex.builder.MethodBuilder` and (when the body is
  cacheable) records each call as a JSON-safe *op* carrying symbols,
  never pool indices.
* :func:`replay_body` — re-applies a recorded op list against a fresh
  builder in another app's DEX, re-interning every symbol in the
  original call order.  Replay therefore performs the same builder and
  intern calls emission would, which is what makes the byte-identity
  guarantee hold by construction.

:class:`InMemoryBodyCache` is the minimal ``get_body``/``put_body``
store; :class:`repro.index.corpus.CorpusIndex` provides the persistent
one.  Bodies containing reflective-invoke rewrites are never cached —
bridge method numbering is app-global.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.method_store import MethodRecord
from repro.dex.normalize import Normalizer
from repro.dex.opcodes import IndexKind
from repro.dex.sigs import parse_field_signature, parse_method_signature

BODY_OPS_VERSION = 1

_KIND_TAGS = {
    IndexKind.STRING: "string",
    IndexKind.TYPE: "type",
    IndexKind.FIELD: "field",
    IndexKind.METHOD: "method",
}


# -- canonical digests -------------------------------------------------------


def _instruction_doc(collected) -> list:
    ins = collected.instruction
    if ins.opcode.index_kind is not IndexKind.NONE:
        operands = list(ins.with_pool_index(0).operands)
    else:
        operands = list(ins.operands)
    return [
        collected.dex_pc,
        ins.name,
        operands,
        list(collected.payload_units) if collected.payload_units else None,
        collected.symbol,
    ]


def _tree_doc(node) -> dict:
    return {
        "sm": [node.sm_start, node.sm_end],
        "il": [_instruction_doc(c) for c in node.il],
        "ch": [_tree_doc(child) for child in node.children],
    }


def exact_method_digest(record: MethodRecord) -> str:
    """SHA-256 over everything body emission reads from the record.

    Pool indices inside the raw units are masked (``with_pool_index(0)``)
    and the resolved symbols kept, so the digest is invariant across
    apps whose pools assign different indices to the same references —
    while register numbers, literals, branch offsets, tree structure,
    try blocks and frame sizes all stay identity.
    """
    doc = {
        "v": BODY_OPS_VERSION,
        "sig": record.signature,
        "access": record.access_flags,
        "frame": [record.registers_size, record.ins_size, record.outs_size],
        "params": list(record.param_descs),
        "ret": record.return_desc,
        "tries": [t.to_dict() for t in record.tries],
        "trees": [_tree_doc(tree.root) for tree in record.trees],
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def normalized_method_tokens(record: MethodRecord) -> list:
    """Register- and pool-index-insensitive token stream for a record.

    Walks the collection trees in storage order (node preorder, IL in
    ``dex_pc`` order) feeding one :class:`~repro.dex.normalize.Normalizer`
    whose first-use ordinals replace register numbers and symbols.
    """
    normalizer = Normalizer()
    tokens: list = [["sig", list(record.param_descs), record.return_desc,
                     record.ins_size]]

    def walk(node) -> None:
        tokens.append(["node", node.sm_start])
        for collected in sorted(node.il, key=lambda c: c.dex_pc):
            tokens.append(
                [collected.dex_pc]
                + normalizer.token(collected.instruction, collected.symbol,
                                   collected.payload_units)
            )
        for child in node.children:
            walk(child)

    for tree in record.trees:
        walk(tree.root)
    return tokens


def normalized_method_digest(record: MethodRecord) -> str:
    """SHA-256 of the normalized token stream (layout-sensitive)."""
    blob = json.dumps(normalized_method_tokens(record),
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def method_fuzzy_bytes(record: MethodRecord) -> bytes:
    """Byte stream for the fuzzy digest: normalized tokens sans dex_pc.

    Dropping the position makes the fuzzy digest tolerant of inserted /
    removed instructions shifting everything after them — the whole
    point of a locality hash.
    """
    stripped = [
        token[1:] if isinstance(token[0], int) else token
        for token in normalized_method_tokens(record)
    ]
    return json.dumps(stripped, separators=(",", ":")).encode("utf-8")


# -- recording writer --------------------------------------------------------


class BodyWriter:
    """Funnel for all body-emission builder calls, optionally recording.

    Every method forwards to the live builder immediately; when
    ``recording`` the call is also appended to :attr:`ops` in a
    symbolic, app-independent form (constant-pool references travel as
    ``(kind, symbol)``, instrument fields as their suffix).  A body
    that takes a non-portable path (reflective bridge invoke) calls
    :meth:`disable` and is simply not cached.
    """

    def __init__(self, reassembler, mb, record: MethodRecord,
                 recording: bool) -> None:
        self.reassembler = reassembler
        self.mb = mb
        self.record = record
        self.ops: list | None = [] if recording else None

    def _rec(self, op: list) -> None:
        if self.ops is not None:
            self.ops.append(op)

    def disable(self) -> None:
        self.ops = None

    # -- forwarded emitters -------------------------------------------------

    def raw(self, name: str, *operands: int) -> None:
        self.mb.raw(name, *operands)
        self._rec(["raw", name, list(operands)])

    def move(self, dst: int, src: int) -> None:
        self.mb.move(dst, src)
        self._rec(["move", dst, src])

    def move_object(self, dst: int, src: int) -> None:
        self.mb.move_object(dst, src)
        self._rec(["moveo", dst, src])

    def sym(self, name: str, kind: IndexKind, symbol: str,
            pre: list, post: list, outs: int = 0) -> None:
        """A pool-referencing instruction: intern now, record the symbol.

        ``pre``/``post`` are the register (and range-count) operands
        around the pool index — leading for 35c/3rc, trailing
        otherwise; at most one of them is non-empty.
        """
        mb = self.mb
        index = _intern(mb.dex, kind, symbol)
        mb.raw(name, *pre, index, *post)
        if outs:
            mb._outs = max(mb._outs, outs)
        self._rec(["sym", name, _KIND_TAGS[kind], symbol,
                   list(pre), list(post), outs])

    def ifield_read(self, suffix: str, reg: int) -> None:
        """``sget-boolean`` of an instrument field derived from the record.

        The field name is recomputed from the record's signature at
        replay time, which also re-registers it with the replaying
        reassembler — keeping the generated ``<clinit>`` complete.
        """
        from repro.core.reassembler import INSTRUMENT_CLASS

        name = self.reassembler._new_instrument_field(
            self.record.signature, suffix)
        self.mb.field_op("sget-boolean", reg,
                         f"{INSTRUMENT_CLASS}->{name}:Z")
        self._rec(["ifield", suffix, reg])

    def if_zero(self, cond: str, reg: int, label: str) -> None:
        self.mb.if_zero(cond, reg, label)
        self._rec(["ifz", cond, reg, label])

    def label(self, name: str) -> None:
        self.mb.label(name)
        self._rec(["label", name])

    def goto_(self, label: str) -> None:
        self.mb.goto_(label)
        self._rec(["goto", label])

    def branch(self, name: str, operands: tuple, label: str) -> None:
        self.mb._emit_branch(name, tuple(operands), label)
        self._rec(["br", name, list(operands), label])

    def packed_switch(self, reg: int, first_key: int,
                      labels: list[str]) -> None:
        self.mb.packed_switch(reg, first_key, labels)
        self._rec(["pswitch", reg, first_key, list(labels)])

    def sparse_switch(self, reg: int, cases: list[tuple[int, str]]) -> None:
        self.mb.sparse_switch(reg, cases)
        self._rec(["sswitch", reg, [[key, label] for key, label in cases]])

    def fill_array_data(self, reg: int, element_width: int,
                        values: list[int]) -> None:
        self.mb.fill_array_data(reg, element_width, values)
        self._rec(["fill", reg, element_width, list(values)])

    def try_range(self, start_label: str, end_label: str,
                  handlers: list[tuple[str | None, str]]) -> None:
        self.mb.try_range(start_label, end_label, handlers)
        self._rec(["try", start_label, end_label,
                   [[desc, label] for desc, label in handlers]])


def _intern(dex, kind: IndexKind, symbol: str) -> int:
    if kind is IndexKind.STRING:
        return dex.intern_string(symbol)
    if kind is IndexKind.TYPE:
        return dex.intern_type(symbol)
    if kind is IndexKind.FIELD:
        return dex.intern_field_ref(parse_field_signature(symbol))
    return dex.intern_method_ref(parse_method_signature(symbol))


_KIND_BY_TAG = {tag: kind for kind, tag in _KIND_TAGS.items()}


def replay_body(reassembler, class_builder, record: MethodRecord,
                ops: list) -> None:
    """Rebuild a method body from recorded ops in another app's DEX.

    The builder frame is reconstructed from the record (identical to
    the original's by digest equality), then each op re-performs the
    builder call the original emission made — including interning every
    symbol in the original order and re-registering instrument fields.
    """
    from repro.core.reassembler import INSTRUMENT_CLASS

    original_locals = record.registers_size - record.ins_size
    mb = class_builder.method(
        record.name,
        record.return_desc,
        record.param_descs,
        access=record.access_flags,
        locals_count=original_locals + 1,
    )
    mb._outs = max(mb._outs, record.outs_size)
    for op in ops:
        tag = op[0]
        if tag == "raw":
            mb.raw(op[1], *op[2])
        elif tag == "move":
            mb.move(op[1], op[2])
        elif tag == "moveo":
            mb.move_object(op[1], op[2])
        elif tag == "sym":
            _name, kind_tag, symbol, pre, post, outs = op[1:]
            index = _intern(mb.dex, _KIND_BY_TAG[kind_tag], symbol)
            mb.raw(_name, *pre, index, *post)
            if outs:
                mb._outs = max(mb._outs, outs)
        elif tag == "ifield":
            name = reassembler._new_instrument_field(record.signature, op[1])
            mb.field_op("sget-boolean", op[2],
                        f"{INSTRUMENT_CLASS}->{name}:Z")
        elif tag == "ifz":
            mb.if_zero(op[1], op[2], op[3])
        elif tag == "label":
            mb.label(op[1])
        elif tag == "goto":
            mb.goto_(op[1])
        elif tag == "br":
            mb._emit_branch(op[1], tuple(op[2]), op[3])
        elif tag == "pswitch":
            mb.packed_switch(op[1], op[2], list(op[3]))
        elif tag == "sswitch":
            mb.sparse_switch(op[1], [(key, label) for key, label in op[2]])
        elif tag == "fill":
            mb.fill_array_data(op[1], op[2], list(op[3]))
        elif tag == "try":
            mb.try_range(op[1], op[2],
                         [(desc, label) for desc, label in op[3]])
        else:
            raise ValueError(f"unknown body op {tag!r}")
    mb.build()


class InMemoryBodyCache:
    """Minimal ``get_body``/``put_body`` store (tests, single session)."""

    def __init__(self) -> None:
        self._bodies: dict[str, list] = {}

    def get_body(self, digest: str) -> list | None:
        return self._bodies.get(digest)

    def put_body(self, digest: str, ops: list) -> None:
        self._bodies.setdefault(digest, ops)

    def __len__(self) -> int:
        return len(self._bodies)
