"""Per-method storage of collected trees and metadata.

The paper keeps "only the unique trees" across multiple executions of a
method (§IV-A); :class:`MethodStore` deduplicates by tree fingerprint and
carries the structural metadata (register sizes, try blocks, access
flags) the reassembler needs to rebuild a method.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.tree import CollectionTree


@dataclass
class CollectedTry:
    """Snapshot of one try block (addresses in original dex_pc space)."""

    start_addr: int
    insn_count: int
    handlers: list[tuple[str, int]] = field(default_factory=list)
    catch_all: int | None = None

    def to_dict(self) -> dict:
        return {
            "start": self.start_addr,
            "count": self.insn_count,
            "handlers": [[t, a] for t, a in self.handlers],
            "catch_all": self.catch_all,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CollectedTry":
        return cls(
            data["start"],
            data["count"],
            [(t, a) for t, a in data["handlers"]],
            data["catch_all"],
        )


@dataclass
class MethodRecord:
    """Everything collected about one method."""

    signature: str
    class_desc: str
    name: str
    param_descs: tuple[str, ...]
    return_desc: str
    access_flags: int
    is_native: bool = False
    registers_size: int = 1
    ins_size: int = 0
    outs_size: int = 0
    tries: list[CollectedTry] = field(default_factory=list)
    trees: list[CollectionTree] = field(default_factory=list)
    _fingerprints: set = field(default_factory=set)
    # Guards the fingerprint check-then-append, which must stay atomic
    # when parallel force-execution replays share one collector; method
    # exit is cold enough that the lock is free in practice.
    _tree_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add_tree(self, tree: CollectionTree) -> bool:
        """Add a per-execution tree; returns False if it was a duplicate."""
        fingerprint = tree.fingerprint()
        with self._tree_lock:
            if fingerprint in self._fingerprints:
                return False
            self._fingerprints.add(fingerprint)
            self.trees.append(tree)
            return True

    @property
    def executed(self) -> bool:
        return bool(self.trees)

    def instruction_count(self) -> int:
        return sum(tree.instruction_count() for tree in self.trees)


class MethodStore:
    """signature -> MethodRecord for every linked method."""

    def __init__(self) -> None:
        self.records: dict[str, MethodRecord] = {}

    def ensure(self, record: MethodRecord) -> MethodRecord:
        # setdefault, not check-then-assign: re-linking must never
        # replace a record another replay thread already added trees to.
        return self.records.setdefault(record.signature, record)

    def get(self, signature: str) -> MethodRecord | None:
        return self.records.get(signature)

    def evict(self, signature: str) -> bool:
        """Drop one record entirely; True when something was removed.

        Used by corpus maintenance (an indexed method whose body now
        lives in the :class:`~repro.index.corpus.CorpusIndex` can be
        dropped from a long-lived store); a later re-link simply
        re-creates the record via :meth:`ensure`.
        """
        return self.records.pop(signature, None) is not None

    def __len__(self) -> int:
        return len(self.records)

    def add_tree(self, signature: str, tree: CollectionTree) -> bool:
        record = self.records.get(signature)
        if record is None:
            return False
        return record.add_tree(tree)

    def executed_records(self) -> list[MethodRecord]:
        return [r for r in self.records.values() if r.executed]

    def total_collected_instructions(self) -> int:
        return sum(r.instruction_count() for r in self.records.values())
