"""Collection tree: the data structure of paper Figure 3 / Algorithm 1.

Each execution of a method produces one :class:`CollectionTree`.  Nodes
hold an Instruction List (IL, first-execution order) and an Instruction
Index Map (IIM, ``dex_pc`` -> IL index).  A *divergence* — a different
instruction observed at an already-recorded ``dex_pc`` — forks a child
node (``sm_start``); the child *converges* back to its parent when an
instruction matching the parent's record reappears (``sm_end``).  Nested
self-modification simply nests nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dex.instructions import Instruction


@dataclass(frozen=True)
class CollectedInstruction:
    """One recorded instruction: position, raw units and optional payload.

    ``units`` (the raw encoding) is the identity used by ``SameIns``;
    ``payload_units`` snapshots switch/array data referenced by 31t
    instructions so the reassembler can re-materialise it; ``symbol`` is
    the constant-pool reference resolved at collection time (string value,
    type descriptor, field or method signature) — the "related objects"
    the paper collects alongside each instruction, which is what lets the
    offline reassembler re-intern references into a fresh DEX without the
    original constant pool.
    """

    dex_pc: int
    units: tuple[int, ...]
    payload_units: tuple[int, ...] | None = None
    symbol: str | None = None

    @property
    def instruction(self) -> Instruction:
        return Instruction.decode_at(list(self.units), 0)

    def same_ins(self, other_units: tuple[int, ...]) -> bool:
        return self.units == other_units


class TreeNode:
    """One node of the collection tree (paper Figure 3, left)."""

    __slots__ = ("il", "iim", "sm_start", "sm_end", "parent", "children")

    def __init__(self, parent: "TreeNode | None" = None, sm_start: int = 0) -> None:
        self.il: list[CollectedInstruction] = []
        self.iim: dict[int, int] = {}
        self.sm_start = sm_start
        self.sm_end = -1
        self.parent = parent
        self.children: list[TreeNode] = []
        if parent is not None:
            parent.children.append(self)

    def record(self, collected: CollectedInstruction) -> None:
        self.iim[collected.dex_pc] = len(self.il)
        self.il.append(collected)

    def lookup(self, dex_pc: int) -> CollectedInstruction | None:
        index = self.iim.get(dex_pc)
        return self.il[index] if index is not None else None

    def instruction_count(self, recursive: bool = True) -> int:
        total = len(self.il)
        if recursive:
            total += sum(c.instruction_count(True) for c in self.children)
        return total

    def depth(self) -> int:
        """Nesting depth below this node (0 for a leaf)."""
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def covered_range(self) -> tuple[int, int]:
        """(min, max+size) dex_pc extent of this node's own instructions."""
        if not self.il:
            return (0, 0)
        lo = min(c.dex_pc for c in self.il)
        hi = max(c.dex_pc + len(c.units) for c in self.il)
        return (lo, hi)

    def to_dict(self) -> dict:
        return {
            "sm_start": self.sm_start,
            "sm_end": self.sm_end,
            "il": [
                {
                    "dex_pc": c.dex_pc,
                    "units": list(c.units),
                    **(
                        {"payload": list(c.payload_units)}
                        if c.payload_units is not None
                        else {}
                    ),
                    **({"symbol": c.symbol} if c.symbol is not None else {}),
                }
                for c in self.il
            ],
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict, parent: "TreeNode | None" = None) -> "TreeNode":
        node = cls(parent, data["sm_start"])
        node.sm_end = data["sm_end"]
        for entry in data["il"]:
            node.record(
                CollectedInstruction(
                    entry["dex_pc"],
                    tuple(entry["units"]),
                    tuple(entry["payload"]) if "payload" in entry else None,
                    entry.get("symbol"),
                )
            )
        for child_data in data["children"]:
            cls.from_dict(child_data, node)
        return node

    def fingerprint(self) -> tuple:
        """Canonical identity used to deduplicate trees across executions."""
        return (
            self.sm_start,
            tuple((c.dex_pc, c.units, c.payload_units) for c in self.il),
            tuple(child.fingerprint() for child in self.children),
        )


class CollectionTree:
    """Per-execution tree plus method metadata the reassembler needs."""

    def __init__(
        self,
        method_signature: str,
        registers_size: int,
        ins_size: int,
        outs_size: int,
    ) -> None:
        self.method_signature = method_signature
        self.registers_size = registers_size
        self.ins_size = ins_size
        self.outs_size = outs_size
        self.root = TreeNode()
        self.current = self.root

    # -- Algorithm 1 ------------------------------------------------------

    def observe(self, collected: CollectedInstruction) -> None:
        """Feed one executing instruction through Algorithm 1."""
        current = self.current
        dex_pc = collected.dex_pc
        existing = current.lookup(dex_pc)
        if existing is not None:
            if existing.same_ins(collected.units):
                return  # same instruction at same position: skip
            # Divergence: the instruction at this dex_pc changed.
            child = TreeNode(parent=current, sm_start=dex_pc)
            self.current = child
            self.current.record(collected)
            return
        if current.parent is not None:
            parent_existing = current.parent.lookup(dex_pc)
            if parent_existing is not None and parent_existing.same_ins(
                collected.units
            ):
                # Convergence: this layer of self-modification ended.
                current.sm_end = dex_pc
                self.current = current.parent
                return
        current.record(collected)

    # -- stats / serialisation ---------------------------------------------

    def node_count(self) -> int:
        def count(node: TreeNode) -> int:
            return 1 + sum(count(c) for c in node.children)

        return count(self.root)

    def instruction_count(self) -> int:
        return self.root.instruction_count(recursive=True)

    def has_divergence(self) -> bool:
        return bool(self.root.children)

    def fingerprint(self) -> tuple:
        return (self.method_signature, self.root.fingerprint())

    def to_dict(self) -> dict:
        return {
            "method": self.method_signature,
            "registers_size": self.registers_size,
            "ins_size": self.ins_size,
            "outs_size": self.outs_size,
            "root": self.root.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CollectionTree":
        tree = cls(
            data["method"],
            data["registers_size"],
            data["ins_size"],
            data["outs_size"],
        )
        tree.root = TreeNode.from_dict(data["root"])
        tree.current = tree.root
        return tree
