"""Composable pipeline stages: collect → reassemble → verify → repack.

The paper's central separability claim (§III, Figure 1) is that
just-in-time collection happens *on-device* while reassembly is an
*offline* step over the collection files.  This module makes that
boundary first-class: each stage is an object with one typed ``run``
method, so consumers can execute any suffix of the pipeline on its own
— most importantly re-running reassembly over a saved archive after a
reassembler fix, without re-driving the application.

* :class:`CollectStage` — APK + drive → :class:`CollectResult`
  (archive + drive outcome; nothing downstream, no fake fields)
* :class:`ReassembleStage` — :class:`CollectionArchive` → ``DexFile``
  (offline reassembly plus the binary round-trip)
* :class:`VerifyStage` — ``DexFile`` → verified ``DexFile``, or a
  structured :class:`~repro.errors.StageError`
* :class:`RepackStage` — APK + DEX → revealed APK

Failures inside a stage surface as :class:`~repro.errors.StageError`
carrying the stage name and the original cause; drive-level VM crashes
and budget exhaustion are *not* failures — collection up to that point
is the result (the paper reveals the executed prefix).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.collection_files import CollectionArchive
from repro.core.collector import DexLegoCollector
from repro.core.config import RevealConfig
from repro.core.force_execution import ForceExecutionEngine, ForceExecutionReport
from repro.core.reassembler import Reassembler
from repro.dex.reader import read_dex
from repro.dex.structures import DexFile
from repro.dex.verify import assert_valid
from repro.dex.writer import write_dex
from repro.errors import BudgetExceeded, StageError, VmCrash
from repro.runtime.apk import Apk
from repro.runtime.art import AndroidRuntime
from repro.runtime.events import AppDriver, DriveReport
from repro.runtime.exceptions import VmThrow
from repro.runtime.predecode import export_predecode_index, warm_predecode

STAGE_COLLECT = "collect"
STAGE_REASSEMBLE = "reassemble"
STAGE_VERIFY = "verify"
STAGE_REPACK = "repack"

ALL_STAGES = (STAGE_COLLECT, STAGE_REASSEMBLE, STAGE_VERIFY, STAGE_REPACK)


@dataclass
class StageEvent:
    """One observer notification: a stage finished (or failed)."""

    stage: str
    duration_s: float
    ok: bool = True
    error: str = ""


@dataclass
class CollectResult:
    """What JIT collection produced: the archive plus the drive outcome.

    Carries only what the collect stage actually knows — the serialised
    collection files and how the drive ended.  Downstream artefacts
    (reassembled DEX, revealed APK) belong to later stages.
    """

    archive: CollectionArchive
    collector_stats: dict = field(default_factory=dict)
    force_report: ForceExecutionReport | None = None
    crashed: bool = False
    crash_reason: str = ""
    budget_exhausted: bool = False

    @property
    def dump_size_bytes(self) -> int:
        return self.archive.total_size_bytes()


class CollectStage:
    """Drive the app inside the instrumented runtime; keep what ran.

    VM crashes and budget exhaustion end the drive but not the stage:
    the archive covers the executed prefix and the outcome flags say
    why it stopped.  Only non-VM exceptions (a crashing drive callable,
    bad input) are stage failures.
    """

    name = STAGE_COLLECT

    def __init__(self, config: RevealConfig | None = None,
                 wave_observer=None, index=None) -> None:
        self.config = config or RevealConfig()
        #: Optional exploration progress callback, forwarded to the
        #: force-execution scheduler (callables cannot live on the
        #: frozen, hashable config, so this travels beside it).
        self.wave_observer = wave_observer
        #: Optional :class:`~repro.index.corpus.CorpusIndex` to consult
        #: after the drive: how much of what this app executed the
        #: corpus has already revealed elsewhere.  Collection itself
        #: always runs — live-fetch semantics need the real execution —
        #: but the probe feeds the dedup accounting and tells the
        #: reassembler what to expect.
        self.index = index
        #: Stats of the most recent :meth:`run`'s index probe (empty
        #: when no index is attached).
        self.last_index_probe: dict = {}

    def run(self, apk: Apk, drive=None,
            resume_state: dict | None = None,
            predecode_index: dict | None = None) -> CollectResult:
        """Drive (or resume) collection.

        ``resume_state`` is a force-execution frontier snapshot (the
        archive's ``exploration_state.json``); passing one continues an
        interrupted exploration — force execution is implied even when
        the config flag is off, because the state only exists for it.
        ``predecode_index`` optionally warm-starts the interpreter's
        shared decode stores from a previously saved archive (the
        resume path passes the one it loaded) before any run happens.
        """
        config = self.config
        collector = DexLegoCollector()
        engine = None
        force_report = None
        crashed = False
        crash_reason = ""
        budget_exhausted = False
        if predecode_index is not None:
            warm_predecode(apk.dex_files, predecode_index)
        try:
            if config.use_force_execution or resume_state is not None:
                # ``drive`` passes through as-is: the engine must see
                # ``None`` for the default drive so the process backend
                # knows nothing un-shippable was requested.
                engine = ForceExecutionEngine(
                    apk,
                    drive=drive,
                    device=config.device,
                    collector=collector,
                    run_budget=config.run_budget,
                    max_iterations=config.force_iterations,
                    strategy=config.exploration_strategy,
                    max_paths=config.max_paths,
                    path_budget=config.path_budget,
                    workers=config.explore_workers,
                    backend=config.explore_backend,
                    resume_state=resume_state,
                    wave_observer=self.wave_observer,
                )
                force_report = engine.run()
            else:
                runtime = AndroidRuntime(config.device,
                                         max_steps=config.run_budget)
                runtime.add_listener(collector)
                driver = AppDriver(runtime, apk)
                drive = drive or \
                    (lambda driver: driver.run_standard_session())
                try:
                    outcome = drive(driver)
                except BudgetExceeded:
                    budget_exhausted = True
                except (VmCrash, VmThrow) as exc:
                    crashed = True
                    crash_reason = str(exc)
                else:
                    # Drivers absorb VM failures into their DriveReport
                    # (run_standard_session and launch both do); fold
                    # those flags into the result rather than losing them.
                    if isinstance(outcome, DriveReport):
                        crashed = outcome.crashed
                        crash_reason = outcome.crash_reason
                        budget_exhausted = outcome.budget_exhausted
        except StageError:
            raise
        except Exception as exc:
            raise StageError(self.name, exc) from exc
        archive = CollectionArchive.from_collector(collector)
        self.last_index_probe = {}
        if self.index is not None:
            try:
                self.last_index_probe = \
                    self.index.probe_method_store(archive.method_store())
            except Exception:  # the probe is advisory, never fatal
                self.last_index_probe = {}
        if engine is not None:
            # Persist the frontier with the collection files, so the
            # archive is enough to continue an interrupted exploration —
            # and the warm decode state alongside it, so the session
            # that resumes (or its worker processes) starts warm.
            archive.set_exploration_state(engine.state_dict())
            index = export_predecode_index(apk.dex_files)
            if index.get("methods"):
                archive.set_predecode_index(index)
        return CollectResult(
            archive=archive,
            collector_stats=collector.stats(),
            force_report=force_report,
            crashed=crashed,
            crash_reason=crash_reason,
            budget_exhausted=budget_exhausted,
        )


class ReassembleStage:
    """Offline reassembly: collection files in, binary-faithful DEX out.

    Includes the binary round-trip (serialise, re-read) so the returned
    model is exactly what a consumer would load from disk.
    """

    name = STAGE_REASSEMBLE

    def __init__(self, index=None) -> None:
        #: Optional :class:`~repro.index.corpus.CorpusIndex`: acts as the
        #: reassembler's body cache (already-revealed bodies are replayed
        #: instead of re-emitted) and receives this reveal's digests.
        self.index = index
        #: Savings stats of the most recent :meth:`run` (empty without
        #: an index): bodies emitted vs replayed, corpus known vs new.
        self.last_index_stats: dict = {}

    def run(self, archive: CollectionArchive, app_id: str | None = None,
            artifact: str | None = None) -> DexFile:
        self.last_index_stats = {}
        try:
            reassembler = Reassembler(
                archive.collected_class_map(),
                archive.method_store(),
                archive.reflection_sites(),
                body_cache=self.index,
            )
            dex = reassembler.reassemble()
            if self.index is not None:
                try:
                    self.last_index_stats = self.index.register_reassembly(
                        archive.method_store(), reassembler,
                        app_id=app_id, artifact=artifact,
                    )
                except OSError as exc:
                    # The index is an optional subsystem: failing to
                    # journal this reveal's digests costs future dedup
                    # savings, never the reveal itself.
                    self.last_index_stats = {"degraded": str(exc)}
            return read_dex(write_dex(dex))
        except Exception as exc:
            raise StageError(self.name, exc) from exc


class VerifyStage:
    """The §IV-C validity gate: the revealed DEX must verify."""

    name = STAGE_VERIFY

    def run(self, dex: DexFile) -> DexFile:
        try:
            assert_valid(dex)
        except Exception as exc:
            raise StageError(self.name, exc) from exc
        return dex


class RepackStage:
    """Swap the reassembled DEX into a copy of the original APK."""

    name = STAGE_REPACK

    def run(self, apk: Apk, dex: DexFile) -> Apk:
        try:
            revealed = apk.clone()
            revealed.dex_files = [dex]  # merged: includes dynamically-loaded code
            return revealed
        except Exception as exc:
            raise StageError(self.name, exc) from exc
