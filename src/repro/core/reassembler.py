"""Offline DEX reassembly (paper §IV-B and §IV-C — the key contribution).

Rebuilds a complete, valid DEX file from collection files:

* every collected class is re-created with its fields, static values,
  interfaces and superclass;
* each executed method's collection trees are converted to a single
  instruction array — divergence nodes (self-modifying code) become
  synthetic conditional branches on static fields of the instrument class
  ``Lcom/dexlego/Modification;`` so that *both* versions of modified code
  are reachable for static analysis (paper Code 4);
* multiple unique trees of one method become method *variants* selected
  by further instrument fields;
* reflective invokes observed at runtime are replaced by direct calls
  through generated bridge methods (§IV-D);
* linked-but-never-executed methods become default-return stubs (this is
  what removes dead-code false positives in Table II);
* never-executed branch edges are routed to a dead self-loop label.

The emitted DEX passes :func:`repro.dex.verify.assert_valid` and
re-executes in the interpreter (round-trip tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.body_cache import BodyWriter, exact_method_digest, replay_body
from repro.core.collector import CollectedClass, ReflectionSite
from repro.core.method_store import MethodRecord, MethodStore
from repro.core.tree import CollectedInstruction, TreeNode
from repro.dex.builder import ClassBuilder, DexBuilder, MethodBuilder
from repro.dex.constants import AccessFlags
from repro.dex.opcodes import IndexKind
from repro.dex.payloads import decode_payload
from repro.dex.sigs import parse_method_signature
from repro.dex.structures import DexFile
from repro.errors import ReassemblyError

INSTRUMENT_CLASS = "Lcom/dexlego/Modification;"
UNEXEC_LABEL = "__unexec"

_REFLECT_INVOKE_NAMES = frozenset({"invoke"})
_REFLECT_METHOD_CLASS = "Ljava/lang/reflect/Method;"


@dataclass
class _BridgeRequest:
    """A reflective site needing a generated direct-call bridge."""

    site: ReflectionSite
    bridge_name: str


class Reassembler:
    """Combines collection output into a new DexFile."""

    def __init__(
        self,
        classes: dict[str, CollectedClass],
        store: MethodStore,
        reflection_sites: dict[tuple[str, int], ReflectionSite] | None = None,
        body_cache=None,
    ) -> None:
        self.classes = classes
        self.store = store
        self.reflection_sites = reflection_sites or {}
        #: Optional ``get_body``/``put_body`` store (corpus index or
        #: :class:`~repro.core.body_cache.InMemoryBodyCache`): executed
        #: bodies whose exact digest is already known are *replayed*
        #: from their recorded op list instead of re-emitted.
        self.body_cache = body_cache
        #: signature -> exact digest, for every executed cacheable body.
        self.body_digests: dict[str, str] = {}
        self.bodies_emitted = 0
        self.bodies_replayed = 0
        # Methods holding rewritten reflective invokes are never cached:
        # bridge numbering is global to one output DEX.
        self._uncacheable = {caller for caller, _pc in self.reflection_sites}
        self.builder = DexBuilder()
        self._instrument_fields: list[str] = []
        self._bridges: list[_BridgeRequest] = []
        self._bridge_by_site: dict[tuple[str, int], str] = {}

    # -- public entry -----------------------------------------------------

    def reassemble(self) -> DexFile:
        self._plan_bridges()
        for descriptor in sorted(self.classes):
            self._emit_class(self.classes[descriptor])
        self._emit_instrument_class()
        return self.builder.build()

    # -- bridges for reflective calls ----------------------------------------

    def _plan_bridges(self) -> None:
        for key in sorted(self.reflection_sites):
            site = self.reflection_sites[key]
            name = f"bridge_{len(self._bridges)}"
            self._bridges.append(_BridgeRequest(site, name))
            self._bridge_by_site[key] = name

    # -- classes ---------------------------------------------------------------

    def _emit_class(self, collected: CollectedClass) -> None:
        interfaces = tuple(collected.interface_descs)
        class_builder = self.builder.add_class(
            collected.descriptor,
            superclass=collected.superclass_desc or "Ljava/lang/Object;",
            access=collected.access_flags,
            interfaces=interfaces,
        )
        for collected_field in collected.fields:
            if collected_field.access_flags & AccessFlags.STATIC:
                class_builder.add_static_field(
                    collected_field.name,
                    collected_field.type_desc,
                    collected_field.access_flags,
                    _decode_static(collected_field.static_value),
                )
            else:
                class_builder.add_instance_field(
                    collected_field.name,
                    collected_field.type_desc,
                    collected_field.access_flags,
                )
        for signature in collected.method_signatures:
            record = self.store.get(signature)
            if record is None:
                continue
            self._emit_method(class_builder, record)

    # -- methods -------------------------------------------------------------------

    def _emit_method(self, class_builder: ClassBuilder, record: MethodRecord) -> None:
        access = record.access_flags
        if record.is_native or access & AccessFlags.NATIVE:
            class_builder.method(
                record.name, record.return_desc, record.param_descs,
                access=access | int(AccessFlags.NATIVE), native=True,
            ).build()
            return
        if access & AccessFlags.ABSTRACT:
            class_builder.method(
                record.name, record.return_desc, record.param_descs,
                access=access, abstract=True,
            ).build()
            return
        if not record.executed:
            self._emit_stub(class_builder, record)
            return
        digest = None
        if self.body_cache is not None \
                and record.signature not in self._uncacheable:
            digest = exact_method_digest(record)
            self.body_digests[record.signature] = digest
            ops = self.body_cache.get_body(digest)
            if ops is not None:
                replay_body(self, class_builder, record, ops)
                self.bodies_replayed += 1
                return
        ops = self._emit_collected_body(class_builder, record,
                                        recording=digest is not None)
        self.bodies_emitted += 1
        if digest is not None and ops is not None:
            self.body_cache.put_body(digest, ops)

    def _emit_stub(self, class_builder: ClassBuilder, record: MethodRecord) -> None:
        """Default-return stub for a linked-but-never-executed method."""
        mb = class_builder.method(
            record.name, record.return_desc, record.param_descs,
            access=record.access_flags, locals_count=2,
        )
        ret = record.return_desc
        if ret == "V":
            mb.ret_void()
        elif ret in ("J", "D"):
            mb.const_wide(0, 0)
            mb.ret_wide(0)
        elif ret.startswith(("L", "[")):
            mb.const(0, 0)
            mb.ret_object(0)
        else:
            mb.const(0, 0)
            mb.ret(0)
        mb.build()

    # -- collected bodies ---------------------------------------------------------

    def _emit_collected_body(
        self, class_builder: ClassBuilder, record: MethodRecord,
        recording: bool = False,
    ) -> list | None:
        """Emit an executed body; returns its portable op list if recorded.

        All builder interactions go through one :class:`BodyWriter`, so
        a recording pass captures exactly the calls replay must make.
        """
        trees = record.trees
        original_locals = record.registers_size - record.ins_size
        # One extra register (the scratch used by divergence selectors and
        # the variant dispatcher), reserved via a parameter-shift prologue.
        mb = class_builder.method(
            record.name,
            record.return_desc,
            record.param_descs,
            access=record.access_flags,
            locals_count=original_locals + 1,
        )
        mb._outs = max(mb._outs, record.outs_size)
        writer = BodyWriter(self, mb, record, recording)
        scratch = record.registers_size  # top register of the grown frame
        self._emit_prologue(writer, record, original_locals)

        if len(trees) > 1:
            # Variant dispatcher (paper: "merging instruction arrays").
            for variant in range(1, len(trees)):
                writer.ifield_read(f"variant_{variant}", scratch)
                writer.if_zero("ne", scratch, f"v{variant}_entry")
        needs_unexec = False
        for variant, tree in enumerate(trees):
            writer.label(f"v{variant}_entry")
            emitter = _TreeEmitter(
                self, writer, record, tree.root, prefix=f"v{variant}",
                scratch=scratch,
            )
            emitter.emit()
            needs_unexec = needs_unexec or emitter.used_unexec
        if needs_unexec:
            writer.label(UNEXEC_LABEL)
            writer.goto_(UNEXEC_LABEL)
        self._emit_tries(writer, record, trees)
        mb.build()
        return writer.ops

    def _emit_prologue(
        self, writer: BodyWriter, record: MethodRecord, original_locals: int
    ) -> None:
        """Shift incoming parameter words down one register.

        After the shift the collected instructions (which reference the
        original register numbers) run unmodified, and the top register
        is free as a scratch for instrument-field reads.
        """
        if record.ins_size == 0:
            return
        words: list[str] = []  # kind of each incoming word
        if not record.access_flags & AccessFlags.STATIC:
            words.append("object")
        for param in record.param_descs:
            if param in ("J", "D"):
                words.append("wide")
                words.append("wide-high")
            elif param.startswith(("L", "[")):
                words.append("object")
            else:
                words.append("single")
        old_base = original_locals  # original first-parameter register
        new_base = original_locals + 1
        index = 0
        while index < len(words):
            kind = words[index]
            dst = old_base + index
            src = new_base + index
            if kind == "wide":
                writer.raw(
                    "move-wide" if max(dst, src + 1) < 16 else "move-wide/from16",
                    dst, src,
                )
                index += 2
            elif kind == "object":
                writer.move_object(dst, src)
                index += 1
            else:
                writer.move(dst, src)
                index += 1

    def _emit_tries(self, writer: BodyWriter, record, trees) -> None:
        """Re-attach collected try blocks onto the variant-0 layout.

        Regions are clipped to the instructions that actually executed;
        the end label was planted right after the last covered instruction
        during emission (see ``_TreeEmitter``).  Divergence blocks emitted
        after the main stream fall outside the region — a documented
        approximation (DESIGN.md).
        """
        if not record.tries or not trees:
            return
        root = trees[0].root
        recorded = {c.dex_pc for c in root.il}
        sorted_pcs = sorted(recorded)
        for try_block in record.tries:
            covered = [
                pc for pc in sorted_pcs
                if try_block.start_addr <= pc < try_block.start_addr + try_block.insn_count
            ]
            if not covered:
                continue  # region never executed
            start_label = f"v0_n0_L{covered[0]}"
            end_label = f"v0_try_end_{try_block.start_addr}"
            handlers: list[tuple[str | None, str]] = []
            for type_desc, addr in try_block.handlers:
                handlers.append((type_desc, self._handler_label(root, addr)))
            if try_block.catch_all is not None:
                handlers.append((None, self._handler_label(root, try_block.catch_all)))
            writer.try_range(start_label, end_label, handlers)

    def _handler_label(self, root: TreeNode, addr: int) -> str:
        if root.lookup(addr) is not None:
            return f"v0_n0_L{addr}"
        return UNEXEC_LABEL

    # -- instrument class --------------------------------------------------------

    def _new_instrument_field(self, signature: str, suffix: str) -> str:
        base = _munge(signature)
        name = f"{base}_{suffix}"
        if name not in self._instrument_fields:
            self._instrument_fields.append(name)
        return name

    def _emit_instrument_class(self) -> None:
        if not self._instrument_fields and not self._bridges:
            return
        class_builder = self.builder.add_class(INSTRUMENT_CLASS)
        for name in self._instrument_fields:
            class_builder.add_static_field(name, "Z", initial=False)
        if self._instrument_fields:
            self._emit_instrument_clinit(class_builder)
        for request in self._bridges:
            self._emit_bridge(class_builder, request)

    def _emit_instrument_clinit(self, class_builder: ClassBuilder) -> None:
        """<clinit> assigning each field an opaque pseudo-random value.

        The value comes from currentTimeMillis so no static analyzer can
        constant-fold it: both sides of every synthetic branch stay
        reachable (the paper's "static field ... with random values").
        """
        mb = class_builder.method(
            "<clinit>", "V", (),
            access=int(AccessFlags.STATIC | AccessFlags.CONSTRUCTOR),
            locals_count=4,
        )
        mb.invoke("static", "Ljava/lang/System;->currentTimeMillis()J")
        mb.raw("move-result-wide", 0)
        mb.raw("long-to-int", 0, 0)
        for offset, name in enumerate(self._instrument_fields):
            mb.raw("add-int/lit8", 2, 0, offset % 128)
            mb.raw("and-int/lit8", 2, 2, 1)
            mb.field_op("sput-boolean", 2, f"{INSTRUMENT_CLASS}->{name}:Z")
        mb.ret_void()
        mb.build()

    def _emit_bridge(self, class_builder: ClassBuilder, request: _BridgeRequest) -> None:
        """Direct-call bridge replacing one reflective invoke site."""
        site = request.site
        targets = site.targets
        locals_needed = 4
        for signature in targets:
            ref = parse_method_signature(signature)
            locals_needed = max(locals_needed, len(ref.param_descs) + 3)
        mb = class_builder.method(
            request.bridge_name,
            "Ljava/lang/Object;",
            ("Ljava/lang/Object;", "[Ljava/lang/Object;"),
            access=int(AccessFlags.PUBLIC | AccessFlags.STATIC),
            locals_count=locals_needed,
        )
        for index, signature in enumerate(targets):
            if index > 0:
                mb.label(f"target_{index}")
            if index < len(targets) - 1:
                # Several distinct targets were observed at this site:
                # select between them with instrument fields, exactly like
                # divergence branches.
                field_name = f"{_munge(site.caller_signature)}_{site.dex_pc}_t{index}"
                class_builder.add_static_field(field_name, "Z", initial=False)
                mb.field_op(
                    "sget-boolean", 0, f"{INSTRUMENT_CLASS}->{field_name}:Z"
                )
                mb.if_zero("eq", 0, f"target_{index + 1}")
            self._emit_bridge_call(mb, signature, site.target_static[signature])
        mb.build()

    def _emit_bridge_call(
        self, mb: MethodBuilder, signature: str, is_static: bool
    ) -> None:
        ref = parse_method_signature(signature)
        arg_base = 0
        index_reg = len(ref.param_descs) + 1
        receiver_reg = len(ref.param_descs) + 2
        regs: list[int] = []
        if not is_static:
            mb.move_object(receiver_reg, mb.p(0))
            mb.check_cast(receiver_reg, ref.class_desc)
            regs.append(receiver_reg)
        for i, param in enumerate(ref.param_descs):
            mb.const(index_reg, i)
            mb.raw("aget-object", arg_base + i, mb.p(1), index_reg)
            if param.startswith(("L", "[")):
                if param != "Ljava/lang/Object;":
                    mb.check_cast(arg_base + i, param)
            elif param == "I":
                mb.check_cast(arg_base + i, "Ljava/lang/Integer;")
                mb.invoke("virtual", "Ljava/lang/Integer;->intValue()I", arg_base + i)
                mb.raw("move-result", arg_base + i)
            elif param == "Z":
                mb.check_cast(arg_base + i, "Ljava/lang/Boolean;")
                mb.invoke("virtual", "Ljava/lang/Boolean;->booleanValue()Z", arg_base + i)
                mb.raw("move-result", arg_base + i)
            else:
                raise ReassemblyError(
                    f"bridge for {signature}: unsupported param type {param}"
                )
            regs.append(arg_base + i)
        kind = "static" if is_static else "virtual"
        mb.invoke(kind, signature, *regs)
        ret = ref.return_desc
        if ret == "V":
            mb.const(0, 0)
            mb.ret_object(0)
        elif ret.startswith(("L", "[")):
            mb.raw("move-result-object", 0)
            mb.ret_object(0)
        elif ret == "I":
            mb.raw("move-result", 0)
            mb.invoke("static", "Ljava/lang/Integer;->valueOf(I)Ljava/lang/Integer;", 0)
            mb.raw("move-result-object", 0)
            mb.ret_object(0)
        elif ret == "Z":
            mb.raw("move-result", 0)
            mb.invoke("static", "Ljava/lang/Boolean;->valueOf(Z)Ljava/lang/Boolean;", 0)
            mb.raw("move-result-object", 0)
            mb.ret_object(0)
        else:
            raise ReassemblyError(
                f"bridge for {signature}: unsupported return type {ret}"
            )


class _TreeEmitter:
    """Emits one collection tree as a label-relative instruction stream."""

    def __init__(
        self,
        reassembler: Reassembler,
        writer: BodyWriter,
        record: MethodRecord,
        root: TreeNode,
        prefix: str,
        scratch: int,
    ) -> None:
        self.reassembler = reassembler
        self.w = writer
        self.record = record
        self.root = root
        self.prefix = prefix
        self.scratch = scratch
        self.used_unexec = False
        self._node_ids: dict[int, int] = {}
        self._number_nodes(root)

    def _number_nodes(self, node: TreeNode, counter: list[int] | None = None) -> None:
        if counter is None:
            counter = [0]
        self._node_ids[id(node)] = counter[0]
        counter[0] += 1
        for child in node.children:
            self._number_nodes(child, counter)

    # -- labels ---------------------------------------------------------------

    def _label(self, node: TreeNode, dex_pc: int) -> str:
        return f"{self.prefix}_n{self._node_ids[id(node)]}_L{dex_pc}"

    def _resolve(self, node: TreeNode, dex_pc: int) -> str:
        """Resolve a branch / fall-through target pc to a label."""
        walker: TreeNode | None = node
        while walker is not None:
            if walker.lookup(dex_pc) is not None:
                return self._label(walker, dex_pc)
            walker = walker.parent
        self.used_unexec = True
        return UNEXEC_LABEL

    # -- emission ----------------------------------------------------------------

    def emit(self) -> None:
        pending: list[TreeNode] = [self.root]
        emitted: list[TreeNode] = []
        while pending:
            node = pending.pop(0)
            self._emit_node(node)
            emitted.append(node)
            pending.extend(node.children)

    def _emit_node(self, node: TreeNode) -> None:
        w = self.w
        ordered = sorted(node.il, key=lambda c: c.dex_pc)
        divergences_at: dict[int, list[TreeNode]] = {}
        for child in node.children:
            divergences_at.setdefault(child.sm_start, []).append(child)
        try_ends_after = self._try_end_plan(node, ordered)
        for position, collected in enumerate(ordered):
            dex_pc = collected.dex_pc
            w.label(self._label(node, dex_pc))
            for child in divergences_at.get(dex_pc, ()):
                self._emit_selector(child)
            self._emit_instruction(node, collected)
            for end_label in try_ends_after.get(dex_pc, ()):
                w.label(end_label)
            self._emit_fallthrough(node, ordered, position, collected)

    def _try_end_plan(self, node: TreeNode, ordered) -> dict[int, list[str]]:
        """Plan try-region end labels right after the last covered pc."""
        plan: dict[int, list[str]] = {}
        if node.parent is not None or self.prefix != "v0":
            return plan
        pcs = [c.dex_pc for c in ordered]
        for try_block in self.record.tries:
            covered = [
                pc for pc in pcs
                if try_block.start_addr <= pc
                < try_block.start_addr + try_block.insn_count
            ]
            if covered:
                plan.setdefault(covered[-1], []).append(
                    f"{self.prefix}_try_end_{try_block.start_addr}"
                )
        return plan

    def _emit_selector(self, child: TreeNode) -> None:
        """The synthetic divergence branch of paper Code 4.

        Jumps to the child's ``sm_start`` instruction (its entry point);
        the child block itself is emitted after the parent stream.
        """
        self.w.ifield_read(
            f"{self.prefix}_sm_{self._node_ids[id(child)]}", self.scratch
        )
        self.w.if_zero("ne", self.scratch, self._label(child, child.sm_start))

    def _emit_fallthrough(
        self,
        node: TreeNode,
        ordered: list[CollectedInstruction],
        position: int,
        collected: CollectedInstruction,
    ) -> None:
        """Preserve (or dead-end) the fall-through edge across gaps."""
        ins = collected.instruction
        if not ins.opcode.can_continue:
            return
        next_pc = collected.dex_pc + len(collected.units)
        if position + 1 < len(ordered) and ordered[position + 1].dex_pc == next_pc:
            return  # natural fall-through
        self.w.goto_(self._resolve(node, next_pc))

    def _emit_instruction(self, node: TreeNode, collected: CollectedInstruction) -> None:
        w = self.w
        ins = collected.instruction
        name = ins.name
        opcode = ins.opcode

        if opcode.is_switch:
            self._emit_switch(node, collected, ins)
            return
        if name == "fill-array-data":
            payload = decode_payload(list(collected.payload_units), 0)
            w.fill_array_data(ins.operands[0], payload.element_width,
                              payload.elements())
            return
        if opcode.is_branch:
            target = collected.dex_pc + ins.branch_target
            label = self._resolve(node, target)
            if name.startswith("goto"):
                w.goto_(label)
            else:
                w.branch(name, ins.operands[:-1], label)
            return
        if opcode.is_invoke:
            self._emit_invoke(node, collected, ins)
            return
        kind = opcode.index_kind
        if kind is IndexKind.NONE:
            w.raw(name, *ins.operands)
            return
        symbol = collected.symbol
        if symbol is None:
            raise ReassemblyError(
                f"{self.record.signature}@{collected.dex_pc}: "
                f"{name} collected without symbol"
            )
        if opcode.fmt in ("35c", "3rc"):
            w.sym(name, kind, symbol, pre=[], post=list(ins.operands[1:]))
        else:
            w.sym(name, kind, symbol, pre=list(ins.operands[:-1]), post=[])

    def _emit_switch(self, node: TreeNode, collected, ins) -> None:
        payload = decode_payload(list(collected.payload_units), 0)
        reg = ins.operands[0]
        labels = [
            self._resolve(node, collected.dex_pc + target)
            for target in payload.targets
        ]
        if ins.name == "packed-switch":
            self.w.packed_switch(reg, payload.first_key, labels)
        else:
            self.w.sparse_switch(reg, list(zip(payload.keys, labels)))

    def _emit_invoke(self, node: TreeNode, collected, ins) -> None:
        w = self.w
        symbol = collected.symbol
        ref = parse_method_signature(symbol)
        site_key = (self.record.signature, collected.dex_pc)
        bridge = self.reassembler._bridge_by_site.get(site_key)
        if (
            bridge is not None
            and ref.class_desc == _REFLECT_METHOD_CLASS
            and ref.name in _REFLECT_INVOKE_NAMES
        ):
            # §IV-D: replace Method.invoke with a direct call through the
            # generated bridge.  Registers: {method, receiver, args[]}.
            # Bridge numbering is app-global, so this body is uncacheable.
            w.disable()
            regs = ins.invoke_registers
            receiver_reg = regs[1] if len(regs) > 1 else regs[0]
            args_reg = regs[2] if len(regs) > 2 else regs[0]
            w.mb.invoke(
                "static",
                f"{INSTRUMENT_CLASS}->{bridge}"
                "(Ljava/lang/Object;[Ljava/lang/Object;)Ljava/lang/Object;",
                receiver_reg,
                args_reg,
            )
            return
        from repro.dex.sigs import method_arg_width

        is_static = "static" in ins.name
        width = method_arg_width(ref, is_static=is_static)
        if ins.opcode.fmt == "35c":
            post = list(ins.operands[1:])
        else:
            post = [ins.operands[1], ins.operands[2]]
        w.sym(ins.name, IndexKind.METHOD, symbol, pre=[], post=post,
              outs=width)


def _munge(signature: str) -> str:
    out = []
    for ch in signature:
        out.append(ch if ch.isalnum() else "_")
    text = "".join(out)
    while "__" in text:
        text = text.replace("__", "_")
    return text.strip("_")


def _decode_static(tagged: tuple):
    kind = tagged[0]
    if kind == "null":
        return None
    if kind == "string":
        return str(tagged[1])
    if kind == "bool":
        return bool(tagged[1])
    if kind == "int":
        return int(tagged[1])
    if kind == "float":
        return float(tagged[1])
    return None
