"""DexLego core: JIT collection, tree model, reassembly, force execution.

This package is the paper's primary contribution:

* :class:`~repro.core.collector.DexLegoCollector` — Algorithm 1 JIT
  collection attached to the runtime
* :class:`~repro.core.tree.CollectionTree` — the divergence-tree model
* :class:`~repro.core.reassembler.Reassembler` — offline DEX reassembly
* :class:`~repro.core.force_execution.ForceExecutionEngine` — iterative
  force execution (the code coverage improvement module)
* :class:`~repro.core.pipeline.DexLego` — the end-to-end system
"""

from repro.core.collection_files import CollectionArchive
from repro.core.collector import DexLegoCollector
from repro.core.force_execution import (
    BranchTraceListener,
    ForcedPathController,
    ForceExecutionEngine,
    ForceExecutionReport,
    PathFile,
)
from repro.core.method_store import MethodRecord, MethodStore
from repro.core.pipeline import DexLego, RevealResult, reveal_apk
from repro.core.reassembler import INSTRUMENT_CLASS, Reassembler
from repro.core.tree import CollectedInstruction, CollectionTree, TreeNode

__all__ = [
    "BranchTraceListener",
    "CollectedInstruction",
    "CollectionArchive",
    "CollectionTree",
    "DexLego",
    "DexLegoCollector",
    "ForceExecutionEngine",
    "ForceExecutionReport",
    "ForcedPathController",
    "INSTRUMENT_CLASS",
    "MethodRecord",
    "MethodStore",
    "PathFile",
    "Reassembler",
    "RevealResult",
    "TreeNode",
    "reveal_apk",
]
