"""DexLego core: JIT collection, tree model, reassembly, force execution.

This package is the paper's primary contribution:

* :class:`~repro.core.collector.DexLegoCollector` — Algorithm 1 JIT
  collection attached to the runtime
* :class:`~repro.core.tree.CollectionTree` — the divergence-tree model
* :class:`~repro.core.reassembler.Reassembler` — offline DEX reassembly
* :class:`~repro.core.force_execution.ForceExecutionEngine` — iterative
  force execution (the code coverage improvement module)
* :class:`~repro.core.config.RevealConfig` — frozen, hashable,
  JSON-round-trippable pipeline configuration
* :mod:`repro.core.stages` — the four composable stages
  (collect → reassemble → verify → repack)
* :class:`~repro.core.pipeline.Pipeline` — the stage conductor, with
  :class:`~repro.core.pipeline.DexLego` as the paper-shaped facade and
  :func:`~repro.core.pipeline.reveal_from_archive` as the offline-only
  entry point
"""

from repro.core.collection_files import CollectionArchive
from repro.core.collector import DexLegoCollector
from repro.core.config import RevealConfig
from repro.core.exploration import (
    ALL_STRATEGIES,
    BACKEND_PROCESS,
    BACKEND_SERIAL,
    BACKEND_THREAD,
    EXPLORE_BACKENDS,
    STRATEGY_BFS,
    STRATEGY_DFS,
    STRATEGY_RARITY,
    ExplorationScheduler,
    ExplorationStats,
)
from repro.core.force_execution import (
    BranchTraceListener,
    ForcedPathController,
    ForceExecutionEngine,
    ForceExecutionReport,
    PathFile,
)
from repro.core.replay import ReplaySpec, TraceDelta, execute_replay
from repro.core.method_store import MethodRecord, MethodStore
from repro.core.pipeline import (
    DexLego,
    Pipeline,
    RevealResult,
    resume_exploration,
    reveal_apk,
    reveal_from_archive,
)
from repro.core.reassembler import INSTRUMENT_CLASS, Reassembler
from repro.core.stages import (
    ALL_STAGES,
    STAGE_COLLECT,
    STAGE_REASSEMBLE,
    STAGE_REPACK,
    STAGE_VERIFY,
    CollectResult,
    CollectStage,
    ReassembleStage,
    RepackStage,
    StageEvent,
    VerifyStage,
)
from repro.core.tree import CollectedInstruction, CollectionTree, TreeNode
from repro.errors import StageError

__all__ = [
    "ALL_STAGES",
    "ALL_STRATEGIES",
    "BACKEND_PROCESS",
    "BACKEND_SERIAL",
    "BACKEND_THREAD",
    "BranchTraceListener",
    "EXPLORE_BACKENDS",
    "ExplorationScheduler",
    "ExplorationStats",
    "STRATEGY_BFS",
    "STRATEGY_DFS",
    "STRATEGY_RARITY",
    "CollectedInstruction",
    "CollectionArchive",
    "CollectionTree",
    "CollectResult",
    "CollectStage",
    "DexLego",
    "DexLegoCollector",
    "ForceExecutionEngine",
    "ForceExecutionReport",
    "ForcedPathController",
    "INSTRUMENT_CLASS",
    "MethodRecord",
    "MethodStore",
    "PathFile",
    "Pipeline",
    "Reassembler",
    "ReassembleStage",
    "RepackStage",
    "ReplaySpec",
    "RevealConfig",
    "RevealResult",
    "TraceDelta",
    "STAGE_COLLECT",
    "STAGE_REASSEMBLE",
    "STAGE_REPACK",
    "STAGE_VERIFY",
    "StageError",
    "StageEvent",
    "TreeNode",
    "VerifyStage",
    "execute_replay",
    "resume_exploration",
    "reveal_apk",
    "reveal_from_archive",
]
