"""First-class pipeline configuration.

The paper separates *what* DexLego does (collect, reassemble, verify,
repack) from *how* it is parameterised (device identity, execution
budget, force-execution knobs).  :class:`RevealConfig` is that second
half as a value object: frozen (hashable, safe as a dict key or cache
key component), JSON-round-trippable (shippable to process workers and
storable next to archives), and self-hashing (``config_hash()`` is the
sole configuration input to the service layer's content-addressed
cache keys).

``archive_dir``, ``index_dir`` and ``cluster_dir`` are deliberately
excluded from the identity hash: where the collection files land on
disk (or which corpus index accelerates reassembly, or which cluster
store labels the reveal) does not change what the pipeline computes,
only where its intermediates live and how fast it runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from repro.core.exploration import (
    ALL_STRATEGIES,
    BACKEND_THREAD,
    EXPLORE_BACKENDS,
    STRATEGY_BFS,
)
from repro.runtime.device import NEXUS_5X, DeviceProfile


def resolve_config(config: "RevealConfig | None", **knobs) -> "RevealConfig":
    """Constructor-argument resolution shared by the pipeline facades.

    Callers accept either a ready ``config=`` or the historical
    individual knobs (``None`` meaning "not passed"); mixing the two
    is rejected rather than silently dropping a knob.
    """
    explicit = {key: value for key, value in knobs.items() if value is not None}
    if config is not None:
        if explicit:
            raise ValueError(
                "pass either config= or the individual knobs "
                f"({', '.join(sorted(explicit))}), not both"
            )
        return config
    return RevealConfig(**explicit)


@dataclass(frozen=True)
class RevealConfig:
    """Everything that parameterises one pipeline run.

    Fields:

    * ``device`` — simulated device identity (feeds sources and
      emulator-detection branches; the whole profile is identity, not
      just its name).
    * ``use_force_execution`` — run the code coverage improvement
      module (iterative force execution) instead of a single drive.
    * ``run_budget`` — interpreter step budget per run; the analogue of
      the paper's wall-clock execution budget.
    * ``archive_dir`` — when set, collection files are serialised here
      and reloaded before reassembly, proving the offline boundary.
      Not part of the configuration identity.
    * ``force_iterations`` — iteration cap for force execution.
    * ``exploration_strategy`` — frontier order for force execution:
      ``bfs`` / ``dfs`` / ``rarity-first``
      (:data:`~repro.core.exploration.ALL_STRATEGIES`).
    * ``max_paths`` — total replay budget across the exploration
      (``None`` = unbounded; the frontier serialises for resume).
    * ``path_budget`` — interpreter step budget per *replay* run
      (``None`` = same as ``run_budget``).
    * ``explore_workers`` — pool width for replaying one wave of path
      files (threads or processes, per ``explore_backend``).
    * ``explore_backend`` — how a wave of replays executes: ``serial``,
      ``thread`` or ``process``
      (:data:`~repro.core.exploration.EXPLORE_BACKENDS`).  Replays come
      back as :class:`~repro.core.replay.TraceDelta` values merged in
      pop order, so exploration state *and* collection output are
      identical across backends and worker counts; the knob still
      feeds the identity hash — deliberately conservative, like the
      rest of the inert force-execution knobs.
    * ``index_dir`` — when set, a persistent
      :class:`~repro.index.corpus.CorpusIndex` at this path is
      consulted during reassembly (already-revealed method bodies are
      replayed instead of re-emitted, across *different* apps) and every
      reveal registers its methods back.  Excluded from the identity
      hash like ``archive_dir``: replayed bodies are byte-identical to
      re-emitted ones, so the index changes cost, never output.
    * ``cluster_dir`` — when set, a persistent
      :class:`~repro.cluster.store.ClusterStore` at this path labels
      every reveal with its family + nearest-known-method evidence
      (``RevealResult.cluster_stats``) and absorbs the reveal's digests
      for future labeling.  Excluded from the identity hash like
      ``index_dir``: labels annotate the result, they never change the
      revealed bytes.
    """

    device: DeviceProfile = NEXUS_5X
    use_force_execution: bool = False
    run_budget: int = 2_000_000
    archive_dir: str | None = None
    force_iterations: int = 25
    exploration_strategy: str = STRATEGY_BFS
    max_paths: int | None = None
    path_budget: int | None = None
    explore_workers: int = 1
    explore_backend: str = BACKEND_THREAD
    index_dir: str | None = None
    cluster_dir: str | None = None

    def __post_init__(self) -> None:
        if self.exploration_strategy not in ALL_STRATEGIES:
            raise ValueError(
                f"unknown exploration_strategy {self.exploration_strategy!r}; "
                f"pick one of {ALL_STRATEGIES}"
            )
        if self.explore_backend not in EXPLORE_BACKENDS:
            raise ValueError(
                f"unknown explore_backend {self.explore_backend!r}; "
                f"pick one of {EXPLORE_BACKENDS}"
            )

    # -- derivation ---------------------------------------------------------

    def replace(self, **changes) -> "RevealConfig":
        """A copy with some fields swapped (frozen-friendly)."""
        return dataclasses.replace(self, **changes)

    # -- JSON round trip ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "device": dataclasses.asdict(self.device),
            "use_force_execution": self.use_force_execution,
            "run_budget": self.run_budget,
            "archive_dir": self.archive_dir,
            "force_iterations": self.force_iterations,
            "exploration_strategy": self.exploration_strategy,
            "max_paths": self.max_paths,
            "path_budget": self.path_budget,
            "explore_workers": self.explore_workers,
            "explore_backend": self.explore_backend,
            "index_dir": self.index_dir,
            "cluster_dir": self.cluster_dir,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RevealConfig":
        device = data.get("device", NEXUS_5X)
        if isinstance(device, dict):
            device = DeviceProfile(**device)
        return cls(
            device=device,
            use_force_execution=data.get("use_force_execution", False),
            run_budget=data.get("run_budget", 2_000_000),
            archive_dir=data.get("archive_dir"),
            force_iterations=data.get("force_iterations", 25),
            exploration_strategy=data.get("exploration_strategy",
                                          STRATEGY_BFS),
            max_paths=data.get("max_paths"),
            path_budget=data.get("path_budget"),
            explore_workers=data.get("explore_workers", 1),
            explore_backend=data.get("explore_backend", BACKEND_THREAD),
            index_dir=data.get("index_dir"),
            cluster_dir=data.get("cluster_dir"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RevealConfig":
        return cls.from_dict(json.loads(text))

    # -- identity -----------------------------------------------------------

    def fingerprint(self) -> dict:
        """The identity-relevant slice: everything except the two paths.

        Force-execution knobs (``force_iterations`` and the exploration
        set) participate even when ``use_force_execution`` is off —
        deliberately conservative: over-keying the cache costs at most
        a recompute, while normalising inert knobs risks serving a
        stale record if a future pipeline consults them elsewhere.
        ``archive_dir``, ``index_dir`` and ``cluster_dir`` are excluded
        because none of them can change what the pipeline computes: the
        archive is a persistence location, index-replayed bodies are
        byte-identical to re-emitted ones by construction, and cluster
        labels annotate the result without touching the revealed bytes.
        """
        identity = self.to_dict()
        del identity["archive_dir"]
        del identity["index_dir"]
        del identity["cluster_dir"]
        return identity

    def config_hash(self) -> str:
        """Stable SHA-256 of the configuration identity (64 hex chars)."""
        blob = json.dumps(self.fingerprint(), sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
