"""Priority-driven exploration scheduling for force execution.

The paper's code coverage improvement module (§III-C, §IV-E) walks an
implicit frontier: every Uncovered Conditional Branch discovered so far
is a candidate path file waiting to be replayed.  The original engine
modelled that frontier as a serial FIFO; this module makes it a
first-class subsystem:

* :class:`PathFile` — a decision prefix ending in one flipped branch,
  JSON-round-trippable (it *is* the paper's on-disk path file);
* :class:`ExplorationScheduler` — a priority frontier of path files
  with decision-prefix hashing for dedup (flipping the same prefix
  twice schedules one replay), pluggable strategies, a total replay
  budget (``max_paths``), and JSON state serialisation so an
  interrupted exploration resumes from the collection archive instead
  of restarting;
* :class:`ExplorationStats` — what the frontier did: paths explored,
  UCBs discovered vs. covered, replays saved by dedup, and the
  coverage curve (covered sites after every replay).

Strategies
----------

``bfs``
    Shallowest decision prefix first — wide, breadth-first sweeps that
    flip entry-point gates before deep worker-method branches.
``dfs``
    Deepest prefix first — drills down one execution corridor before
    widening, cheap when deep state unlocks whole subtrees.
``rarity-first``
    Branch sites observed *least often* across all traces explore
    first: a site seen once is likelier to guard unvisited code than a
    loop header seen ten thousand times.

Priorities are stamped when a path is offered, so the exploration
order is a pure function of configuration plus the (deterministic)
traces — independent of ``explore_workers``.  Replays of one wave run
on isolated runtimes and their traces merge in pop order, which is why
a parallel exploration reproduces the serial one bit-for-bit.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass, field
from typing import Callable

BranchSite = tuple[str, int]  # (method signature, dex_pc)
Decision = tuple[str, int, bool]
FlipKey = tuple[str, int, bool]

STRATEGY_BFS = "bfs"
STRATEGY_DFS = "dfs"
STRATEGY_RARITY = "rarity-first"

ALL_STRATEGIES = (STRATEGY_BFS, STRATEGY_DFS, STRATEGY_RARITY)

#: How one wave of replays executes.  The exploration outcome (order,
#: covered-UCB set, collector records) is contractually identical across
#: all three — backends trade wall clock, never results.
BACKEND_SERIAL = "serial"
BACKEND_THREAD = "thread"
BACKEND_PROCESS = "process"

EXPLORE_BACKENDS = (BACKEND_SERIAL, BACKEND_THREAD, BACKEND_PROCESS)


@dataclass
class PathFile:
    """A path to one UCB: decision prefix plus the final flip (§IV-E)."""

    target: BranchSite
    forced_outcome: bool
    decisions: list[Decision] = field(default_factory=list)

    @property
    def flip_key(self) -> FlipKey:
        return (self.target[0], self.target[1], self.forced_outcome)

    def prefix_hash(self) -> str:
        """Stable SHA-256 of the decision prefix (incl. target + flip).

        Two path files hash equal exactly when replaying them would
        force the identical branch sequence — the scheduler's dedup key.
        Memoized on first call (the engine treats a path file as
        immutable once built and re-offers the same object each
        analysis round), so per-iteration re-proposals cost a dict hit,
        not a re-serialisation.
        """
        cached = self.__dict__.get("_prefix_hash")
        if cached is None:
            blob = json.dumps(
                {
                    "target": list(self.target),
                    "forced_outcome": self.forced_outcome,
                    "decisions": [list(d) for d in self.decisions],
                },
                sort_keys=True,
            )
            cached = hashlib.sha256(blob.encode("utf-8")).hexdigest()
            self.__dict__["_prefix_hash"] = cached
        return cached

    def to_dict(self) -> dict:
        return {
            "target": list(self.target),
            "forced_outcome": self.forced_outcome,
            "decisions": [list(d) for d in self.decisions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PathFile":
        return cls(
            (data["target"][0], data["target"][1]),
            bool(data["forced_outcome"]),
            [(d[0], d[1], bool(d[2])) for d in data["decisions"]],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "PathFile":
        return cls.from_dict(json.loads(text))


@dataclass
class ExplorationStats:
    """What the frontier did across one (possibly resumed) exploration."""

    paths_explored: int = 0
    ucbs_discovered: int = 0
    ucbs_covered: int = 0
    #: Every offered candidate whose decision prefix was already
    #: scheduled — including the UCB analysis re-proposing a
    #: still-uncovered flip on each later iteration, which a dedup-free
    #: explorer would replay every time.
    replays_saved_by_dedup: int = 0
    #: Fully-covered branch sites after the baseline run and after every
    #: replay, in execution order — ``curve[i]`` is coverage once ``i``
    #: replays have merged.
    coverage_curve: list[int] = field(default_factory=list)
    #: The flips actually replayed, in execution order.
    exploration_order: list[FlipKey] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "paths_explored": self.paths_explored,
            "ucbs_discovered": self.ucbs_discovered,
            "ucbs_covered": self.ucbs_covered,
            "replays_saved_by_dedup": self.replays_saved_by_dedup,
            "coverage_curve": list(self.coverage_curve),
            "exploration_order": [list(k) for k in self.exploration_order],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExplorationStats":
        return cls(
            paths_explored=data.get("paths_explored", 0),
            ucbs_discovered=data.get("ucbs_discovered", 0),
            ucbs_covered=data.get("ucbs_covered", 0),
            replays_saved_by_dedup=data.get("replays_saved_by_dedup", 0),
            coverage_curve=list(data.get("coverage_curve", [])),
            exploration_order=[
                (k[0], k[1], bool(k[2]))
                for k in data.get("exploration_order", [])
            ],
        )


class ExplorationScheduler:
    """Priority frontier of path files with dedup, budget and state.

    The engine *offers* every candidate the UCB analysis produces; the
    scheduler decides which replays actually happen and in what order.
    An offer whose decision prefix was already scheduled is dropped and
    counted as a saved replay.  ``pop_wave`` hands back the next batch
    in strategy order, never exceeding the remaining ``max_paths``
    budget.  The whole frontier serialises to a JSON-safe dict, so an
    interrupted exploration can continue exactly where it stopped.
    """

    def __init__(self, strategy: str = STRATEGY_BFS,
                 max_paths: int | None = None) -> None:
        if strategy not in ALL_STRATEGIES:
            raise ValueError(
                f"unknown exploration strategy {strategy!r}; "
                f"pick one of {ALL_STRATEGIES}"
            )
        self.strategy = strategy
        self.max_paths = max_paths
        self._heap: list[tuple[tuple, int, PathFile]] = []
        self._seq = 0
        # prefix digest -> the flip it schedules (the value exists so a
        # resumed session can release still-uncovered entries).
        self._scheduled: dict[str, FlipKey] = {}
        self._discovered: set[FlipKey] = set()
        # Replays already spent when the current session's budget was
        # set; ``max_paths`` limits replays *since* this point, so a
        # resumed exploration gets a fresh budget (session-local state,
        # deliberately not serialised).
        self._budget_base = 0
        #: How often each branch site appeared across all merged traces
        #: (the rarity signal).
        self.site_observations: dict[BranchSite, int] = {}
        self.stats = ExplorationStats()
        #: Optional progress callback: called with a JSON-safe snapshot
        #: after each replayed wave merges (see :meth:`notify_wave`).
        #: Session-local — never serialised with the frontier.
        self.wave_observer: Callable[[dict], None] | None = None

    # -- trace feedback -----------------------------------------------------

    def observe_trace(self, trace: list[Decision]) -> None:
        """Fold one run's branch decisions into the rarity counts."""
        for signature, dex_pc, _taken in trace:
            site = (signature, dex_pc)
            self.site_observations[site] = \
                self.site_observations.get(site, 0) + 1

    # -- scheduling ---------------------------------------------------------

    def _priority(self, path: PathFile) -> tuple:
        """Strategy-dependent sort key, stamped at offer time.

        The tail (target site + outcome) breaks ties deterministically,
        and the monotone sequence number below it keeps equal-priority
        paths in offer order — the order never depends on worker count.
        """
        depth = len(path.decisions)
        if self.strategy == STRATEGY_DFS:
            head: tuple = (-depth,)
        elif self.strategy == STRATEGY_RARITY:
            head = (self.site_observations.get(path.target, 0), depth)
        else:  # bfs
            head = (depth,)
        return head + (path.target[0], path.target[1], path.forced_outcome)

    def offer(self, path: PathFile) -> bool:
        """Schedule a candidate; False when dedup collapsed it.

        Dedup is by decision-prefix digest: two offers collapse exactly
        when replaying them would force the identical branch sequence.
        The per-iteration re-proposal case stays cheap because the
        digest is memoized on the path object the engine reuses.
        """
        self._discovered.add(path.flip_key)
        self.stats.ucbs_discovered = len(self._discovered)
        digest = path.prefix_hash()
        if digest in self._scheduled:
            self.stats.replays_saved_by_dedup += 1
            return False
        self._scheduled[digest] = path.flip_key
        heapq.heappush(self._heap, (self._priority(path), self._seq, path))
        self._seq += 1
        return True

    @property
    def pending(self) -> int:
        return len(self._heap)

    def begin_session(self, max_paths: int | None) -> None:
        """Start a (resumed) session: ``max_paths`` applies afresh.

        Without this, resuming an exploration with the same config that
        interrupted it would find its budget already spent and replay
        nothing.
        """
        self.max_paths = max_paths
        self._budget_base = self.stats.paths_explored

    def release_uncovered(self, outcomes: dict[BranchSite, set[bool]]) -> int:
        """Forget scheduled prefixes whose target is still uncovered.

        A replay that starved (per-path budget) or diverged never
        covered its flip; keeping its digest in the dedup set would
        block every future session from retrying it — e.g. a resume
        with a larger ``path_budget``.  Prefixes still waiting in the
        frontier keep their digests (releasing them would double-
        schedule).  Called by the engine when a session resumes;
        returns how many prefixes became offerable again.
        """
        waiting = {path.prefix_hash() for _, _, path in self._heap}
        released = 0
        for digest, (signature, dex_pc, _outcome) in list(
                self._scheduled.items()):
            if digest in waiting:
                continue
            if len(outcomes.get((signature, dex_pc), ())) < 2:
                del self._scheduled[digest]
                released += 1
        return released

    def replays_remaining(self) -> int | None:
        """Replays left under this session's ``max_paths``; None means
        unbounded."""
        if self.max_paths is None:
            return None
        spent = self.stats.paths_explored - self._budget_base
        return max(0, self.max_paths - spent)

    def pop_wave(self, limit: int | None = None) -> list[PathFile]:
        """The next batch of paths, best-first, within every budget."""
        count = self.pending
        if limit is not None:
            count = min(count, max(0, limit))
        remaining = self.replays_remaining()
        if remaining is not None:
            count = min(count, remaining)
        return [heapq.heappop(self._heap)[2] for _ in range(count)]

    def note_replayed(self, path: PathFile) -> None:
        """Record one executed replay (budget + order bookkeeping)."""
        self.stats.paths_explored += 1
        self.stats.exploration_order.append(path.flip_key)

    def record_coverage(self, covered_sites: int) -> None:
        self.stats.coverage_curve.append(covered_sites)

    def wave_snapshot(self, wave_size: int) -> dict:
        """JSON-safe progress digest after one wave of replays merged."""
        curve = self.stats.coverage_curve
        return {
            "wave_size": wave_size,
            "paths_explored": self.stats.paths_explored,
            "ucbs_discovered": self.stats.ucbs_discovered,
            "replays_saved_by_dedup": self.stats.replays_saved_by_dedup,
            "frontier_pending": self.pending,
            "covered_sites": curve[-1] if curve else 0,
            "strategy": self.strategy,
        }

    def notify_wave(self, wave_size: int) -> None:
        """Push a wave snapshot to the observer (which must not be able
        to break the exploration — exceptions are swallowed)."""
        if self.wave_observer is None:
            return
        try:
            self.wave_observer(self.wave_snapshot(wave_size))
        except Exception:
            pass

    def finalize_covered(self, outcomes: dict[BranchSite, set[bool]]) -> None:
        """How many discovered UCB flips ended up actually covered."""
        self.stats.ucbs_covered = sum(
            1
            for signature, dex_pc, _outcome in self._discovered
            if len(outcomes.get((signature, dex_pc), ())) == 2
        )

    # -- state serialisation ------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe frontier snapshot (heap order preserved exactly)."""
        return {
            "strategy": self.strategy,
            "max_paths": self.max_paths,
            "seq": self._seq,
            "frontier": [
                [list(priority), seq, path.to_dict()]
                for priority, seq, path in sorted(
                    self._heap, key=lambda entry: (entry[0], entry[1])
                )
            ],
            "scheduled": [
                [digest, list(key)]
                for digest, key in sorted(self._scheduled.items())
            ],
            "discovered": [list(key) for key in sorted(self._discovered)],
            "site_observations": [
                [signature, dex_pc, count]
                for (signature, dex_pc), count in sorted(
                    self.site_observations.items()
                )
            ],
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExplorationScheduler":
        scheduler = cls(data.get("strategy", STRATEGY_BFS),
                        data.get("max_paths"))
        scheduler._seq = data.get("seq", 0)
        for priority, seq, path_data in data.get("frontier", []):
            scheduler._heap.append(
                (tuple(priority), seq, PathFile.from_dict(path_data))
            )
        heapq.heapify(scheduler._heap)
        scheduler._scheduled = {
            digest: (key[0], key[1], bool(key[2]))
            for digest, key in data.get("scheduled", [])
        }
        scheduler._discovered = {
            (k[0], k[1], bool(k[2])) for k in data.get("discovered", [])
        }
        scheduler.site_observations = {
            (signature, dex_pc): count
            for signature, dex_pc, count in data.get("site_observations", [])
        }
        scheduler.stats = ExplorationStats.from_dict(data.get("stats", {}))
        return scheduler
