"""Iterative force execution (paper §III-C, §IV-E, Figure 4).

The engine repeats: run the app, identify Uncovered Conditional Branches
(UCBs — branch sites where only one outcome has ever been observed),
compute a *path file* to each UCB (the branch-decision prefix of the run
that reached it, with the final decision flipped), then replay with a
:class:`ForcedPathController` that manipulates conditional outcomes in
the interpreter.  Unhandled exceptions are cleared
(``runtime.tolerate_exceptions``) so infeasible paths don't kill the
process.  Iteration stops when no new UCBs appear.

Scheduling is delegated to
:class:`~repro.core.exploration.ExplorationScheduler`: candidates are
*offered* (decision-prefix dedup collapses repeats), popped back in
strategy order (``bfs`` / ``dfs`` / ``rarity-first``), and capped by a
total replay budget.  Each wave of replays runs on isolated
:class:`~repro.runtime.art.AndroidRuntime` instances through one of
three backends — ``serial``, a ``thread`` pool, or a ``process`` pool
of forked workers — and every replay comes back as a
:class:`~repro.core.replay.TraceDelta` that the engine merges strictly
in pop order.  Because results travel as values and merging is ordered
and single-threaded, the covered-site set, the collector's records and
the exploration order are bit-for-bit identical at any worker count on
any backend.  The whole exploration state serialises via
:meth:`ForceExecutionEngine.state_dict` and resumes via
``resume_state=``, which is how an interrupted exploration continues
out of a collection archive.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.collector import DexLegoCollector
from repro.core.exploration import (
    BACKEND_PROCESS,
    BACKEND_SERIAL,
    BACKEND_THREAD,
    EXPLORE_BACKENDS,
    STRATEGY_BFS,
    BranchSite,
    Decision,
    ExplorationScheduler,
    FlipKey,
    PathFile,
)
from repro.core.replay import (
    BranchTraceListener,
    ForcedPathController,
    ReplaySpec,
    TraceDelta,
    _process_worker_init,
    _process_worker_replay,
    execute_replay,
)
from repro.runtime.device import NEXUS_5X, DeviceProfile
from repro.runtime.hooks import RuntimeListener
from repro.runtime.predecode import export_predecode_index

__all__ = [
    "BranchSite",
    "BranchTraceListener",
    "Decision",
    "ForceExecutionEngine",
    "ForceExecutionReport",
    "ForcedPathController",
    "PathFile",
    "ReplaySpec",
    "TraceDelta",
]


@dataclass
class ForceExecutionReport:
    """Outcome of one engine run (or one resumed continuation)."""

    iterations: int = 0
    runs: int = 0
    paths_executed: int = 0
    native_crashes: int = 0
    budget_exhausted_runs: int = 0
    branch_sites: int = 0
    fully_covered_sites: int = 0
    # -- exploration-scheduler view ----------------------------------------
    strategy: str = STRATEGY_BFS
    backend: str = BACKEND_THREAD
    workers: int = 1
    ucbs_discovered: int = 0
    ucbs_covered: int = 0
    paths_deduped: int = 0
    forced_decisions: int = 0
    paths_reaching_target: int = 0
    #: Interpreter steps consumed by replays (not the baseline run),
    #: summed from the per-replay deltas — deterministic across
    #: backends, unlike wall clock.
    replay_steps: int = 0
    #: Replays whose worker process died; each cost one path, never
    #: the wave (see the crash-isolation contract in `_replay_wave`).
    workers_lost: int = 0
    coverage_curve: list[int] = field(default_factory=list)
    exploration_order: list[FlipKey] = field(default_factory=list)
    frontier_pending: int = 0
    resumed: bool = False

    @property
    def branch_outcome_coverage(self) -> float:
        if not self.branch_sites:
            return 1.0
        return self.fully_covered_sites / self.branch_sites

    def to_summary(self) -> dict:
        """JSON-safe digest for outcome records and batch reports."""
        return {
            "strategy": self.strategy,
            "backend": self.backend,
            "workers": self.workers,
            "iterations": self.iterations,
            "runs": self.runs,
            "paths_explored": self.paths_executed,
            "ucbs_discovered": self.ucbs_discovered,
            "ucbs_covered": self.ucbs_covered,
            "replays_saved_by_dedup": self.paths_deduped,
            "paths_reaching_target": self.paths_reaching_target,
            "forced_decisions": self.forced_decisions,
            "replay_steps": self.replay_steps,
            "workers_lost": self.workers_lost,
            "branch_sites": self.branch_sites,
            "fully_covered_sites": self.fully_covered_sites,
            "branch_outcome_coverage": round(self.branch_outcome_coverage, 4),
            "native_crashes": self.native_crashes,
            "budget_exhausted_runs": self.budget_exhausted_runs,
            "frontier_pending": self.frontier_pending,
            "resumed": self.resumed,
            "coverage_curve": list(self.coverage_curve),
        }


#: Counter keys that survive a save/resume round trip (state_dict's
#: ``report`` section); the scheduler owns the replay counts and curves.
_REPORT_COUNTER_KEYS = (
    "iterations",
    "runs",
    "native_crashes",
    "budget_exhausted_runs",
    "forced_decisions",
    "paths_reaching_target",
    "replay_steps",
    "workers_lost",
)


class ForceExecutionEngine:
    """Drives iterative force execution over fresh runtime instances.

    One iteration = one UCB/path analysis plus one *wave* of replays
    popped from the scheduler (at most ``max_paths_per_iteration``).
    ``backend`` picks how a wave executes:

    * ``serial`` — replays run one after another in this process;
    * ``thread`` — replays run on a ``workers``-wide thread pool;
    * ``process`` — replays ship to a pool of forked worker processes
      as :class:`~repro.core.replay.ReplaySpec` values; each worker
      hydrates the APK once (warm-started from the parent's exported
      predecode index) and keeps it across replays.

    Every replay returns a :class:`~repro.core.replay.TraceDelta` and
    the engine merges the deltas strictly in pop order — traces into
    the covered-outcome map, collector payloads into ``collector`` —
    so exploration state *and* collection output are identical at any
    worker count on any backend.  ``shared_listeners`` still attach
    live to in-process replays (they cannot cross a process boundary;
    combining them with the process backend is an error — ship a
    ``collector`` instead).

    A worker process dying mid-wave (a replay tripping a hard native
    fault) costs exactly that replay: completed results are kept, the
    pool is rebuilt, the remaining paths retry, and the lost path is
    charged as ``workers_lost`` with an empty delta.

    ``resume_state`` (a dict from :meth:`state_dict`, usually loaded
    from a collection archive) restores the frontier, covered-outcome
    map and counters; the constructor's ``max_paths`` then applies as
    this session's replay budget, while the recorded strategy continues
    (frontier priorities were stamped under it).
    """

    def __init__(
        self,
        apk,
        drive=None,
        device: DeviceProfile = NEXUS_5X,
        shared_listeners: list[RuntimeListener] | None = None,
        collector: DexLegoCollector | None = None,
        run_budget: int = 2_000_000,
        max_iterations: int = 25,
        max_paths_per_iteration: int = 64,
        strategy: str = STRATEGY_BFS,
        max_paths: int | None = None,
        path_budget: int | None = None,
        workers: int = 1,
        backend: str = BACKEND_THREAD,
        resume_state: dict | None = None,
        wave_observer=None,
    ) -> None:
        if backend not in EXPLORE_BACKENDS:
            raise ValueError(
                f"unknown explore backend {backend!r}; "
                f"pick one of {EXPLORE_BACKENDS}"
            )
        self.apk = apk
        self._custom_drive = drive is not None
        self.drive = drive or (lambda driver: driver.run_standard_session())
        self.device = device
        self.shared_listeners = shared_listeners or []
        self.collector = collector
        if backend == BACKEND_PROCESS:
            if self._custom_drive:
                raise ValueError(
                    "the process backend cannot ship a custom drive "
                    "callable to worker processes; use the thread or "
                    "serial backend (or the default drive)"
                )
            if self.shared_listeners:
                raise ValueError(
                    "the process backend cannot attach shared listeners "
                    "across a process boundary; pass collector= (its "
                    "records travel back as TraceDeltas) or use the "
                    "thread or serial backend"
                )
            if "fork" not in multiprocessing.get_all_start_methods():
                # Forked workers are how native-library registries
                # reach the children; without fork, run threaded.
                backend = BACKEND_THREAD
        self.backend = backend
        self.run_budget = run_budget
        self.max_iterations = max_iterations
        self.max_paths_per_iteration = max_paths_per_iteration
        self.path_budget = path_budget if path_budget is not None else run_budget
        self.workers = max(1, workers)
        self.outcomes: dict[BranchSite, set[bool]] = {}
        # First-reaching trace per site, stored as (trace, index) so long
        # traces are shared rather than copied per site.
        self.site_trace: dict[BranchSite, tuple[list[Decision], int]] = {}
        # Candidate path files by flip key; a site's prefix never
        # changes once site_trace holds it, so build each once.
        self._candidates: dict[FlipKey, PathFile] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._report_seed: dict | None = None
        self._resumed = False
        self.last_report: ForceExecutionReport | None = None
        if resume_state is not None:
            self.load_state(resume_state)
            # This session's replay budget starts fresh — resuming with
            # the interrupting config must continue, not no-op — and
            # prefixes whose replay never covered its flip (starved or
            # diverged) become offerable again, so a resume with a
            # larger path_budget can actually retry them.
            self.scheduler.begin_session(max_paths)
            self.scheduler.release_uncovered(self.outcomes)
        else:
            self.scheduler = ExplorationScheduler(strategy, max_paths)
        # Progress channel: the scheduler pushes a snapshot after every
        # merged wave (session-local, never part of the resume state).
        self.scheduler.wave_observer = wave_observer

    # -- one run ------------------------------------------------------------

    def _inprocess_spec(self, path: PathFile | None,
                        budget: int) -> ReplaySpec:
        """A spec for a replay that stays in this process (no APK bytes
        — the live object is passed alongside and shares its warm
        decode stores across the wave)."""
        return ReplaySpec(
            app_id=self.apk.package,
            apk_bytes=b"",
            device=self.device,
            path=path,
            step_budget=budget,
            collect=self.collector is not None,
        )

    def _run_baseline(self) -> TraceDelta:
        """The "previous execution" baseline of Figure 4."""
        spec = self._inprocess_spec(None, self.run_budget)
        return execute_replay(spec, apk=self.apk, drive=self.drive,
                              extra_listeners=tuple(self.shared_listeners))

    def _replay_inprocess(self, path: PathFile) -> TraceDelta:
        # Round-trip through the serialised path-file format, exactly
        # like a spec shipped to a worker process would.
        spec = self._inprocess_spec(PathFile.from_json(path.to_json()),
                                    self.path_budget)
        return execute_replay(spec, apk=self.apk, drive=self.drive,
                              extra_listeners=tuple(self.shared_listeners))

    def _merge_trace(self, trace: list[Decision]) -> None:
        for index, (signature, dex_pc, taken) in enumerate(trace):
            site = (signature, dex_pc)
            self.outcomes.setdefault(site, set()).add(taken)
            if site not in self.site_trace:
                # Remember the first trace reaching this site (shared ref).
                self.site_trace[site] = (trace, index)

    def _covered_sites(self) -> int:
        return sum(1 for seen in self.outcomes.values() if len(seen) == 2)

    def _absorb_delta(self, delta: TraceDelta, path: PathFile | None,
                      report: ForceExecutionReport) -> None:
        """Deterministic post-replay merge, the only writer of shared
        state: trace, rarity, curve, order, collector records and
        report counters — all in pop order, all on one thread."""
        self._merge_trace(delta.trace)
        self.scheduler.observe_trace(delta.trace)
        if path is not None:
            self.scheduler.note_replayed(path)
            report.replay_steps += delta.steps
        self.scheduler.record_coverage(self._covered_sites())
        if self.collector is not None and delta.collector is not None:
            self.collector.absorb(delta.collector)
        report.runs += 1
        if delta.budget_hit:
            report.budget_exhausted_runs += 1
        if delta.crashed:
            report.native_crashes += 1
        if delta.worker_lost:
            report.workers_lost += 1
        report.forced_decisions += delta.forced
        if delta.reached_target:
            report.paths_reaching_target += 1

    # -- UCB analysis ----------------------------------------------------------

    def _uncovered_branches(self) -> list[PathFile]:
        """Branch analysis + path analysis of Figure 4.

        Produces *every* current candidate, in a deterministic site
        order; prioritisation and dedup belong to the scheduler, which
        collapses re-proposals of prefixes it has already seen.
        """
        paths: list[PathFile] = []
        for site, seen in sorted(self.outcomes.items()):
            if len(seen) == 2:
                continue
            missing = not next(iter(seen))
            key = (site[0], site[1], missing)
            path = self._candidates.get(key)
            if path is None:
                located = self.site_trace.get(site)
                if located is None:
                    continue
                trace, index = located
                decisions = trace[:index] + [(site[0], site[1], missing)]
                path = PathFile(site, missing, decisions)
                self._candidates[key] = path
            paths.append(path)
        return paths

    # -- wave replay --------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The lazy worker pool: built after the baseline ran, so the
        exported predecode index carries the parent's warm decodes."""
        if self._pool is None:
            index = export_predecode_index(self.apk.dex_files)
            spec = ReplaySpec(
                app_id=self.apk.package,
                apk_bytes=self.apk.to_bytes(),
                device=self.device,
                path=None,
                step_budget=self.path_budget,
                predecode_index=index if index.get("methods") else None,
                collect=self.collector is not None,
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_process_worker_init,
                initargs=(spec,),
            )
        return self._pool

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _replay_wave_process(self, wave: list[PathFile]) -> list[TraceDelta]:
        """One wave on the worker pool, with crash isolation.

        Paths ship as serialised path files; results come back as
        deltas and are collected in wave (pop) order.  A worker dying
        breaks the whole pool, so the recovery path keeps every result
        that already completed, rebuilds the pool, and resubmits the
        rest; a path whose replay kills its worker twice is charged as
        a lost replay (empty delta, ``worker_lost``) instead of
        poisoning the wave.
        """
        results: list[TraceDelta | None] = [None] * len(wave)
        attempts = [0] * len(wave)
        futures: list = [None] * len(wave)

        def submit_pending() -> None:
            pool = self._ensure_pool()
            for j, path in enumerate(wave):
                if results[j] is None:
                    futures[j] = pool.submit(_process_worker_replay,
                                             path.to_json())

        def harvest_done() -> None:
            for j in range(len(wave)):
                future = futures[j]
                if results[j] is None and future is not None and future.done():
                    try:
                        results[j] = future.result()
                    except Exception:
                        pass  # its turn in the main loop handles retry

        submit_pending()
        for j in range(len(wave)):
            while results[j] is None:
                try:
                    results[j] = futures[j].result()
                except Exception:
                    attempts[j] += 1
                    harvest_done()
                    self._shutdown_pool()
                    if attempts[j] >= 2:
                        results[j] = TraceDelta(crashed=True,
                                                worker_lost=True)
                    submit_pending()
        return results

    def _replay_wave(self, wave: list[PathFile]) -> list[TraceDelta]:
        """Replay one wave of path files on isolated runtimes.

        Deltas come back in wave (pop) order regardless of backend, so
        the merged exploration state is worker-count-independent.
        """
        if self.backend == BACKEND_PROCESS:
            return self._replay_wave_process(wave)
        if (self.backend == BACKEND_SERIAL or self.workers == 1
                or len(wave) == 1):
            return [self._replay_inprocess(path) for path in wave]
        pool_size = min(self.workers, len(wave))
        with ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="explore"
        ) as pool:
            return list(pool.map(self._replay_inprocess, wave))

    # -- iteration loop -----------------------------------------------------------

    def run(self) -> ForceExecutionReport:
        report = self._new_report()
        scheduler = self.scheduler
        try:
            if not self._resumed:
                self._absorb_delta(self._run_baseline(), None, report)
            # The iteration cap, like max_paths, is a per-session budget:
            # report.iterations stays cumulative across resumes, the cap
            # governs only this session's analysis rounds.
            session_iterations = 0
            while session_iterations < self.max_iterations:
                for path in self._uncovered_branches():
                    scheduler.offer(path)
                wave = scheduler.pop_wave(self.max_paths_per_iteration)
                if not wave:
                    break
                session_iterations += 1
                report.iterations += 1
                deltas = self._replay_wave(wave)
                for path, delta in zip(wave, deltas):
                    self._absorb_delta(delta, path, report)
                scheduler.notify_wave(len(wave))
                if scheduler.replays_remaining() == 0:
                    break
        finally:
            self._shutdown_pool()
        self._finalize(report)
        self.last_report = report
        return report

    def _new_report(self) -> ForceExecutionReport:
        report = ForceExecutionReport()
        seed = self._report_seed
        if seed is not None:
            for key in _REPORT_COUNTER_KEYS:
                setattr(report, key, seed.get(key, 0))
            report.resumed = True
        return report

    def _finalize(self, report: ForceExecutionReport) -> None:
        report.branch_sites = len(self.outcomes)
        report.fully_covered_sites = self._covered_sites()
        self.scheduler.finalize_covered(self.outcomes)
        stats = self.scheduler.stats
        # The scheduler's stats are the single source for replay
        # counters; the report mirrors them (cumulative across resumes).
        report.paths_executed = stats.paths_explored
        report.strategy = self.scheduler.strategy
        report.backend = self.backend
        report.workers = self.workers
        report.ucbs_discovered = stats.ucbs_discovered
        report.ucbs_covered = stats.ucbs_covered
        report.paths_deduped = stats.replays_saved_by_dedup
        report.coverage_curve = list(stats.coverage_curve)
        report.exploration_order = list(stats.exploration_order)
        report.frontier_pending = self.scheduler.pending

    # -- state (resume) -----------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe exploration state: frontier, coverage, counters.

        Serialised into the collection archive by the collect stage;
        feeding it back as ``resume_state`` continues the exploration
        (no baseline re-run, frontier and dedup set intact).
        """
        # Counters come from the finished run, or — for a resumed
        # engine checkpointed before/without run() completing — from
        # the seed loaded out of resume_state, so cumulative run counts
        # survive a save that happens between sessions.
        if self.last_report is not None:
            seed = {
                key: getattr(self.last_report, key)
                for key in _REPORT_COUNTER_KEYS
            }
        else:
            seed = self._report_seed or {}
        counters = {
            key: seed.get(key, 0) for key in _REPORT_COUNTER_KEYS
        }
        # Serialise each distinct trace once and point sites at it by
        # (trace id, index) — mirroring the in-memory sharing; copying
        # trace[:index] per site would blow the file up quadratically.
        traces: list[list[Decision]] = []
        trace_ids: dict[int, int] = {}
        site_refs: list[list] = []
        for (signature, dex_pc), (trace, index) in sorted(
                self.site_trace.items()):
            tid = trace_ids.get(id(trace))
            if tid is None:
                tid = len(traces)
                trace_ids[id(trace)] = tid
                traces.append(trace)
            site_refs.append([signature, dex_pc, tid, index])
        return {
            "version": 1,
            # Which application this frontier belongs to (the main
            # activity anchors the signature space the path files
            # reference); resuming against a different app is rejected
            # instead of silently merging two apps' collections.
            "apk_main_activity": getattr(self.apk, "main_activity", None),
            "scheduler": self.scheduler.to_dict(),
            "outcomes": [
                [signature, dex_pc, sorted(seen)]
                for (signature, dex_pc), seen in sorted(self.outcomes.items())
            ],
            "traces": [[list(d) for d in trace] for trace in traces],
            "site_traces": site_refs,
            # Run-level counters the scheduler does not own; replay
            # counts and curves live in (and resume from) the
            # scheduler's own stats above.
            "report": counters,
        }

    def load_state(self, state: dict) -> None:
        recorded = state.get("apk_main_activity")
        current = getattr(self.apk, "main_activity", None)
        if recorded is not None and current is not None \
                and recorded != current:
            raise ValueError(
                f"exploration state belongs to an app with main activity "
                f"{recorded!r}, not {current!r}; refusing to merge two "
                "applications"
            )
        self.scheduler = ExplorationScheduler.from_dict(state["scheduler"])
        self.outcomes = {
            (signature, dex_pc): {bool(v) for v in seen}
            for signature, dex_pc, seen in state.get("outcomes", [])
        }
        traces = [
            [(d[0], d[1], bool(d[2])) for d in trace]
            for trace in state.get("traces", [])
        ]
        self.site_trace = {
            (signature, dex_pc): (traces[tid], index)
            for signature, dex_pc, tid, index in state.get("site_traces", [])
        }
        self._report_seed = state.get("report", {})
        self._resumed = True
