"""Iterative force execution (paper §III-C, §IV-E, Figure 4).

The engine repeats: run the app, identify Uncovered Conditional Branches
(UCBs — branch sites where only one outcome has ever been observed),
compute a *path file* to each UCB (the branch-decision prefix of the run
that reached it, with the final decision flipped), then replay with a
:class:`ForcedPathController` that manipulates conditional outcomes in
the interpreter.  Unhandled exceptions are cleared
(``runtime.tolerate_exceptions``) so infeasible paths don't kill the
process.  Iteration stops when no new UCBs appear.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

from repro.errors import BudgetExceeded, VmCrash
from repro.runtime.art import AndroidRuntime
from repro.runtime.device import NEXUS_5X, DeviceProfile
from repro.runtime.events import AppDriver
from repro.runtime.exceptions import VmThrow
from repro.runtime.hooks import BranchController, RuntimeListener

BranchSite = tuple[str, int]  # (method signature, dex_pc)
Decision = tuple[str, int, bool]


class BranchTraceListener(RuntimeListener):
    """Records the ordered conditional-branch decisions of one run."""

    def __init__(self) -> None:
        self.trace: list[Decision] = []

    def on_branch(self, frame, dex_pc: int, ins, taken: bool) -> None:
        method = frame.method
        if method.declaring_class.source_dex is None:
            return
        self.trace.append((method.ref.signature, dex_pc, taken))


@dataclass
class PathFile:
    """A path to one UCB: decision prefix plus the final flip (§IV-E)."""

    target: BranchSite
    forced_outcome: bool
    decisions: list[Decision] = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps(
            {
                "target": list(self.target),
                "forced_outcome": self.forced_outcome,
                "decisions": [list(d) for d in self.decisions],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "PathFile":
        data = json.loads(text)
        return cls(
            (data["target"][0], data["target"][1]),
            data["forced_outcome"],
            [(d[0], d[1], bool(d[2])) for d in data["decisions"]],
        )


class ForcedPathController(BranchController):
    """Forces the interpreter along a path file's decisions, in order."""

    def __init__(self, path: PathFile) -> None:
        self.queue: deque[Decision] = deque(path.decisions)
        self.mismatches = 0
        self.forced = 0

    def decide(self, frame, dex_pc: int, ins, concrete_taken: bool) -> bool | None:
        if not self.queue:
            return None  # past the UCB: free execution
        signature, expected_pc, outcome = self.queue[0]
        if (
            frame.method.declaring_class.source_dex is not None
            and frame.method.ref.signature == signature
            and dex_pc == expected_pc
        ):
            self.queue.popleft()
            self.forced += 1
            return outcome
        if frame.method.declaring_class.source_dex is not None:
            self.mismatches += 1
        return None


@dataclass
class ForceExecutionReport:
    """Outcome of one engine run."""

    iterations: int = 0
    runs: int = 0
    paths_executed: int = 0
    native_crashes: int = 0
    budget_exhausted_runs: int = 0
    branch_sites: int = 0
    fully_covered_sites: int = 0

    @property
    def branch_outcome_coverage(self) -> float:
        if not self.branch_sites:
            return 1.0
        return self.fully_covered_sites / self.branch_sites


class ForceExecutionEngine:
    """Drives iterative force execution over fresh runtime instances."""

    def __init__(
        self,
        apk,
        drive=None,
        device: DeviceProfile = NEXUS_5X,
        shared_listeners: list[RuntimeListener] | None = None,
        run_budget: int = 2_000_000,
        max_iterations: int = 25,
        max_paths_per_iteration: int = 64,
    ) -> None:
        self.apk = apk
        self.drive = drive or (lambda driver: driver.run_standard_session())
        self.device = device
        self.shared_listeners = shared_listeners or []
        self.run_budget = run_budget
        self.max_iterations = max_iterations
        self.max_paths_per_iteration = max_paths_per_iteration
        self.outcomes: dict[BranchSite, set[bool]] = {}
        # First-reaching trace per site, stored as (trace, index) so long
        # traces are shared rather than copied per site.
        self.site_trace: dict[BranchSite, tuple[list[Decision], int]] = {}
        self._attempted: set[tuple[str, int, bool]] = set()

    # -- one run ------------------------------------------------------------

    def _execute(
        self, controller: ForcedPathController | None, report: ForceExecutionReport
    ) -> list[Decision]:
        runtime = AndroidRuntime(self.device, max_steps=self.run_budget)
        runtime.tolerate_exceptions = True
        runtime.branch_controller = controller
        tracer = BranchTraceListener()
        runtime.add_listener(tracer)
        for listener in self.shared_listeners:
            runtime.add_listener(listener)
        driver = AppDriver(runtime, self.apk)
        report.runs += 1
        try:
            self.drive(driver)
        except BudgetExceeded:
            report.budget_exhausted_runs += 1
        except (VmCrash, VmThrow):
            # Native crashes (and any exception escaping the tolerant
            # interpreter) end the run but keep what was collected.
            report.native_crashes += 1
        self._merge_trace(tracer.trace)
        return tracer.trace

    def _merge_trace(self, trace: list[Decision]) -> None:
        for index, (signature, dex_pc, taken) in enumerate(trace):
            site = (signature, dex_pc)
            self.outcomes.setdefault(site, set()).add(taken)
            if site not in self.site_trace:
                # Remember the first trace reaching this site (shared ref).
                self.site_trace[site] = (trace, index)

    # -- UCB analysis ----------------------------------------------------------

    def _uncovered_branches(self) -> list[PathFile]:
        """Branch analysis + path analysis of Figure 4.

        Entry-point branches (activity methods) are prioritised: flipping
        a gate in ``onCreate`` typically unlocks far more code than a
        data branch deep in a worker method.
        """
        paths: list[PathFile] = []
        ordered = sorted(
            self.outcomes.items(),
            key=lambda item: (0 if "Activity" in item[0][0] else 1, item[0]),
        )
        for site, seen in ordered:
            if len(seen) == 2:
                continue
            missing = not next(iter(seen))
            key = (site[0], site[1], missing)
            if key in self._attempted:
                continue
            located = self.site_trace.get(site)
            if located is None:
                continue
            trace, index = located
            decisions = trace[:index] + [(site[0], site[1], missing)]
            paths.append(PathFile(site, missing, decisions))
            if len(paths) >= self.max_paths_per_iteration:
                break
        return paths

    # -- iteration loop -----------------------------------------------------------

    def run(self) -> ForceExecutionReport:
        report = ForceExecutionReport()
        self._execute(None, report)  # the "previous execution" baseline
        for _ in range(self.max_iterations):
            paths = self._uncovered_branches()
            if not paths:
                break
            report.iterations += 1
            for path in paths:
                self._attempted.add(
                    (path.target[0], path.target[1], path.forced_outcome)
                )
                # Round-trip through the serialised path-file format.
                controller = ForcedPathController(PathFile.from_json(path.to_json()))
                self._execute(controller, report)
                report.paths_executed += 1
        report.branch_sites = len(self.outcomes)
        report.fully_covered_sites = sum(
            1 for seen in self.outcomes.values() if len(seen) == 2
        )
        return report
