"""Iterative force execution (paper §III-C, §IV-E, Figure 4).

The engine repeats: run the app, identify Uncovered Conditional Branches
(UCBs — branch sites where only one outcome has ever been observed),
compute a *path file* to each UCB (the branch-decision prefix of the run
that reached it, with the final decision flipped), then replay with a
:class:`ForcedPathController` that manipulates conditional outcomes in
the interpreter.  Unhandled exceptions are cleared
(``runtime.tolerate_exceptions``) so infeasible paths don't kill the
process.  Iteration stops when no new UCBs appear.

Scheduling is delegated to
:class:`~repro.core.exploration.ExplorationScheduler`: candidates are
*offered* (decision-prefix dedup collapses repeats), popped back in
strategy order (``bfs`` / ``dfs`` / ``rarity-first``), and capped by a
total replay budget.  Each wave of replays runs on isolated
:class:`~repro.runtime.art.AndroidRuntime` instances — serially or
across a thread pool — and traces merge in pop order, so the covered
set and exploration order are identical at any worker count.  The
whole exploration state serialises via :meth:`ForceExecutionEngine.state_dict`
and resumes via ``resume_state=``, which is how an interrupted
exploration continues out of a collection archive.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.exploration import (
    STRATEGY_BFS,
    BranchSite,
    Decision,
    ExplorationScheduler,
    FlipKey,
    PathFile,
)
from repro.errors import BudgetExceeded, VmCrash
from repro.runtime.art import AndroidRuntime
from repro.runtime.device import NEXUS_5X, DeviceProfile
from repro.runtime.events import AppDriver, DriveReport
from repro.runtime.exceptions import VmThrow
from repro.runtime.hooks import BranchController, RuntimeListener

__all__ = [
    "BranchSite",
    "BranchTraceListener",
    "Decision",
    "ForceExecutionEngine",
    "ForceExecutionReport",
    "ForcedPathController",
    "PathFile",
]


class BranchTraceListener(RuntimeListener):
    """Records the ordered conditional-branch decisions of one run."""

    def __init__(self) -> None:
        self.trace: list[Decision] = []

    def on_branch(self, frame, dex_pc: int, ins, taken: bool) -> None:
        method = frame.method
        if method.declaring_class.source_dex is None:
            return
        self.trace.append((method.ref.signature, dex_pc, taken))


class ForcedPathController(BranchController):
    """Forces the interpreter along a path file's decisions, in order."""

    def __init__(self, path: PathFile) -> None:
        self.queue: deque[Decision] = deque(path.decisions)
        self.mismatches = 0
        self.forced = 0

    def decide(self, frame, dex_pc: int, ins, concrete_taken: bool) -> bool | None:
        if not self.queue:
            return None  # past the UCB: free execution
        signature, expected_pc, outcome = self.queue[0]
        if (
            frame.method.declaring_class.source_dex is not None
            and frame.method.ref.signature == signature
            and dex_pc == expected_pc
        ):
            self.queue.popleft()
            self.forced += 1
            return outcome
        if frame.method.declaring_class.source_dex is not None:
            self.mismatches += 1
        return None

    @property
    def reached_target(self) -> bool:
        """True once every decision (including the flip) was forced."""
        return not self.queue


@dataclass
class ForceExecutionReport:
    """Outcome of one engine run (or one resumed continuation)."""

    iterations: int = 0
    runs: int = 0
    paths_executed: int = 0
    native_crashes: int = 0
    budget_exhausted_runs: int = 0
    branch_sites: int = 0
    fully_covered_sites: int = 0
    # -- exploration-scheduler view ----------------------------------------
    strategy: str = STRATEGY_BFS
    workers: int = 1
    ucbs_discovered: int = 0
    ucbs_covered: int = 0
    paths_deduped: int = 0
    forced_decisions: int = 0
    paths_reaching_target: int = 0
    coverage_curve: list[int] = field(default_factory=list)
    exploration_order: list[FlipKey] = field(default_factory=list)
    frontier_pending: int = 0
    resumed: bool = False

    @property
    def branch_outcome_coverage(self) -> float:
        if not self.branch_sites:
            return 1.0
        return self.fully_covered_sites / self.branch_sites

    def to_summary(self) -> dict:
        """JSON-safe digest for outcome records and batch reports."""
        return {
            "strategy": self.strategy,
            "workers": self.workers,
            "iterations": self.iterations,
            "runs": self.runs,
            "paths_explored": self.paths_executed,
            "ucbs_discovered": self.ucbs_discovered,
            "ucbs_covered": self.ucbs_covered,
            "replays_saved_by_dedup": self.paths_deduped,
            "paths_reaching_target": self.paths_reaching_target,
            "forced_decisions": self.forced_decisions,
            "branch_sites": self.branch_sites,
            "fully_covered_sites": self.fully_covered_sites,
            "branch_outcome_coverage": round(self.branch_outcome_coverage, 4),
            "native_crashes": self.native_crashes,
            "budget_exhausted_runs": self.budget_exhausted_runs,
            "frontier_pending": self.frontier_pending,
            "resumed": self.resumed,
            "coverage_curve": list(self.coverage_curve),
        }


class ForceExecutionEngine:
    """Drives iterative force execution over fresh runtime instances.

    One iteration = one UCB/path analysis plus one *wave* of replays
    popped from the scheduler (at most ``max_paths_per_iteration``).
    Waves execute serially or on a ``workers``-wide thread pool; every
    replay gets its own isolated runtime, shared listeners rely on the
    per-frame keying of the collector (and the GIL) for safe concurrent
    attachment, and traces merge in pop order either way — so the
    *exploration* state (order, covered-UCB set, coverage curve) is
    identical at any worker count.  Shared-listener *events*, however,
    interleave in completion order, so collector counters and
    collection-archive byte layout are only guaranteed reproducible at
    ``workers=1``.

    ``resume_state`` (a dict from :meth:`state_dict`, usually loaded
    from a collection archive) restores the frontier, covered-outcome
    map and counters; the constructor's ``max_paths`` then applies as
    this session's replay budget, while the recorded strategy continues
    (frontier priorities were stamped under it).
    """

    def __init__(
        self,
        apk,
        drive=None,
        device: DeviceProfile = NEXUS_5X,
        shared_listeners: list[RuntimeListener] | None = None,
        run_budget: int = 2_000_000,
        max_iterations: int = 25,
        max_paths_per_iteration: int = 64,
        strategy: str = STRATEGY_BFS,
        max_paths: int | None = None,
        path_budget: int | None = None,
        workers: int = 1,
        resume_state: dict | None = None,
        wave_observer=None,
    ) -> None:
        self.apk = apk
        self.drive = drive or (lambda driver: driver.run_standard_session())
        self.device = device
        self.shared_listeners = shared_listeners or []
        self.run_budget = run_budget
        self.max_iterations = max_iterations
        self.max_paths_per_iteration = max_paths_per_iteration
        self.path_budget = path_budget if path_budget is not None else run_budget
        self.workers = max(1, workers)
        self.outcomes: dict[BranchSite, set[bool]] = {}
        # First-reaching trace per site, stored as (trace, index) so long
        # traces are shared rather than copied per site.
        self.site_trace: dict[BranchSite, tuple[list[Decision], int]] = {}
        # Candidate path files by flip key; a site's prefix never
        # changes once site_trace holds it, so build each once.
        self._candidates: dict[FlipKey, PathFile] = {}
        self._report_lock = threading.Lock()
        self._report_seed: dict | None = None
        self._resumed = False
        self.last_report: ForceExecutionReport | None = None
        if resume_state is not None:
            self.load_state(resume_state)
            # This session's replay budget starts fresh — resuming with
            # the interrupting config must continue, not no-op — and
            # prefixes whose replay never covered its flip (starved or
            # diverged) become offerable again, so a resume with a
            # larger path_budget can actually retry them.
            self.scheduler.begin_session(max_paths)
            self.scheduler.release_uncovered(self.outcomes)
        else:
            self.scheduler = ExplorationScheduler(strategy, max_paths)
        # Progress channel: the scheduler pushes a snapshot after every
        # merged wave (session-local, never part of the resume state).
        self.scheduler.wave_observer = wave_observer

    # -- one run ------------------------------------------------------------

    def _execute(
        self,
        controller: ForcedPathController | None,
        report: ForceExecutionReport,
        budget: int,
    ) -> list[Decision]:
        runtime = AndroidRuntime(self.device, max_steps=budget)
        runtime.tolerate_exceptions = True
        runtime.branch_controller = controller
        tracer = BranchTraceListener()
        runtime.add_listener(tracer)
        for listener in self.shared_listeners:
            runtime.add_listener(listener)
        driver = AppDriver(runtime, self.apk)
        budget_hit = crashed = False
        try:
            outcome = self.drive(driver)
        except BudgetExceeded:
            budget_hit = True
        except (VmCrash, VmThrow):
            # Native crashes (and any exception escaping the tolerant
            # interpreter) end the run but keep what was collected.
            crashed = True
        else:
            # Standard drivers absorb budget/crash endings into their
            # DriveReport instead of raising; fold those flags in so
            # starved replays are counted as such.
            if isinstance(outcome, DriveReport):
                budget_hit = outcome.budget_exhausted
                crashed = outcome.crashed
        with self._report_lock:
            report.runs += 1
            if budget_hit:
                report.budget_exhausted_runs += 1
            if crashed:
                report.native_crashes += 1
            if controller is not None:
                report.forced_decisions += controller.forced
                if controller.reached_target:
                    report.paths_reaching_target += 1
        return tracer.trace

    def _merge_trace(self, trace: list[Decision]) -> None:
        for index, (signature, dex_pc, taken) in enumerate(trace):
            site = (signature, dex_pc)
            self.outcomes.setdefault(site, set()).add(taken)
            if site not in self.site_trace:
                # Remember the first trace reaching this site (shared ref).
                self.site_trace[site] = (trace, index)

    def _covered_sites(self) -> int:
        return sum(1 for seen in self.outcomes.values() if len(seen) == 2)

    def _absorb(self, trace: list[Decision], path: PathFile | None) -> None:
        """Deterministic post-replay merge: trace, rarity, curve, order."""
        self._merge_trace(trace)
        self.scheduler.observe_trace(trace)
        if path is not None:
            self.scheduler.note_replayed(path)
        self.scheduler.record_coverage(self._covered_sites())

    # -- UCB analysis ----------------------------------------------------------

    def _uncovered_branches(self) -> list[PathFile]:
        """Branch analysis + path analysis of Figure 4.

        Produces *every* current candidate, in a deterministic site
        order; prioritisation and dedup belong to the scheduler, which
        collapses re-proposals of prefixes it has already seen.
        """
        paths: list[PathFile] = []
        for site, seen in sorted(self.outcomes.items()):
            if len(seen) == 2:
                continue
            missing = not next(iter(seen))
            key = (site[0], site[1], missing)
            path = self._candidates.get(key)
            if path is None:
                located = self.site_trace.get(site)
                if located is None:
                    continue
                trace, index = located
                decisions = trace[:index] + [(site[0], site[1], missing)]
                path = PathFile(site, missing, decisions)
                self._candidates[key] = path
            paths.append(path)
        return paths

    # -- wave replay --------------------------------------------------------

    def _replay_wave(
        self, wave: list[PathFile], report: ForceExecutionReport
    ) -> list[list[Decision]]:
        """Replay one wave of path files on isolated runtimes.

        Traces come back in wave (pop) order regardless of backend, so
        the merged exploration state is worker-count-independent.
        """

        def replay(path: PathFile) -> list[Decision]:
            # Round-trip through the serialised path-file format.
            controller = ForcedPathController(PathFile.from_json(path.to_json()))
            return self._execute(controller, report, self.path_budget)

        if self.workers == 1 or len(wave) == 1:
            return [replay(path) for path in wave]
        pool_size = min(self.workers, len(wave))
        with ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="explore"
        ) as pool:
            return list(pool.map(replay, wave))

    # -- iteration loop -----------------------------------------------------------

    def run(self) -> ForceExecutionReport:
        report = self._new_report()
        scheduler = self.scheduler
        if not self._resumed:
            # The "previous execution" baseline of Figure 4.
            trace = self._execute(None, report, self.run_budget)
            self._absorb(trace, None)
        # The iteration cap, like max_paths, is a per-session budget:
        # report.iterations stays cumulative across resumes, the cap
        # governs only this session's analysis rounds.
        session_iterations = 0
        while session_iterations < self.max_iterations:
            for path in self._uncovered_branches():
                scheduler.offer(path)
            wave = scheduler.pop_wave(self.max_paths_per_iteration)
            if not wave:
                break
            session_iterations += 1
            report.iterations += 1
            traces = self._replay_wave(wave, report)
            for path, trace in zip(wave, traces):
                self._absorb(trace, path)
            scheduler.notify_wave(len(wave))
            if scheduler.replays_remaining() == 0:
                break
        self._finalize(report)
        self.last_report = report
        return report

    def _new_report(self) -> ForceExecutionReport:
        report = ForceExecutionReport()
        seed = self._report_seed
        if seed is not None:
            report.iterations = seed.get("iterations", 0)
            report.runs = seed.get("runs", 0)
            report.native_crashes = seed.get("native_crashes", 0)
            report.budget_exhausted_runs = seed.get("budget_exhausted_runs", 0)
            report.forced_decisions = seed.get("forced_decisions", 0)
            report.paths_reaching_target = seed.get("paths_reaching_target", 0)
            report.resumed = True
        return report

    def _finalize(self, report: ForceExecutionReport) -> None:
        report.branch_sites = len(self.outcomes)
        report.fully_covered_sites = self._covered_sites()
        self.scheduler.finalize_covered(self.outcomes)
        stats = self.scheduler.stats
        # The scheduler's stats are the single source for replay
        # counters; the report mirrors them (cumulative across resumes).
        report.paths_executed = stats.paths_explored
        report.strategy = self.scheduler.strategy
        report.workers = self.workers
        report.ucbs_discovered = stats.ucbs_discovered
        report.ucbs_covered = stats.ucbs_covered
        report.paths_deduped = stats.replays_saved_by_dedup
        report.coverage_curve = list(stats.coverage_curve)
        report.exploration_order = list(stats.exploration_order)
        report.frontier_pending = self.scheduler.pending

    # -- state (resume) -----------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe exploration state: frontier, coverage, counters.

        Serialised into the collection archive by the collect stage;
        feeding it back as ``resume_state`` continues the exploration
        (no baseline re-run, frontier and dedup set intact).
        """
        # Counters come from the finished run, or — for a resumed
        # engine checkpointed before/without run() completing — from
        # the seed loaded out of resume_state, so cumulative run counts
        # survive a save that happens between sessions.
        if self.last_report is not None:
            seed = {
                "iterations": self.last_report.iterations,
                "runs": self.last_report.runs,
                "native_crashes": self.last_report.native_crashes,
                "budget_exhausted_runs":
                    self.last_report.budget_exhausted_runs,
                "forced_decisions": self.last_report.forced_decisions,
                "paths_reaching_target":
                    self.last_report.paths_reaching_target,
            }
        else:
            seed = self._report_seed or {}
        counters = {
            key: seed.get(key, 0)
            for key in ("iterations", "runs", "native_crashes",
                        "budget_exhausted_runs", "forced_decisions",
                        "paths_reaching_target")
        }
        # Serialise each distinct trace once and point sites at it by
        # (trace id, index) — mirroring the in-memory sharing; copying
        # trace[:index] per site would blow the file up quadratically.
        traces: list[list[Decision]] = []
        trace_ids: dict[int, int] = {}
        site_refs: list[list] = []
        for (signature, dex_pc), (trace, index) in sorted(
                self.site_trace.items()):
            tid = trace_ids.get(id(trace))
            if tid is None:
                tid = len(traces)
                trace_ids[id(trace)] = tid
                traces.append(trace)
            site_refs.append([signature, dex_pc, tid, index])
        return {
            "version": 1,
            # Which application this frontier belongs to (the main
            # activity anchors the signature space the path files
            # reference); resuming against a different app is rejected
            # instead of silently merging two apps' collections.
            "apk_main_activity": getattr(self.apk, "main_activity", None),
            "scheduler": self.scheduler.to_dict(),
            "outcomes": [
                [signature, dex_pc, sorted(seen)]
                for (signature, dex_pc), seen in sorted(self.outcomes.items())
            ],
            "traces": [[list(d) for d in trace] for trace in traces],
            "site_traces": site_refs,
            # Run-level counters the scheduler does not own; replay
            # counts and curves live in (and resume from) the
            # scheduler's own stats above.
            "report": counters,
        }

    def load_state(self, state: dict) -> None:
        recorded = state.get("apk_main_activity")
        current = getattr(self.apk, "main_activity", None)
        if recorded is not None and current is not None \
                and recorded != current:
            raise ValueError(
                f"exploration state belongs to an app with main activity "
                f"{recorded!r}, not {current!r}; refusing to merge two "
                "applications"
            )
        self.scheduler = ExplorationScheduler.from_dict(state["scheduler"])
        self.outcomes = {
            (signature, dex_pc): {bool(v) for v in seen}
            for signature, dex_pc, seen in state.get("outcomes", [])
        }
        traces = [
            [(d[0], d[1], bool(d[2])) for d in trace]
            for trace in state.get("traces", [])
        ]
        self.site_trace = {
            (signature, dex_pc): (traces[tid], index)
            for signature, dex_pc, tid, index in state.get("site_traces", [])
        }
        self._report_seed = state.get("report", {})
        self._resumed = True
