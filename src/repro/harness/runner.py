"""Command-line entry: run paper experiments and print their tables.

This is the reproduction's front door for the *scientific* artefacts:
each experiment name maps to one table or figure of the DSN 2018 paper
(see :mod:`repro.harness.experiments` for the registry), builds its
corpus from :mod:`repro.benchsuite`, runs the systems under test, and
prints the rendered table together with its wall-clock cost.

Corpus reveals inside the experiments route through the batch service
(:mod:`repro.service`), so ``--workers`` parallelises every experiment
without changing its semantics — results are order-preserving and
per-app, exactly as the serial loops produced them.

Usage::

    dexlego-repro                      # every experiment
    dexlego-repro table2 fig5          # a subset
    dexlego-repro --workers 4 table1   # parallel corpus reveal
    dexlego-repro --list

    dexlego-repro serve --store /tmp/q   # the service CLI's subcommands
    dexlego-repro submit --store /tmp/q --corpus fdroid
    dexlego-repro status --store /tmp/q
    dexlego-repro watch --store /tmp/q

For corpus-scale extraction *without* the paper's measurement harness
(per-app outcome records, caching, throughput stats), use
``python -m repro.service reveal-batch`` — and the job-server
subcommands (``serve`` / ``submit`` / ``status`` / ``watch``) are
available from this front door too, delegated verbatim to
:mod:`repro.service.cli`.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.experiments import ALL_EXPERIMENTS
from repro.service import set_default_workers

#: Service-CLI subcommands this front door forwards unchanged.
SERVICE_COMMANDS = ("serve", "submit", "status", "watch",
                    "reveal-batch", "reassemble")


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] in SERVICE_COMMANDS:
        from repro.service.cli import main as service_main

        return service_main(argv)
    parser = argparse.ArgumentParser(
        prog="dexlego-repro",
        description="Reproduce the tables and figures of DexLego (DSN 2018).",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=f"which experiments to run (default: all of "
             f"{', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker-pool size for corpus reveals (default: serial, or "
             "the DEXLEGO_WORKERS environment variable)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0

    selected = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [name for name in selected if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    if args.workers is not None:
        set_default_workers(args.workers)

    for name in selected:
        start = time.time()
        result = ALL_EXPERIMENTS[name]()
        elapsed = time.time() - start
        print(result.render())
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
