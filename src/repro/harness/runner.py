"""Command-line entry: run paper experiments and print their tables.

Usage::

    dexlego-repro                 # every experiment
    dexlego-repro table2 fig5     # a subset
    dexlego-repro --list
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dexlego-repro",
        description="Reproduce the tables and figures of DexLego (DSN 2018).",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=f"which experiments to run (default: all of "
             f"{', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    args = parser.parse_args(argv)

    if args.list:
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0

    selected = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [name for name in selected if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    for name in selected:
        start = time.time()
        result = ALL_EXPERIMENTS[name]()
        elapsed = time.time() - start
        print(result.render())
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
