"""Experiment runners: one function per table / figure of the paper.

Every function *measures* — builds the corpus, runs the systems, and
returns structured results plus a rendered table.  The benchmarks under
``benchmarks/`` and the CLI (``python -m repro.harness.runner``) are thin
wrappers around these.

All corpus reveals route through
:class:`~repro.service.batch.BatchRevealService` rather than hand-rolled
serial loops, so every experiment inherits worker-pool parallelism and
content-addressed result caching.  Runners accept a ``workers`` keyword;
when omitted, the process-wide default applies (``--workers`` on the
CLI, or the ``DEXLEGO_WORKERS`` environment variable; serial otherwise),
which keeps paper-faithful deterministic runs the default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import (
    AppSpearLike,
    Confusion,
    DexHunterLike,
    all_tools,
    build_call_graph,
    edges_preserved,
    flowdroid,
    horndroid,
    taintart,
    taintdroid,
)
from repro.benchsuite import (
    TABLE_IV_SAMPLES,
    all_aosp_apps,
    all_fdroid_apps,
    all_launch_apps,
    all_market_apps,
    droidbench_samples,
    sample_by_name,
)
from repro.core import ForceExecutionEngine, RevealConfig
from repro.coverage import (
    CoverageCollector,
    SapienzFuzzer,
    measure_launch_time,
    run_cfbench,
)
from repro.errors import PackerUnavailable
from repro.harness.tables import human_size, percent, render_table
from repro.packers import ALL_PACKERS
from repro.runtime import EMULATOR, NEXUS_5X, AndroidRuntime, AppDriver
from repro.service import BatchRevealService, RevealJob, RevealOutcome


@dataclass
class ExperimentResult:
    """Uniform result wrapper: data rows plus a rendered table."""

    experiment: str
    headers: list[str]
    rows: list[list]
    notes: str = ""
    extras: dict = field(default_factory=dict)

    def render(self) -> str:
        text = render_table(self.experiment, self.headers, self.rows)
        if self.notes:
            text += f"\n{self.notes}"
        return text


def _revealed_apk(outcome: RevealOutcome):
    """Unwrap a batch outcome, failing fast like the old serial loops."""
    apk = outcome.revealed_apk
    if apk is None:
        raise RuntimeError(
            f"reveal failed for {outcome.app_id}: "
            f"{outcome.status} ({outcome.error})"
        )
    return apk


# ---------------------------------------------------------------------------
# Table I — packers on AOSP apps
# ---------------------------------------------------------------------------


def run_table1(quick: bool = False, workers: int | None = None) -> ExperimentResult:
    """Pack each AOSP app with each service; reveal; verify preservation."""
    apps = all_aosp_apps()
    if quick:
        apps = apps[:2]
    headers = ["Service"] + [f"{a.name} ({a.instruction_count})" for a in apps]

    # Pack the full matrix up-front, then reveal it as one batch.
    service = BatchRevealService(config=RevealConfig(), workers=workers)
    jobs = [
        RevealJob(f"{packer.name}/{app.name}", packer.pack(app.apk))
        for packer in ALL_PACKERS if packer.available
        for app in apps
    ]
    outcomes = {
        o.app_id: o for o in service.reveal_batch(jobs).outcomes
    }

    rows = []
    for packer in ALL_PACKERS:
        row = [packer.name]
        for app in apps:
            if not packer.available:
                try:
                    packer.pack(app.apk)
                    row.append("?")
                except PackerUnavailable:
                    row.append("unavailable")
                continue
            outcome = outcomes[f"{packer.name}/{app.name}"]
            original_graph = build_call_graph(app.apk.primary_dex)
            revealed_graph = build_call_graph(
                _revealed_apk(outcome).primary_dex
            )
            preserved = edges_preserved(original_graph, revealed_graph)
            row.append("OK" if preserved >= 0.999 else f"{preserved:.0%}")
        rows.append(row)
    notes = (
        "OK = collection+reassembly succeeded and every call-graph edge of "
        "an exercised class is preserved (the paper's manual/Soot check)."
    )
    return ExperimentResult("Table I: Test Result of Different Packers",
                           headers, rows, notes)


# ---------------------------------------------------------------------------
# Tables II / III and Figure 5 — static tools on DroidBench
# ---------------------------------------------------------------------------


def run_table2(samples=None, workers: int | None = None) -> ExperimentResult:
    """Static tools on original vs DexLego-revealed DroidBench."""
    samples = samples if samples is not None else droidbench_samples()
    tools = all_tools()
    original = {t.name: Confusion() for t in tools}
    revealed_scores = {t.name: Confusion() for t in tools}
    apks = [sample.build_apk() for sample in samples]
    report = BatchRevealService(config=RevealConfig(),
                                 workers=workers).reveal_batch(
        RevealJob(sample.name, apk, device=sample.device)
        for sample, apk in zip(samples, apks)
    )
    for sample, apk, outcome in zip(samples, apks, report.outcomes):
        revealed = _revealed_apk(outcome)
        for tool in tools:
            original[tool.name].record(sample.leaky, tool.analyze(apk).detected)
            revealed_scores[tool.name].record(
                sample.leaky, tool.analyze(revealed).detected
            )
    headers = ["Tool", "# Samples", "# Malware",
               "Orig TP", "Orig FP", "DexLego TP", "DexLego FP"]
    leaky = sum(1 for s in samples if s.leaky)
    rows = [
        [t.name, len(samples), leaky,
         original[t.name].tp, original[t.name].fp,
         revealed_scores[t.name].tp, revealed_scores[t.name].fp]
        for t in tools
    ]
    return ExperimentResult(
        "Table II: Analysis Result of Static Analysis Tools",
        headers, rows,
        extras={"original": original, "dexlego": revealed_scores},
    )


def run_table3(samples=None, packer=None,
               workers: int | None = None) -> ExperimentResult:
    """Packed samples: DexHunter/AppSpear vs DexLego."""
    from repro.packers import Qihoo360Packer

    samples = samples if samples is not None else droidbench_samples()
    packer = packer or Qihoo360Packer()
    tools = all_tools()
    dh_scores = {t.name: Confusion() for t in tools}
    as_scores = {t.name: Confusion() for t in tools}
    dl_scores = {t.name: Confusion() for t in tools}
    dexhunter = DexHunterLike()
    appspear = AppSpearLike()
    packed_apks = [packer.pack(sample.build_apk()) for sample in samples]
    report = BatchRevealService(config=RevealConfig(),
                                 workers=workers).reveal_batch(
        RevealJob(sample.name, packed, device=sample.device)
        for sample, packed in zip(samples, packed_apks)
    )
    for sample, packed, outcome in zip(samples, packed_apks, report.outcomes):
        dh_apk = dexhunter.unpack(packed, drive=None).unpacked_apk
        as_apk = appspear.unpack(packed, drive=None).unpacked_apk
        dl_apk = _revealed_apk(outcome)
        for tool in tools:
            dh_scores[tool.name].record(sample.leaky, tool.analyze(dh_apk).detected)
            as_scores[tool.name].record(sample.leaky, tool.analyze(as_apk).detected)
            dl_scores[tool.name].record(sample.leaky, tool.analyze(dl_apk).detected)
    headers = ["Tool", "DH TP", "DH FP", "AS TP", "AS FP",
               "DexLego TP", "DexLego FP"]
    rows = [
        [t.name,
         dh_scores[t.name].tp, dh_scores[t.name].fp,
         as_scores[t.name].tp, as_scores[t.name].fp,
         dl_scores[t.name].tp, dl_scores[t.name].fp]
        for t in tools
    ]
    return ExperimentResult(
        "Table III: Analysis Result of Packed Samples (360 packer)",
        headers, rows,
        extras={"dexhunter": dh_scores, "appspear": as_scores,
                "dexlego": dl_scores},
    )


def run_fig5(table2: ExperimentResult | None = None,
             table3: ExperimentResult | None = None) -> ExperimentResult:
    """F-Measures of the tools under each processing mode (Formula 1)."""
    table2 = table2 or run_table2()
    table3 = table3 or run_table3()
    headers = ["Tool", "Original", "DexHunter", "AppSpear", "DexLego"]
    rows = []
    gains = {}
    for name in ("FlowDroid", "DroidSafe", "HornDroid"):
        f_orig = table2.extras["original"][name].f_measure
        f_dh = table3.extras["dexhunter"][name].f_measure
        f_as = table3.extras["appspear"][name].f_measure
        f_dl = table2.extras["dexlego"][name].f_measure
        gains[name] = (f_dl / f_orig - 1) * 100 if f_orig else float("inf")
        rows.append([name, f"{f_orig:.2f}", f"{f_dh:.2f}",
                     f"{f_as:.2f}", f"{f_dl:.2f}"])
    notes = "F-Measure gains with DexLego: " + ", ".join(
        f"{name} +{gain:.1f}%" for name, gain in gains.items()
    )
    return ExperimentResult("Figure 5: F-Measures of Static Analysis Tools",
                           headers, rows, notes, extras={"gains": gains})


# ---------------------------------------------------------------------------
# Table IV — dynamic tools vs DexLego+HornDroid
# ---------------------------------------------------------------------------


def run_table4(workers: int | None = None) -> ExperimentResult:
    headers = ["Sample", "Leak #", "TD", "TA", "DexLego + HD"]
    rows = []
    hd = horndroid()
    samples = [sample_by_name(name) for name in TABLE_IV_SAMPLES]
    report = BatchRevealService(config=RevealConfig(),
                                 workers=workers).reveal_batch(
        RevealJob(sample.name, sample.build_apk(), device=sample.device)
        for sample in samples
    )
    for sample, outcome in zip(samples, report.outcomes):
        name = sample.name
        ground_truth = {
            "Button1": 1, "Button3": 2, "EmulatorDetection1": 1,
            "ImplicitFlow1": 2, "PrivateDataLeak3": 2,
        }[name]
        detected = {}
        for tracker_factory, device in (
            (taintdroid, EMULATOR), (taintart, NEXUS_5X)
        ):
            tracker = tracker_factory()
            runtime = AndroidRuntime(device, max_steps=3_000_000)
            runtime.add_listener(tracker)
            AppDriver(runtime, sample.build_apk()).run_standard_session()
            detected[tracker.profile.name] = tracker.leak_count()
        flows = hd.analyze(_revealed_apk(outcome)).flows
        dl_count = len({(f.source_tag, f.sink_signature) for f in flows})
        rows.append([name, ground_truth, detected["TaintDroid"],
                     detected["TaintART"], dl_count])
    return ExperimentResult(
        "Table IV: Analysis Result of Dynamic Analysis Tools and DexLego",
        headers, rows,
    )


# ---------------------------------------------------------------------------
# Table V — real-world packed apps
# ---------------------------------------------------------------------------


def run_table5(limit: int | None = None,
               workers: int | None = None) -> ExperimentResult:
    headers = ["Package", "Version", "Set", "# Installs", "Original", "Revealed"]
    rows = []
    fd = flowdroid()
    apps = all_market_apps()
    if limit:
        apps = apps[:limit]
    report = BatchRevealService(config=RevealConfig(),
                                 workers=workers).reveal_batch(
        RevealJob(app.package, app.packed_apk) for app in apps
    )
    for app, outcome in zip(apps, report.outcomes):
        original_flows = len(fd.analyze(app.packed_apk).flows)
        revealed_flows = len(fd.analyze(_revealed_apk(outcome)).flows)
        rows.append([app.package, app.version, app.sample_set, app.installs,
                     original_flows, revealed_flows])
    return ExperimentResult(
        "Table V: Analysis Result of Packed Real-world Applications",
        headers, rows,
        notes="Original = FlowDroid flows in the packed APK; "
              "Revealed = flows after DexLego.",
    )


# ---------------------------------------------------------------------------
# Tables VI + VII — F-Droid corpus and coverage
# ---------------------------------------------------------------------------


def run_table6(limit: int | None = None,
               workers: int | None = None) -> ExperimentResult:
    headers = ["Package", "Version", "# Instructions", "Dump File Size"]
    apps = all_fdroid_apps()
    if limit:
        apps = apps[:limit]
    jobs = []
    for app in apps:
        fuzzer = SapienzFuzzer(population=8)
        jobs.append(RevealJob(
            app.package, app.apk, collect_only=True,
            drive=lambda d, f=fuzzer: f.drive(d.apk, d.runtime.listeners),
            cache_salt="sapienz-pop8",
        ))
    report = BatchRevealService(config=RevealConfig(),
                                 workers=workers).reveal_batch(jobs)
    rows = [
        [app.package, app.version, app.instruction_count,
         human_size(outcome.dump_size_bytes)]
        for app, outcome in zip(apps, report.outcomes)
    ]
    return ExperimentResult("Table VI: Samples from F-Droid", headers, rows)


def run_table7(limit: int | None = None,
               force_iterations: int = 3,
               max_paths_per_iteration: int = 150,
               strategy: str = "bfs",
               explore_workers: int = 1) -> ExperimentResult:
    """Coverage with and without force execution (Table VII).

    ``max_paths_per_iteration`` caps each analysis round's replay wave
    (named to avoid colliding with ``RevealConfig.max_paths``, the
    *total* replay budget).  ``strategy`` / ``explore_workers`` select
    the exploration-scheduler frontier order and wave-replay pool;
    results are identical at any worker count, so parallelism here is
    wall-clock only.
    """
    apps = all_fdroid_apps()
    if limit:
        apps = apps[:limit]
    sums_sapienz = [0.0] * 5
    sums_combined = [0.0] * 5
    per_app = {}
    for app in apps:
        collector = CoverageCollector()
        fuzzer = SapienzFuzzer(population=8)
        fuzzer.drive(app.apk, [collector])
        sapienz_report = collector.report(app.apk.dex_files)
        engine = ForceExecutionEngine(
            app.apk, shared_listeners=[collector],
            max_iterations=force_iterations,
            max_paths_per_iteration=max_paths_per_iteration,
            strategy=strategy,
            workers=explore_workers,
        )
        engine.run()
        combined_report = collector.report(app.apk.dex_files)
        per_app[app.package] = (sapienz_report, combined_report)
        for i, value in enumerate(_metric_tuple(sapienz_report)):
            sums_sapienz[i] += value
        for i, value in enumerate(_metric_tuple(combined_report)):
            sums_combined[i] += value
    n = len(apps)
    headers = ["Configuration", "Class", "Method", "Line", "Branch", "Instruction"]
    rows = [
        ["Sapienz"] + [percent(v / n) for v in sums_sapienz],
        ["Sapienz + DexLego"] + [percent(v / n) for v in sums_combined],
    ]
    return ExperimentResult(
        "Table VII: Code Coverage with F-Droid Applications",
        headers, rows, extras={"per_app": per_app},
    )


def _metric_tuple(report) -> tuple:
    return (report.classes, report.methods, report.lines,
            report.branches, report.instructions)


# ---------------------------------------------------------------------------
# Figure 6 + Table VIII — performance
# ---------------------------------------------------------------------------


def run_fig6(runs: int = 5) -> ExperimentResult:
    from repro.core import DexLegoCollector

    baseline = run_cfbench(listeners=None, runs=runs)
    instrumented = run_cfbench(listeners=[DexLegoCollector()], runs=runs)
    headers = ["Score", "Unmodified ART", "DexLego", "Overhead"]
    rows = [
        ["Java", f"{baseline.java_score:.0f}", f"{instrumented.java_score:.0f}",
         f"{baseline.java_score / max(instrumented.java_score, 1e-9):.1f}x"],
        ["Native", f"{baseline.native_score:.0f}",
         f"{instrumented.native_score:.0f}",
         f"{baseline.native_score / max(instrumented.native_score, 1e-9):.1f}x"],
        ["Overall", f"{baseline.overall_score:.0f}",
         f"{instrumented.overall_score:.0f}",
         f"{baseline.overall_score / max(instrumented.overall_score, 1e-9):.1f}x"],
    ]
    return ExperimentResult(
        "Figure 6: Performance Measured by CF-Bench",
        headers, rows,
        notes="Scores are throughput-derived; the paper reports 7.5x / 1.4x "
              "/ 2.3x overheads on Java / native / overall.",
        extras={"baseline": baseline, "instrumented": instrumented},
    )


def run_table8(launches: int = 30) -> ExperimentResult:
    from repro.core import DexLegoCollector

    headers = ["Application", "Version", "Orig Mean", "Orig STD",
               "DexLego Mean", "DexLego STD", "Slowdown"]
    rows = []
    for app in all_launch_apps():
        baseline = measure_launch_time(app.apk, None, launches)
        instrumented = measure_launch_time(
            app.apk, lambda: [DexLegoCollector()], launches
        )
        rows.append([
            app.name, app.version,
            f"{baseline.mean_ms:.1f}ms", f"{baseline.std_ms:.2f}ms",
            f"{instrumented.mean_ms:.1f}ms", f"{instrumented.std_ms:.2f}ms",
            f"{instrumented.mean_ms / max(baseline.mean_ms, 1e-9):.1f}x",
        ])
    return ExperimentResult(
        "Table VIII: Time Consumption of DexLego (launch time)",
        headers, rows,
        notes="The paper reports roughly 2x launch-time slowdown.",
    )


ALL_EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "fig5": run_fig5,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "table7": run_table7,
    "fig6": run_fig6,
    "table8": run_table8,
}
