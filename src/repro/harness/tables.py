"""Plain-text table rendering for the experiment harness.

The harness renders every result the way the paper presents it: a
titled, fixed-width table whose header row names the systems or corpora
under comparison.  Three helpers cover all of them:

* :func:`render_table` — the table itself (title, rule, aligned rows);
* :func:`percent` — coverage-style cells (Table VII);
* :func:`ratio` — slowdown/overhead cells (Figure 6, Table VIII);
* :func:`human_size` — dump-file-size cells (Table VI, the batch CLI).

This module is deliberately dependency-free (it sits *below* both the
experiment runners and the service CLI) so anything in the repo can
format a table without importing the harness package.
"""

from __future__ import annotations


def render_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Fixed-width table in the style of the paper's tables."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(row: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    bar = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, bar, line(headers), bar]
    out.extend(line(row) for row in cells)
    out.append(bar)
    return "\n".join(out)


def percent(value: float) -> str:
    return f"{value * 100:.0f}%"


def ratio(a: float, b: float) -> str:
    if b == 0:
        return "-"
    return f"{a / b:.1f}x"


def human_size(size: int) -> str:
    """KB/MB rendering in the paper's Table VI style."""
    if size >= 1 << 20:
        return f"{size / (1 << 20):.2f} MB"
    return f"{size / 1024:.2f} KB"
