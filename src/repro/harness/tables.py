"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations


def render_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Fixed-width table in the style of the paper's tables."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(row: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    bar = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, bar, line(headers), bar]
    out.extend(line(row) for row in cells)
    out.append(bar)
    return "\n".join(out)


def percent(value: float) -> str:
    return f"{value * 100:.0f}%"


def ratio(a: float, b: float) -> str:
    if b == 0:
        return "-"
    return f"{a / b:.1f}x"
