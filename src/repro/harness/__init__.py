"""Experiment harness: one runner per table/figure of the paper."""

from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    run_fig5,
    run_fig6,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
)
from repro.harness.tables import render_table

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "render_table",
    "run_fig5",
    "run_fig6",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table8",
]
