"""Instruction model: decoded view of one Dalvik instruction.

An :class:`Instruction` pairs an :class:`~repro.dex.opcodes.OpcodeInfo`
with its operand tuple and knows how to re-encode itself.  The interpreter
decodes instructions *lazily from the live code-unit array* on every
execution — this is what makes self-modifying code observable, exactly as
in ART where the interpreter re-fetches code units each time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dex import formats
from repro.dex.opcodes import (
    OPCODE_TABLE,
    PAYLOAD_IDENTS,
    IndexKind,
    OpcodeInfo,
    opcode_at,
    opcode_for,
)
from repro.errors import DexFormatError

# Decode table indexed by opcode byte: ``(info, operand decoder, unit
# count)`` resolved once at import time from the value-indexed
# ``OPCODE_TABLE``.  ``decode_at`` and the interpreter's predecoder
# index this instead of re-running string format comparisons per fetch.
# ``None`` marks unassigned opcode bytes.
DECODE_TABLE: list[tuple[OpcodeInfo, object, int] | None] = [
    None
    if info is None
    else (info, formats.decoder_for(info.fmt), formats.FORMAT_UNITS[info.fmt])
    for info in OPCODE_TABLE
]


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``operands`` layout follows :mod:`repro.dex.formats`: register operands
    first (except 35c/3rc where the pool index leads), then the literal,
    branch target or pool index.
    """

    opcode: OpcodeInfo
    operands: tuple[int, ...]

    # -- construction -----------------------------------------------------

    @classmethod
    def make(cls, name: str, *operands: int) -> "Instruction":
        """Build an instruction from a mnemonic and raw operands."""
        return cls(opcode_for(name), tuple(operands))

    @classmethod
    def decode_at(cls, units: list[int], pos: int) -> "Instruction":
        """Decode the instruction starting at code unit ``pos``."""
        unit = units[pos]
        value = unit & 0xFF
        entry = DECODE_TABLE[value]
        if entry is None or (value == 0 and unit in PAYLOAD_IDENTS):
            opcode_at(units, pos)  # raises the canonical DexFormatError
        info, decoder, need = entry
        if pos + need > len(units):
            raise DexFormatError(
                f"truncated {info.fmt} instruction at unit {pos}"
                f" (need {need} units)"
            )
        return cls(info, decoder(units, pos))

    # -- encoding ---------------------------------------------------------

    def encode(self) -> list[int]:
        """Encode back to code units."""
        return formats.encode(self.opcode.fmt, self.opcode.value, self.operands)

    @property
    def unit_count(self) -> int:
        return formats.FORMAT_UNITS[self.opcode.fmt]

    # -- semantic accessors -----------------------------------------------

    @property
    def name(self) -> str:
        return self.opcode.name

    @property
    def branch_target(self) -> int:
        """Relative branch offset in code units (branches and switches)."""
        if self.opcode.name.startswith("goto"):
            return self.operands[0]
        if self.opcode.fmt == "21t":
            return self.operands[1]
        if self.opcode.fmt == "22t":
            return self.operands[2]
        if self.opcode.fmt == "31t":  # switch / fill-array-data payload offset
            return self.operands[1]
        raise DexFormatError(f"{self.name} has no branch target")

    def with_branch_target(self, offset: int) -> "Instruction":
        """Copy of this instruction with its relative offset replaced."""
        if self.opcode.name.startswith("goto"):
            return Instruction(self.opcode, (offset,))
        if self.opcode.fmt == "21t":
            return Instruction(self.opcode, (self.operands[0], offset))
        if self.opcode.fmt == "22t":
            return Instruction(self.opcode, (self.operands[0], self.operands[1], offset))
        if self.opcode.fmt == "31t":
            return Instruction(self.opcode, (self.operands[0], offset))
        raise DexFormatError(f"{self.name} has no branch target")

    @property
    def pool_index(self) -> int:
        """Constant-pool index for c-format instructions."""
        if self.opcode.index_kind is IndexKind.NONE:
            raise DexFormatError(f"{self.name} carries no pool index")
        if self.opcode.fmt in ("35c", "3rc"):
            return self.operands[0]
        return self.operands[-1]

    def with_pool_index(self, index: int) -> "Instruction":
        """Copy of this instruction with its pool index replaced."""
        if self.opcode.index_kind is IndexKind.NONE:
            raise DexFormatError(f"{self.name} carries no pool index")
        if self.opcode.fmt in ("35c", "3rc"):
            return Instruction(self.opcode, (index, *self.operands[1:]))
        return Instruction(self.opcode, (*self.operands[:-1], index))

    @property
    def invoke_registers(self) -> list[int]:
        """Argument registers of an invoke / filled-new-array instruction."""
        if self.opcode.fmt == "35c":
            return list(self.operands[1:])
        if self.opcode.fmt == "3rc":
            first, count = self.operands[1], self.operands[2]
            return list(range(first, first + count))
        raise DexFormatError(f"{self.name} is not a register-list instruction")

    @property
    def literal(self) -> int:
        """Literal operand of const / lit-arith instructions."""
        fmt = self.opcode.fmt
        if fmt in ("11n", "21s", "21h", "31i", "51l", "22s"):
            return self.operands[-1]
        if fmt == "22b":
            return self.operands[2]
        raise DexFormatError(f"{self.name} has no literal")

    def __str__(self) -> str:
        args = ", ".join(str(op) for op in self.operands)
        return f"{self.name} {args}".rstrip()


def iter_instructions(units: list[int]) -> list[tuple[int, Instruction]]:
    """Decode all real instructions in a code-unit array.

    Returns ``(dex_pc, instruction)`` pairs.  Payload regions referenced by
    switch / fill-array-data instructions are skipped (they are data).
    """
    payload_positions = _payload_positions(units)
    out: list[tuple[int, Instruction]] = []
    pos = 0
    while pos < len(units):
        if pos in payload_positions:
            pos += payload_positions[pos]
            continue
        ins = Instruction.decode_at(units, pos)
        out.append((pos, ins))
        pos += ins.unit_count
    return out


def _payload_positions(units: list[int]) -> dict[int, int]:
    """Map payload start position -> unit count, found via 31t references."""
    from repro.dex.payloads import payload_unit_count

    positions: dict[int, int] = {}
    pos = 0
    while pos < len(units):
        if pos in positions:
            pos += positions[pos]
            continue
        unit = units[pos]
        if unit in PAYLOAD_IDENTS and (unit & 0xFF) == 0 and pos > 0:
            # Reached an unreferenced payload region directly; treat the
            # remainder conservatively by decoding it as a payload.
            positions[pos] = payload_unit_count(units, pos)
            pos += positions[pos]
            continue
        ins = Instruction.decode_at(units, pos)
        if ins.opcode.fmt == "31t":
            target = pos + ins.branch_target
            if 0 <= target < len(units):
                positions[target] = payload_unit_count(units, target)
        pos += ins.unit_count
    return positions
