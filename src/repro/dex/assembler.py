"""Smali-like text assembler.

Parses the readable bytecode dialect used throughout the paper (Codes 2
and 3) into a :class:`~repro.dex.structures.DexFile`.  Supported subset:

* ``.class`` / ``.super`` / ``.implements`` / ``.source``
* ``.field`` with optional ``= literal`` static initial values
* ``.method`` ... ``.end method`` with ``.registers``/``.locals``
* all opcodes in :mod:`repro.dex.opcodes`, labels (``:name``), register
  lists (``{v0, v1}`` and ``{v0 .. v5}``), string/type/field/method
  operands
* ``.packed-switch`` / ``.sparse-switch`` / ``.array-data`` payload blocks
* ``.catch <type> {:start .. :end} :handler`` and ``.catchall``

The assembler builds on :class:`~repro.dex.builder.MethodBuilder`, so
layout, branch fix-ups and payload placement are shared with the
programmatic API.
"""

from __future__ import annotations

import re

from repro.dex.builder import ClassBuilder, DexBuilder, MethodBuilder
from repro.dex.constants import AccessFlags
from repro.dex.opcodes import OPCODES_BY_NAME, IndexKind, opcode_for
from repro.dex.sigs import parse_field_signature, parse_method_signature, split_type_list
from repro.dex.structures import DexFile
from repro.errors import AssemblyError

_ACCESS_WORDS = {
    "public": AccessFlags.PUBLIC,
    "private": AccessFlags.PRIVATE,
    "protected": AccessFlags.PROTECTED,
    "static": AccessFlags.STATIC,
    "final": AccessFlags.FINAL,
    "abstract": AccessFlags.ABSTRACT,
    "native": AccessFlags.NATIVE,
    "synthetic": AccessFlags.SYNTHETIC,
    "constructor": AccessFlags.CONSTRUCTOR,
    "interface": AccessFlags.INTERFACE,
    "synchronized": AccessFlags.SYNCHRONIZED,
    "volatile": AccessFlags.VOLATILE,
    "bridge": AccessFlags.BRIDGE,
    "varargs": AccessFlags.VARARGS,
    "enum": AccessFlags.ENUM,
}


def assemble(text: str, dex_builder: DexBuilder | None = None) -> DexFile:
    """Assemble smali-like ``text``; returns the resulting DexFile.

    Pass an existing ``dex_builder`` to accumulate several compilation
    units into one DEX.
    """
    builder = dex_builder or DexBuilder()
    _Assembler(builder).run(text)
    return builder.dex


class _Assembler:
    def __init__(self, builder: DexBuilder) -> None:
        self.builder = builder
        self.class_builder: ClassBuilder | None = None
        self.method: MethodBuilder | None = None
        self.line_no = 0

    def fail(self, message: str) -> AssemblyError:
        return AssemblyError(f"line {self.line_no}: {message}")

    def run(self, text: str) -> None:
        lines = text.splitlines()
        i = 0
        while i < len(lines):
            self.line_no = i + 1
            line = _strip_comment(lines[i])
            i += 1
            if not line:
                continue
            if line.startswith(".packed-switch"):
                i = self._parse_packed_switch(line, lines, i)
            elif line.startswith(".sparse-switch"):
                i = self._parse_sparse_switch(lines, i)
            elif line.startswith(".array-data"):
                i = self._parse_array_data(line, lines, i)
            else:
                self._parse_line(line)
        if self.method is not None:
            raise self.fail("missing .end method")
        # A unit may end with a member-less class declaration.
        if getattr(self, "_class_pending", None) is not None:
            self._ensure_class()

    # -- directive / instruction dispatch ------------------------------------

    def _parse_line(self, line: str) -> None:
        if line.startswith("."):
            self._parse_directive(line)
        elif line.startswith(":"):
            self._require_method().label(line[1:])
        else:
            self._parse_instruction(line)

    def _parse_directive(self, line: str) -> None:
        parts = line.split(None, 1)
        directive = parts[0]
        rest = parts[1].strip() if len(parts) > 1 else ""
        if directive == ".class":
            words = rest.split()
            access = _parse_access(words[:-1])
            self._class_pending = (words[-1], access)
            self._super_desc = "Ljava/lang/Object;"
            self._interfaces: list[str] = []
            self._source: str | None = None
            self.class_builder = None
        elif directive == ".super":
            self._super_desc = rest
        elif directive == ".implements":
            self._interfaces.append(rest)
        elif directive == ".source":
            self._source = _parse_string_literal(rest)
        elif directive == ".field":
            self._ensure_class()
            self._parse_field(rest)
        elif directive == ".method":
            self._ensure_class()
            self._parse_method_start(rest)
        elif directive == ".end":
            if rest == "method":
                self._require_method().build()
                self.method = None
            elif rest == "class":
                self.class_builder = None
            else:
                raise self.fail(f"unknown .end {rest}")
        elif directive in (".registers", ".locals"):
            method = self._require_method()
            if method._pending:
                raise self.fail(f"{directive} must precede instructions")
            count = int(rest)
            if directive == ".registers":
                method.locals_count = count - method.ins_size
            else:
                method.locals_count = count
            if method.locals_count < 0:
                raise self.fail(".registers smaller than parameter width")
        elif directive == ".catch":
            self._parse_catch(rest, catch_all=False)
        elif directive == ".catchall":
            self._parse_catch(rest, catch_all=True)
        else:
            raise self.fail(f"unknown directive {directive}")

    def _ensure_class(self) -> None:
        if self.class_builder is not None:
            return
        if not hasattr(self, "_class_pending") or self._class_pending is None:
            raise self.fail("no .class directive seen")
        descriptor, access = self._class_pending
        self.class_builder = self.builder.add_class(
            descriptor,
            superclass=self._super_desc,
            access=access,
            interfaces=tuple(self._interfaces),
            source_file=self._source,
        )
        self._class_pending = None

    def _require_method(self) -> MethodBuilder:
        if self.method is None:
            raise self.fail("instruction outside .method")
        return self.method

    def _parse_field(self, rest: str) -> None:
        initial = None
        if "=" in rest:
            rest, _, literal = rest.partition("=")
            rest = rest.strip()
            initial = _parse_literal(literal.strip())
        words = rest.split()
        access = _parse_access(words[:-1])
        name, _, type_desc = words[-1].partition(":")
        if not type_desc:
            raise self.fail(f"field needs name:type, got {words[-1]!r}")
        assert self.class_builder is not None
        if access & AccessFlags.STATIC:
            self.class_builder.add_static_field(name, type_desc, access, initial)
        else:
            self.class_builder.add_instance_field(name, type_desc, access)

    def _parse_method_start(self, rest: str) -> None:
        if self.method is not None:
            raise self.fail("nested .method")
        words = rest.split()
        access = _parse_access(words[:-1])
        prototype = words[-1]
        match = re.fullmatch(r"([^(]+)\(([^)]*)\)(.+)", prototype)
        if match is None:
            raise self.fail(f"malformed method prototype {prototype!r}")
        name, params, return_desc = match.groups()
        assert self.class_builder is not None
        self.method = self.class_builder.method(
            name,
            return_desc,
            split_type_list(params),
            access=access,
            locals_count=4,
            native=bool(access & AccessFlags.NATIVE),
            abstract=bool(access & AccessFlags.ABSTRACT),
        )

    def _parse_catch(self, rest: str, catch_all: bool) -> None:
        method = self._require_method()
        match = re.fullmatch(
            r"(?:(\S+)\s+)?\{:(\S+)\s+\.\.\s+:(\S+)\}\s+:(\S+)", rest.strip()
        )
        if match is None:
            raise self.fail(f"malformed .catch: {rest!r}")
        type_desc, start, end, handler = match.groups()
        if catch_all:
            type_desc = None
        elif type_desc is None:
            raise self.fail(".catch requires an exception type")
        method.try_range(start, end, [(type_desc, handler)])

    # -- instructions -----------------------------------------------------------

    def _parse_instruction(self, line: str) -> None:
        method = self._require_method()
        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.strip()
        if mnemonic == "goto":
            # Upgrade to the 16-bit form so any in-method distance encodes.
            mnemonic = "goto/16"
        if mnemonic not in OPCODES_BY_NAME:
            raise self.fail(f"unknown instruction {mnemonic!r}")
        info = opcode_for(mnemonic)
        operand_text = rest.strip()
        try:
            self._emit(method, info, operand_text)
        except AssemblyError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            raise self.fail(f"cannot parse {line!r}: {exc}") from exc

    def _emit(self, method: MethodBuilder, info, operand_text: str) -> None:
        tokens = _split_operands(operand_text)
        fmt = info.fmt
        name = info.name

        if fmt in ("35c", "3rc"):
            reg_list, signature = tokens
            regs = self._parse_reg_list(method, reg_list)
            if info.index_kind is IndexKind.METHOD:
                ref = parse_method_signature(signature)
                index = method.dex.intern_method_ref(ref)
                from repro.dex.sigs import method_arg_width

                is_static = "static" in name
                method._outs = max(
                    method._outs, method_arg_width(ref, is_static=is_static)
                )
            else:  # filled-new-array takes a type
                index = method.dex.intern_type(signature)
            if fmt == "35c":
                method.raw(name, index, *regs)
            else:
                if regs != list(range(regs[0], regs[0] + len(regs))):
                    raise self.fail("range invoke registers must be contiguous")
                method.raw(name, index, regs[0], len(regs))
            return

        operands: list[int] = []
        label: str | None = None
        for token in tokens:
            if token.startswith(("v", "p")) and _is_register(token):
                operands.append(self._parse_register(method, token))
            elif token.startswith(":"):
                label = token[1:]
            elif token.startswith('"'):
                operands.append(method.dex.intern_string(_parse_string_literal(token)))
            elif info.index_kind is IndexKind.TYPE and token.startswith(("L", "[")):
                operands.append(method.dex.intern_type(token))
            elif info.index_kind is IndexKind.FIELD and "->" in token:
                operands.append(
                    method.dex.intern_field_ref(parse_field_signature(token))
                )
            else:
                operands.append(_parse_int(token))
        if label is not None:
            method._emit_branch(name, tuple(operands), label)
        else:
            method.raw(name, *operands)

    def _parse_register(self, method: MethodBuilder, token: str) -> int:
        number = int(token[1:])
        if token[0] == "p":
            return method.p(number)
        return number

    def _parse_reg_list(self, method: MethodBuilder, text: str) -> list[int]:
        text = text.strip()
        if not (text.startswith("{") and text.endswith("}")):
            raise self.fail(f"expected register list, got {text!r}")
        inner = text[1:-1].strip()
        if not inner:
            return []
        if ".." in inner:
            first_text, _, last_text = inner.partition("..")
            first = self._parse_register(method, first_text.strip())
            last = self._parse_register(method, last_text.strip())
            return list(range(first, last + 1))
        return [
            self._parse_register(method, part.strip()) for part in inner.split(",")
        ]

    # -- payload blocks -----------------------------------------------------------

    def _parse_packed_switch(self, line: str, lines: list[str], i: int) -> int:
        method = self._require_method()
        first_key = _parse_int(line.split()[1])
        labels: list[str] = []
        while i < len(lines):
            self.line_no = i + 1
            entry = _strip_comment(lines[i])
            i += 1
            if not entry:
                continue
            if entry == ".end packed-switch":
                self._attach_switch_payload(method, "packed", first_key, labels, None)
                return i
            if not entry.startswith(":"):
                raise self.fail(f"expected case label, got {entry!r}")
            labels.append(entry[1:])
        raise self.fail("unterminated .packed-switch")

    def _parse_sparse_switch(self, lines: list[str], i: int) -> int:
        method = self._require_method()
        cases: list[tuple[int, str]] = []
        while i < len(lines):
            self.line_no = i + 1
            entry = _strip_comment(lines[i])
            i += 1
            if not entry:
                continue
            if entry == ".end sparse-switch":
                self._attach_switch_payload(method, "sparse", 0, None, cases)
                return i
            key_text, _, label = entry.partition("->")
            cases.append((_parse_int(key_text.strip()), label.strip()[1:]))
        raise self.fail("unterminated .sparse-switch")

    def _attach_switch_payload(
        self, method: MethodBuilder, kind: str, first_key, labels, cases
    ) -> None:
        # The payload block must follow the label referenced by the switch
        # instruction; bind it to the most recent dangling label.
        pending_label = self._last_label(method)
        from repro.dex.builder import _PendingPayload
        from repro.dex.payloads import PackedSwitchPayload, SparseSwitchPayload

        if kind == "packed":
            payload = PackedSwitchPayload(first_key, list(labels))
        else:
            payload = SparseSwitchPayload(
                [k for k, _ in cases], [lbl for _, lbl in cases]
            )
        method._payloads.append(_PendingPayload(pending_label, payload))

    def _parse_array_data(self, line: str, lines: list[str], i: int) -> int:
        method = self._require_method()
        width = _parse_int(line.split()[1])
        values: list[int] = []
        while i < len(lines):
            self.line_no = i + 1
            entry = _strip_comment(lines[i])
            i += 1
            if not entry:
                continue
            if entry == ".end array-data":
                from repro.dex.builder import _PendingPayload
                from repro.dex.payloads import FillArrayDataPayload

                raw = b"".join(
                    (v & ((1 << (8 * width)) - 1)).to_bytes(width, "little")
                    for v in values
                )
                method._payloads.append(
                    _PendingPayload(
                        self._last_label(method), FillArrayDataPayload(width, raw)
                    )
                )
                return i
            for token in entry.replace(",", " ").split():
                values.append(_parse_int(token))
        raise self.fail("unterminated .array-data")

    def _last_label(self, method: MethodBuilder) -> str:
        """The label declared at the current emission point (payload name)."""
        at_end = [
            name
            for name, index in method._labels.items()
            if index == len(method._pending)
        ]
        if not at_end:
            raise self.fail("payload block must directly follow its label")
        return at_end[-1]


# -- lexical helpers --------------------------------------------------------------


def _strip_comment(line: str) -> str:
    out = []
    in_string = False
    escaped = False
    for ch in line:
        if in_string:
            out.append(ch)
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
        elif ch == '"':
            in_string = True
            out.append(ch)
        elif ch == "#":
            break
        else:
            out.append(ch)
    return "".join(out).strip()


def _split_operands(text: str) -> list[str]:
    """Split operand text on commas, respecting strings and {...} lists."""
    if not text:
        return []
    parts: list[str] = []
    depth = 0
    in_string = False
    escaped = False
    current: list[str] = []
    for ch in text:
        if in_string:
            current.append(ch)
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
            continue
        if ch == '"':
            in_string = True
            current.append(ch)
        elif ch == "{":
            depth += 1
            current.append(ch)
        elif ch == "}":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current).strip())
    return [p for p in parts if p]


def _is_register(token: str) -> bool:
    return len(token) > 1 and token[1:].isdigit()


def _parse_int(token: str) -> int:
    token = token.strip()
    if token.endswith(("L", "t", "s")):
        token = token[:-1]
    return int(token, 0)


def _parse_string_literal(token: str) -> str:
    token = token.strip()
    if not (token.startswith('"') and token.endswith('"')):
        raise AssemblyError(f"expected string literal, got {token!r}")
    body = token[1:-1]
    return body.encode("utf-8").decode("unicode_escape")


def _parse_literal(token: str):
    token = token.strip()
    if token.startswith('"'):
        return _parse_string_literal(token)
    if token in ("true", "false"):
        return token == "true"
    if "." in token:
        return float(token)
    return _parse_int(token)


def _parse_access(words: list[str]) -> int:
    access = 0
    for word in words:
        flag = _ACCESS_WORDS.get(word)
        if flag is None:
            raise AssemblyError(f"unknown access word {word!r}")
        access |= int(flag)
    if not access & (
        AccessFlags.PUBLIC | AccessFlags.PRIVATE | AccessFlags.PROTECTED
    ):
        access |= int(AccessFlags.PUBLIC)
    return access
