"""Programmatic DEX construction with labels and automatic layout.

:class:`DexBuilder` / :class:`ClassBuilder` / :class:`MethodBuilder` let
test programs be written as readable Python while still producing real
code-unit arrays.  The method builder performs two-pass layout: record
pseudo-instructions (branch operands may be label names), assign each a
``dex_pc``, then patch relative offsets and append aligned switch /
array payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dex.constants import AccessFlags, EncodedValueType, NO_INDEX
from repro.dex.formats import FORMAT_UNITS
from repro.dex.instructions import Instruction
from repro.dex.opcodes import opcode_for
from repro.dex.payloads import (
    FillArrayDataPayload,
    PackedSwitchPayload,
    SparseSwitchPayload,
)
from repro.dex.sigs import (
    method_arg_width,
    parse_field_signature,
    parse_method_signature,
)
from repro.dex.structures import (
    ClassDef,
    CodeItem,
    DexFile,
    EncodedField,
    EncodedMethod,
    EncodedValue,
    FieldRef,
    MethodRef,
    TryBlock,
)
from repro.errors import AssemblyError


@dataclass
class _Pending:
    """One not-yet-laid-out instruction."""

    mnemonic: str
    operands: tuple
    label: str | None = None  # branch/payload target label, if any
    pc: int = -1


@dataclass
class _PendingPayload:
    label: str
    payload: object  # one of the payload classes (targets may hold labels)
    pc: int = -1


@dataclass
class _PendingTry:
    start_label: str
    end_label: str
    handlers: list[tuple[str | None, str]] = field(default_factory=list)


class DexBuilder:
    """Top-level builder producing a :class:`DexFile`."""

    def __init__(self) -> None:
        self.dex = DexFile()

    def add_class(
        self,
        descriptor: str,
        superclass: str | None = "Ljava/lang/Object;",
        access: int = int(AccessFlags.PUBLIC),
        interfaces: tuple[str, ...] = (),
        source_file: str | None = None,
    ) -> "ClassBuilder":
        if self.dex.find_class(descriptor) is not None:
            raise AssemblyError(f"duplicate class {descriptor}")
        class_def = ClassDef(
            class_idx=self.dex.intern_type(descriptor),
            access_flags=access,
            superclass_idx=(
                self.dex.intern_type(superclass) if superclass else NO_INDEX
            ),
            interfaces=[self.dex.intern_type(i) for i in interfaces],
            source_file_idx=(
                self.dex.intern_string(source_file) if source_file else NO_INDEX
            ),
        )
        self.dex.class_defs.append(class_def)
        return ClassBuilder(self, class_def, descriptor)

    def build(self) -> DexFile:
        return self.dex


class ClassBuilder:
    """Builder for one class definition."""

    def __init__(self, parent: DexBuilder, class_def: ClassDef, descriptor: str) -> None:
        self.parent = parent
        self.class_def = class_def
        self.descriptor = descriptor

    @property
    def dex(self) -> DexFile:
        return self.parent.dex

    def add_static_field(
        self,
        name: str,
        type_desc: str,
        access: int = int(AccessFlags.PUBLIC | AccessFlags.STATIC),
        initial: object = None,
    ) -> FieldRef:
        field_idx = self.dex.intern_field(self.descriptor, name, type_desc)
        self.class_def.static_fields.append(EncodedField(field_idx, access))
        self.class_def.static_values.append(self._encode_initial(type_desc, initial))
        return FieldRef(self.descriptor, name, type_desc)

    def _encode_initial(self, type_desc: str, initial: object) -> EncodedValue:
        if initial is None:
            if type_desc in ("J",):
                return EncodedValue(EncodedValueType.LONG, 0)
            if type_desc in ("F",):
                return EncodedValue(EncodedValueType.FLOAT, 0.0)
            if type_desc in ("D",):
                return EncodedValue(EncodedValueType.DOUBLE, 0.0)
            if type_desc in ("Z",):
                return EncodedValue.of_bool(False)
            if type_desc in ("B", "S", "C", "I"):
                return EncodedValue.of_int(0)
            return EncodedValue.null()
        if isinstance(initial, bool):
            return EncodedValue.of_bool(initial)
        if isinstance(initial, int):
            kind = EncodedValueType.LONG if type_desc == "J" else EncodedValueType.INT
            return EncodedValue(kind, initial)
        if isinstance(initial, float):
            kind = EncodedValueType.DOUBLE if type_desc == "D" else EncodedValueType.FLOAT
            return EncodedValue(kind, initial)
        if isinstance(initial, str):
            return EncodedValue.of_string_idx(self.dex.intern_string(initial))
        raise AssemblyError(f"unsupported static initial value {initial!r}")

    def add_instance_field(
        self, name: str, type_desc: str, access: int = int(AccessFlags.PUBLIC)
    ) -> FieldRef:
        field_idx = self.dex.intern_field(self.descriptor, name, type_desc)
        self.class_def.instance_fields.append(EncodedField(field_idx, access))
        return FieldRef(self.descriptor, name, type_desc)

    def method(
        self,
        name: str,
        return_desc: str = "V",
        param_descs: tuple[str, ...] = (),
        access: int = int(AccessFlags.PUBLIC),
        locals_count: int = 4,
        native: bool = False,
        abstract: bool = False,
    ) -> "MethodBuilder":
        if native:
            access |= int(AccessFlags.NATIVE)
        if abstract:
            access |= int(AccessFlags.ABSTRACT)
        if name in ("<init>", "<clinit>"):
            access |= int(AccessFlags.CONSTRUCTOR)
            if name == "<clinit>":
                access |= int(AccessFlags.STATIC)
        method_idx = self.dex.intern_method(
            self.descriptor, name, return_desc, param_descs
        )
        is_static = bool(access & AccessFlags.STATIC)
        ref = MethodRef(self.descriptor, name, param_descs, return_desc)
        encoded = EncodedMethod(method_idx, access, None)
        is_direct = (
            is_static
            or bool(access & AccessFlags.PRIVATE)
            or name in ("<init>", "<clinit>")
        )
        if is_direct:
            self.class_def.direct_methods.append(encoded)
        else:
            self.class_def.virtual_methods.append(encoded)
        return MethodBuilder(self, encoded, ref, is_static, locals_count,
                             has_body=not (native or abstract))


class MethodBuilder:
    """Two-pass instruction emitter for one method body."""

    def __init__(
        self,
        class_builder: ClassBuilder,
        encoded: EncodedMethod,
        ref: MethodRef,
        is_static: bool,
        locals_count: int,
        has_body: bool,
    ) -> None:
        self.class_builder = class_builder
        self.encoded = encoded
        self.ref = ref
        self.is_static = is_static
        self.locals_count = locals_count
        self.has_body = has_body
        self.ins_size = method_arg_width(ref, is_static)
        self._pending: list[_Pending] = []
        self._labels: dict[str, int] = {}  # label -> index into _pending
        self._payloads: list[_PendingPayload] = []
        self._tries: list[_PendingTry] = []
        self._outs = 0
        self._built = False

    @property
    def dex(self) -> DexFile:
        return self.class_builder.dex

    # -- register helpers ---------------------------------------------------

    def p(self, n: int) -> int:
        """Parameter register ``pN`` mapped to its absolute index."""
        return self.locals_count + n

    @property
    def registers_size(self) -> int:
        return self.locals_count + self.ins_size

    # -- emission primitives --------------------------------------------------

    def raw(self, mnemonic: str, *operands: int) -> "MethodBuilder":
        """Emit an instruction with fully-resolved operands."""
        opcode_for(mnemonic)  # validate
        self._pending.append(_Pending(mnemonic, tuple(operands)))
        return self

    def label(self, name: str) -> "MethodBuilder":
        if name in self._labels:
            raise AssemblyError(f"duplicate label :{name} in {self.ref}")
        self._labels[name] = len(self._pending)
        return self

    def _emit_branch(self, mnemonic: str, operands: tuple, label: str) -> None:
        self._pending.append(_Pending(mnemonic, operands, label=label))

    # -- convenience emitters ---------------------------------------------------

    def nop(self) -> "MethodBuilder":
        return self.raw("nop")

    def const(self, reg: int, value: int) -> "MethodBuilder":
        """Emit the narrowest non-wide integer const for ``value``."""
        if reg < 16 and -8 <= value <= 7:
            return self.raw("const/4", reg, value)
        if -32768 <= value <= 32767:
            return self.raw("const/16", reg, value)
        if value & 0xFFFF == 0 and -(1 << 31) <= value < (1 << 31):
            return self.raw("const/high16", reg, value >> 16)
        return self.raw("const", reg, value)

    def const_wide(self, reg: int, value: int) -> "MethodBuilder":
        if -32768 <= value <= 32767:
            return self.raw("const-wide/16", reg, value)
        if -(1 << 31) <= value < (1 << 31):
            return self.raw("const-wide/32", reg, value)
        return self.raw("const-wide", reg, value)

    def const_string(self, reg: int, value: str) -> "MethodBuilder":
        return self.raw("const-string", reg, self.dex.intern_string(value))

    def const_class(self, reg: int, descriptor: str) -> "MethodBuilder":
        return self.raw("const-class", reg, self.dex.intern_type(descriptor))

    def move(self, dst: int, src: int) -> "MethodBuilder":
        return self.raw("move" if max(dst, src) < 16 else "move/from16", dst, src)

    def move_object(self, dst: int, src: int) -> "MethodBuilder":
        name = "move-object" if max(dst, src) < 16 else "move-object/from16"
        return self.raw(name, dst, src)

    def new_instance(self, reg: int, descriptor: str) -> "MethodBuilder":
        return self.raw("new-instance", reg, self.dex.intern_type(descriptor))

    def check_cast(self, reg: int, descriptor: str) -> "MethodBuilder":
        return self.raw("check-cast", reg, self.dex.intern_type(descriptor))

    def new_array(self, dst: int, size_reg: int, descriptor: str) -> "MethodBuilder":
        return self.raw("new-array", dst, size_reg, self.dex.intern_type(descriptor))

    def invoke(self, kind: str, signature: str, *regs: int) -> "MethodBuilder":
        """Emit ``invoke-<kind>`` for a full method signature string."""
        ref = parse_method_signature(signature)
        method_idx = self.dex.intern_method_ref(ref)
        width = method_arg_width(ref, is_static=(kind == "static"))
        self._outs = max(self._outs, width)
        if len(regs) > 5 or any(r > 15 for r in regs):
            first = regs[0] if regs else 0
            if list(regs) != list(range(first, first + len(regs))):
                raise AssemblyError(
                    f"range invoke needs contiguous registers, got {regs}"
                )
            return self.raw(f"invoke-{kind}/range", method_idx, first, len(regs))
        return self.raw(f"invoke-{kind}", method_idx, *regs)

    def field_op(self, mnemonic: str, *regs_then_sig) -> "MethodBuilder":
        """Emit iget/iput/sget/sput; last positional arg is the signature."""
        *regs, signature = regs_then_sig
        ref = parse_field_signature(signature)
        field_idx = self.dex.intern_field_ref(ref)
        return self.raw(mnemonic, *regs, field_idx)

    def goto_(self, label: str) -> "MethodBuilder":
        self._emit_branch("goto/16", (), label)
        return self

    def if_op(self, cond: str, reg_a: int, reg_b: int, label: str) -> "MethodBuilder":
        self._emit_branch(f"if-{cond}", (reg_a, reg_b), label)
        return self

    def if_zero(self, cond: str, reg: int, label: str) -> "MethodBuilder":
        self._emit_branch(f"if-{cond}z", (reg,), label)
        return self

    def packed_switch(
        self, reg: int, first_key: int, case_labels: list[str]
    ) -> "MethodBuilder":
        data_label = f"__pswitch_{len(self._payloads)}"
        self._emit_branch("packed-switch", (reg,), data_label)
        self._payloads.append(
            _PendingPayload(data_label, PackedSwitchPayload(first_key, list(case_labels)))
        )
        return self

    def sparse_switch(
        self, reg: int, cases: list[tuple[int, str]]
    ) -> "MethodBuilder":
        data_label = f"__sswitch_{len(self._payloads)}"
        self._emit_branch("sparse-switch", (reg,), data_label)
        keys = [k for k, _ in cases]
        labels = [lbl for _, lbl in cases]
        self._payloads.append(
            _PendingPayload(data_label, SparseSwitchPayload(keys, labels))
        )
        return self

    def fill_array_data(
        self, reg: int, element_width: int, values: list[int]
    ) -> "MethodBuilder":
        data_label = f"__array_{len(self._payloads)}"
        self._emit_branch("fill-array-data", (reg,), data_label)
        raw = b"".join(
            (v & ((1 << (8 * element_width)) - 1)).to_bytes(element_width, "little")
            for v in values
        )
        self._payloads.append(
            _PendingPayload(data_label, FillArrayDataPayload(element_width, raw))
        )
        return self

    def ret_void(self) -> "MethodBuilder":
        return self.raw("return-void")

    def ret(self, reg: int) -> "MethodBuilder":
        return self.raw("return", reg)

    def ret_object(self, reg: int) -> "MethodBuilder":
        return self.raw("return-object", reg)

    def ret_wide(self, reg: int) -> "MethodBuilder":
        return self.raw("return-wide", reg)

    def throw(self, reg: int) -> "MethodBuilder":
        return self.raw("throw", reg)

    def try_range(
        self,
        start_label: str,
        end_label: str,
        handlers: list[tuple[str | None, str]],
    ) -> "MethodBuilder":
        """Register a try region; handlers map exception type -> label.

        ``None`` as the type descriptor means catch-all.
        """
        self._tries.append(_PendingTry(start_label, end_label, list(handlers)))
        return self

    # -- finalization -------------------------------------------------------------

    def build(self) -> EncodedMethod:
        """Lay out, patch branches, attach payloads and finish the method."""
        if self._built:
            return self.encoded
        self._built = True
        if not self.has_body:
            return self.encoded

        # Pass 1: assign dex_pc to each instruction.
        pc = 0
        for pending in self._pending:
            pending.pc = pc
            fmt = opcode_for(pending.mnemonic).fmt
            pc += FORMAT_UNITS[fmt]
        # Payloads go after the code, each 2-unit aligned.
        payload_pcs: dict[str, int] = {}
        for pending_payload in self._payloads:
            if pc % 2:
                pc += 1  # will be filled with a nop unit
            pending_payload.pc = pc
            payload_pcs[pending_payload.label] = pc
            pc += self._payload_units(pending_payload.payload)

        code_end_pc = (
            self._pending[-1].pc
            + FORMAT_UNITS[opcode_for(self._pending[-1].mnemonic).fmt]
            if self._pending
            else 0
        )
        label_pcs = self._resolve_label_pcs(payload_pcs, code_end_pc)

        # Pass 2: encode with resolved relative offsets.
        units: list[int] = []
        for pending in self._pending:
            operands = pending.operands
            if pending.label is not None:
                target_pc = label_pcs[pending.label]
                operands = (*operands, target_pc - pending.pc)
            ins = Instruction.make(pending.mnemonic, *operands)
            encoded = ins.encode()
            if len(units) != pending.pc:
                raise AssemblyError(
                    f"layout drift in {self.ref}: expected pc {pending.pc}, "
                    f"got {len(units)}"
                )
            units.extend(encoded)
        for pending_payload in self._payloads:
            while len(units) < pending_payload.pc:
                units.append(0)  # alignment nop
            payload = self._resolve_payload(
                pending_payload, label_pcs
            )
            units.extend(payload.encode())

        code = CodeItem(
            registers_size=self.registers_size,
            ins_size=self.ins_size,
            outs_size=self._outs,
            insns=units,
        )
        for pending_try in self._tries:
            start = label_pcs[pending_try.start_label]
            end = label_pcs[pending_try.end_label]
            try_block = TryBlock(start, end - start)
            for type_desc, handler_label in pending_try.handlers:
                addr = label_pcs[handler_label]
                if type_desc is None:
                    try_block.catch_all = addr
                else:
                    try_block.handlers.append(
                        (self.dex.intern_type(type_desc), addr)
                    )
            code.tries.append(try_block)
        self.encoded.code = code
        return self.encoded

    def _payload_units(self, payload) -> int:
        if isinstance(payload, PackedSwitchPayload):
            return 4 + 2 * len(payload.targets)
        if isinstance(payload, SparseSwitchPayload):
            return 2 + 4 * len(payload.keys)
        if isinstance(payload, FillArrayDataPayload):
            return payload.unit_count()
        raise AssemblyError(f"unknown payload {payload!r}")

    def _resolve_label_pcs(
        self, payload_pcs: dict[str, int], code_end_pc: int
    ) -> dict[str, int]:
        label_pcs: dict[str, int] = {}
        for name, index in self._labels.items():
            if index >= len(self._pending):
                # Label after the last instruction: legal as a try-region end.
                label_pcs[name] = code_end_pc
            else:
                label_pcs[name] = self._pending[index].pc
        # Payload labels win over instruction-stream labels of the same name:
        # smali declares the payload label in the instruction stream but the
        # data itself is laid out after the code.
        label_pcs.update(payload_pcs)
        for pending in self._pending:
            if pending.label is not None and pending.label not in label_pcs:
                raise AssemblyError(
                    f"undefined label :{pending.label} in {self.ref}"
                )
        for pending_try in self._tries:
            for label in (
                pending_try.start_label,
                pending_try.end_label,
                *(h[1] for h in pending_try.handlers),
            ):
                if label not in label_pcs:
                    raise AssemblyError(f"undefined label :{label} in {self.ref}")
        return label_pcs

    def _resolve_payload(self, pending: _PendingPayload, label_pcs: dict[str, int]):
        payload = pending.payload
        # The switch instruction that references this payload:
        switch_pc = next(
            p.pc for p in self._pending if p.label == pending.label
        )
        if isinstance(payload, PackedSwitchPayload):
            targets = [label_pcs[lbl] - switch_pc for lbl in payload.targets]
            return PackedSwitchPayload(payload.first_key, targets)
        if isinstance(payload, SparseSwitchPayload):
            targets = [label_pcs[lbl] - switch_pc for lbl in payload.targets]
            return SparseSwitchPayload(list(payload.keys), targets)
        return payload
