"""Checksum and signature helpers for the DEX header.

A DEX file carries an Adler-32 checksum over everything after the checksum
field, and a SHA-1 signature over everything after the signature field.
Both are recomputed by the writer and validated by the reader.
"""

from __future__ import annotations

import hashlib
import zlib

# Byte layout constants of the DEX header prefix.
MAGIC_SIZE = 8
CHECKSUM_OFFSET = MAGIC_SIZE
CHECKSUM_SIZE = 4
SIGNATURE_OFFSET = CHECKSUM_OFFSET + CHECKSUM_SIZE
SIGNATURE_SIZE = 20


def adler32_checksum(dex_bytes: bytes) -> int:
    """Adler-32 over the file contents after the checksum field."""
    return zlib.adler32(dex_bytes[SIGNATURE_OFFSET:]) & 0xFFFFFFFF


def sha1_signature(dex_bytes: bytes) -> bytes:
    """SHA-1 over the file contents after the signature field."""
    start = SIGNATURE_OFFSET + SIGNATURE_SIZE
    return hashlib.sha1(dex_bytes[start:]).digest()


def patch_header_digests(dex_bytes: bytearray) -> None:
    """Fill in the signature then the checksum fields of a complete file."""
    signature = sha1_signature(bytes(dex_bytes))
    dex_bytes[SIGNATURE_OFFSET : SIGNATURE_OFFSET + SIGNATURE_SIZE] = signature
    checksum = adler32_checksum(bytes(dex_bytes))
    dex_bytes[CHECKSUM_OFFSET : CHECKSUM_OFFSET + CHECKSUM_SIZE] = checksum.to_bytes(
        4, "little"
    )
