"""Binary DEX reader.

Parses the binary container produced by :mod:`repro.dex.writer` (or any
file using the same layout subset) back into a
:class:`~repro.dex.structures.DexFile`.  Magic, endian tag, checksum and
signature are validated unless ``strict=False``.
"""

from __future__ import annotations

import struct

from repro.dex import checksums
from repro.dex.constants import (
    DEX_MAGIC,
    ENDIAN_CONSTANT,
    HEADER_SIZE,
    EncodedValueType,
)
from repro.dex.leb128 import decode_sleb128, decode_uleb128
from repro.dex.mutf8 import decode_mutf8
from repro.dex.structures import (
    ClassDef,
    CodeItem,
    DexFieldId,
    DexFile,
    DexMethodId,
    DexProto,
    EncodedField,
    EncodedMethod,
    EncodedValue,
    TryBlock,
)
from repro.errors import DexFormatError


def read_dex(data: bytes, strict: bool = True) -> DexFile:
    """Parse binary DEX ``data`` into a :class:`DexFile` model."""
    return _Reader(data, strict).parse()


class _Reader:
    def __init__(self, data: bytes, strict: bool) -> None:
        self.data = data
        self.strict = strict

    def parse(self) -> DexFile:
        data = self.data
        if len(data) < HEADER_SIZE:
            raise DexFormatError("file smaller than DEX header")
        if data[:8] != DEX_MAGIC:
            raise DexFormatError(f"bad DEX magic {data[:8]!r}")
        (
            file_size,
            header_size,
            endian_tag,
            _link_size,
            _link_off,
            _map_off,
        ) = struct.unpack_from("<IIIIII", data, 32)
        if endian_tag != ENDIAN_CONSTANT:
            raise DexFormatError(f"bad endian tag {endian_tag:#x}")
        if header_size != HEADER_SIZE:
            raise DexFormatError(f"unexpected header size {header_size}")
        if file_size != len(data):
            raise DexFormatError(
                f"file_size field {file_size} != actual size {len(data)}"
            )
        if self.strict:
            stored_checksum = struct.unpack_from("<I", data, 8)[0]
            if stored_checksum != checksums.adler32_checksum(data):
                raise DexFormatError("checksum mismatch")
            stored_signature = data[12:32]
            if stored_signature != checksums.sha1_signature(data):
                raise DexFormatError("signature mismatch")

        (
            n_str, string_ids_off,
            n_type, type_ids_off,
            n_proto, proto_ids_off,
            n_field, field_ids_off,
            n_method, method_ids_off,
            n_class, class_defs_off,
            _data_size, _data_off,
        ) = struct.unpack_from("<IIIIIIIIIIIIII", data, 56)

        dex = DexFile()
        dex.strings = [
            self._read_string_data(struct.unpack_from("<I", data, string_ids_off + 4 * i)[0])
            for i in range(n_str)
        ]
        dex.type_ids = [
            struct.unpack_from("<I", data, type_ids_off + 4 * i)[0]
            for i in range(n_type)
        ]
        for i in range(n_proto):
            _shorty_idx, return_idx, params_off = struct.unpack_from(
                "<III", data, proto_ids_off + 12 * i
            )
            dex.protos.append(DexProto(return_idx, self._read_type_list(params_off)))
        for i in range(n_field):
            class_idx, type_idx, name_idx = struct.unpack_from(
                "<HHI", data, field_ids_off + 8 * i
            )
            dex.field_ids.append(DexFieldId(class_idx, type_idx, name_idx))
        for i in range(n_method):
            class_idx, proto_idx, name_idx = struct.unpack_from(
                "<HHI", data, method_ids_off + 8 * i
            )
            dex.method_ids.append(DexMethodId(class_idx, proto_idx, name_idx))
        for i in range(n_class):
            dex.class_defs.append(self._read_class_def(class_defs_off + 32 * i))
        dex._rebuild_indexes()
        return dex

    def _read_string_data(self, offset: int) -> str:
        _utf16_len, pos = decode_uleb128(self.data, offset)
        end = self.data.index(b"\x00", pos)
        return decode_mutf8(self.data[pos:end])

    def _read_type_list(self, offset: int) -> tuple[int, ...]:
        if offset == 0:
            return ()
        (size,) = struct.unpack_from("<I", self.data, offset)
        return struct.unpack_from(f"<{size}H", self.data, offset + 4)

    def _read_class_def(self, offset: int) -> ClassDef:
        (
            class_idx,
            access_flags,
            superclass_idx,
            interfaces_off,
            source_file_idx,
            _annotations_off,
            class_data_off,
            static_values_off,
        ) = struct.unpack_from("<IIIIIIII", self.data, offset)
        class_def = ClassDef(
            class_idx=class_idx,
            access_flags=access_flags,
            superclass_idx=superclass_idx,
            interfaces=list(self._read_type_list(interfaces_off)),
            source_file_idx=source_file_idx,
        )
        if class_data_off:
            self._read_class_data(class_def, class_data_off)
        if static_values_off:
            class_def.static_values = self._read_encoded_array(static_values_off)
        return class_def

    def _read_class_data(self, class_def: ClassDef, offset: int) -> None:
        data = self.data
        n_static, pos = decode_uleb128(data, offset)
        n_instance, pos = decode_uleb128(data, pos)
        n_direct, pos = decode_uleb128(data, pos)
        n_virtual, pos = decode_uleb128(data, pos)
        for target, count in (
            (class_def.static_fields, n_static),
            (class_def.instance_fields, n_instance),
        ):
            field_idx = 0
            for _ in range(count):
                diff, pos = decode_uleb128(data, pos)
                access, pos = decode_uleb128(data, pos)
                field_idx += diff
                target.append(EncodedField(field_idx, access))
        for target, count in (
            (class_def.direct_methods, n_direct),
            (class_def.virtual_methods, n_virtual),
        ):
            method_idx = 0
            for _ in range(count):
                diff, pos = decode_uleb128(data, pos)
                access, pos = decode_uleb128(data, pos)
                code_off, pos = decode_uleb128(data, pos)
                method_idx += diff
                code = self._read_code_item(code_off) if code_off else None
                target.append(EncodedMethod(method_idx, access, code))

    def _read_code_item(self, offset: int) -> CodeItem:
        data = self.data
        registers_size, ins_size, outs_size, tries_size, _debug_off, insns_size = (
            struct.unpack_from("<HHHHII", data, offset)
        )
        insns_start = offset + 16
        insns = list(
            struct.unpack_from(f"<{insns_size}H", data, insns_start)
        )
        code = CodeItem(registers_size, ins_size, outs_size, insns)
        if tries_size:
            tries_start = insns_start + 2 * insns_size
            if insns_size % 2:
                tries_start += 2  # alignment padding
            handlers_start = tries_start + 8 * tries_size
            for i in range(tries_size):
                start_addr, insn_count, handler_off = struct.unpack_from(
                    "<IHH", data, tries_start + 8 * i
                )
                try_block = TryBlock(start_addr, insn_count)
                pos = handlers_start + handler_off
                size, pos = decode_sleb128(data, pos)
                for _ in range(abs(size)):
                    type_idx, pos = decode_uleb128(data, pos)
                    addr, pos = decode_uleb128(data, pos)
                    try_block.handlers.append((type_idx, addr))
                if size <= 0:
                    catch_all, pos = decode_uleb128(data, pos)
                    try_block.catch_all = catch_all
                code.tries.append(try_block)
        return code

    def _read_encoded_array(self, offset: int) -> list[EncodedValue]:
        size, pos = decode_uleb128(self.data, offset)
        values = []
        for _ in range(size):
            value, pos = self._read_encoded_value(pos)
            values.append(value)
        return values

    def _read_encoded_value(self, pos: int) -> tuple[EncodedValue, int]:
        header = self.data[pos]
        pos += 1
        kind = EncodedValueType(header & 0x1F)
        arg = header >> 5
        if kind is EncodedValueType.NULL:
            return EncodedValue(kind, None), pos
        if kind is EncodedValueType.BOOLEAN:
            return EncodedValue(kind, bool(arg)), pos
        size = arg + 1
        payload = self.data[pos : pos + size]
        pos += size
        if kind in (
            EncodedValueType.BYTE,
            EncodedValueType.SHORT,
            EncodedValueType.INT,
            EncodedValueType.LONG,
        ):
            return EncodedValue(kind, int.from_bytes(payload, "little", signed=True)), pos
        if kind is EncodedValueType.CHAR:
            return EncodedValue(kind, int.from_bytes(payload, "little")), pos
        if kind is EncodedValueType.FLOAT:
            return EncodedValue(kind, struct.unpack("<f", payload.ljust(4, b"\x00"))[0]), pos
        if kind is EncodedValueType.DOUBLE:
            return EncodedValue(kind, struct.unpack("<d", payload.ljust(8, b"\x00"))[0]), pos
        if kind in (EncodedValueType.STRING, EncodedValueType.TYPE):
            return EncodedValue(kind, int.from_bytes(payload, "little")), pos
        raise DexFormatError(f"unsupported encoded value kind {kind!r}")
