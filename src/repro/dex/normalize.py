"""Structural normalization of Dalvik instructions for similarity hashing.

Two method bodies compiled from the same source rarely share raw code
units: register allocation renumbers operands and every constant-pool
reference is an index into that DEX's private pools.  The helpers here
strip exactly those two accidents while keeping everything structural:

* register operands become first-use ordinals (``v5, v2, v5`` and
  ``v0, v1, v0`` normalize identically);
* constant-pool indices become ``(index kind, first-occurrence ordinal
  of the resolved symbol)`` placeholders — two methods that refer to
  *their own* class's field in the same position normalize identically
  even though the descriptors differ;
* literals, branch offsets and payload data are kept verbatim.

The output is a JSON-safe token list, the shared substrate for the
corpus index's structural hash and fuzzy digest
(:mod:`repro.index.digests`).  This module depends only on
:mod:`repro.dex` — callers adapt their own collection records.
"""

from __future__ import annotations

from repro.dex.instructions import Instruction
from repro.dex.opcodes import IndexKind

_REGISTER_LIST_FMTS = ("35c", "3rc")


def register_operands(ins: Instruction) -> list[int]:
    """The register operands of ``ins``, range forms expanded.

    Format names encode the register count in their second character
    (``22t`` → two registers, then the branch offset) except the
    register-list forms: ``35c`` carries the pool index first then up
    to five registers, ``3rc`` a ``(index, first, count)`` range.
    """
    fmt = ins.opcode.fmt
    if fmt == "35c":
        return list(ins.operands[1:])
    if fmt == "3rc":
        first, count = ins.operands[1], ins.operands[2]
        return list(range(first, first + count))
    return list(ins.operands[: int(fmt[1])])


class Normalizer:
    """First-use ordinal assignment for registers and pool symbols.

    One instance spans one method: the *sequence* of distinct registers
    and symbols is identity, their concrete values are not.
    """

    def __init__(self) -> None:
        self._registers: dict[int, int] = {}
        self._symbols: dict[tuple[str, str], int] = {}

    def register(self, reg: int) -> int:
        return self._registers.setdefault(reg, len(self._registers))

    def symbol(self, kind: IndexKind, symbol: str) -> int:
        key = (kind.name, symbol)
        return self._symbols.setdefault(key, len(self._symbols))

    def token(self, ins: Instruction, symbol: str | None,
              payload_units=None) -> list:
        """One instruction as a JSON-safe normalized token."""
        kind = ins.opcode.index_kind
        registers = [self.register(r) for r in register_operands(ins)]
        token: list = [ins.name, registers]
        if kind is not IndexKind.NONE:
            token.append([
                "p", kind.name.lower(),
                self.symbol(kind, symbol) if symbol is not None else -1,
            ])
        else:
            extras = list(ins.operands[len(registers):])
            if extras:
                token.append(["l", extras])
        if payload_units:
            token.append(["d", list(payload_units)])
        return token
