"""DEX substrate: binary container, bytecode, assembler and tools.

Public surface:

* :class:`~repro.dex.structures.DexFile` — the in-memory model
* :func:`~repro.dex.writer.write_dex` / :func:`~repro.dex.reader.read_dex`
* :class:`~repro.dex.builder.DexBuilder` — programmatic construction
* :func:`~repro.dex.assembler.assemble` /
  :func:`~repro.dex.disassembler.disassemble` — smali-like text
* :func:`~repro.dex.verify.verify_dex` — structural verification
* :class:`~repro.dex.code_units.CodeUnits` — generation-tracked live
  code-unit arrays (the interpreter's predecode-cache substrate)
"""

from repro.dex.assembler import assemble
from repro.dex.builder import ClassBuilder, DexBuilder, MethodBuilder
from repro.dex.code_units import CodeUnits
from repro.dex.disassembler import disassemble, disassemble_class, disassemble_code
from repro.dex.instructions import Instruction, iter_instructions
from repro.dex.opcodes import OPCODES, OPCODES_BY_NAME, IndexKind, OpcodeInfo
from repro.dex.reader import read_dex
from repro.dex.sigs import parse_field_signature, parse_method_signature
from repro.dex.structures import (
    ClassDef,
    CodeItem,
    DexFile,
    EncodedField,
    EncodedMethod,
    EncodedValue,
    FieldRef,
    MethodRef,
    TryBlock,
)
from repro.dex.verify import assert_valid, verify_dex
from repro.dex.writer import write_dex

__all__ = [
    "ClassBuilder",
    "ClassDef",
    "CodeItem",
    "CodeUnits",
    "DexBuilder",
    "DexFile",
    "EncodedField",
    "EncodedMethod",
    "EncodedValue",
    "FieldRef",
    "IndexKind",
    "Instruction",
    "MethodBuilder",
    "MethodRef",
    "OPCODES",
    "OPCODES_BY_NAME",
    "OpcodeInfo",
    "TryBlock",
    "assemble",
    "assert_valid",
    "disassemble",
    "disassemble_class",
    "disassemble_code",
    "iter_instructions",
    "parse_field_signature",
    "parse_method_signature",
    "read_dex",
    "verify_dex",
    "write_dex",
]
