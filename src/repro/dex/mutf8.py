"""Modified UTF-8 (MUTF-8) string codec.

DEX string data is stored in the JVM's *modified* UTF-8: code points above
U+FFFF are first split into a UTF-16 surrogate pair and each surrogate is
then CESU-8 encoded as a 3-byte sequence, and U+0000 is encoded as the
two-byte sequence ``C0 80`` so that encoded strings never contain a NUL.
"""

from __future__ import annotations

from repro.errors import DexFormatError


def encode_mutf8(text: str) -> bytes:
    """Encode ``text`` to MUTF-8 (without the trailing NUL terminator)."""
    out = bytearray()
    for char in text:
        cp = ord(char)
        if cp == 0:
            out += b"\xc0\x80"
        elif cp < 0x80:
            out.append(cp)
        elif cp < 0x800:
            out.append(0xC0 | (cp >> 6))
            out.append(0x80 | (cp & 0x3F))
        elif cp < 0x10000:
            out.append(0xE0 | (cp >> 12))
            out.append(0x80 | ((cp >> 6) & 0x3F))
            out.append(0x80 | (cp & 0x3F))
        else:
            # Encode as a CESU-8 surrogate pair.
            cp -= 0x10000
            high = 0xD800 | (cp >> 10)
            low = 0xDC00 | (cp & 0x3FF)
            for surrogate in (high, low):
                out.append(0xE0 | (surrogate >> 12))
                out.append(0x80 | ((surrogate >> 6) & 0x3F))
                out.append(0x80 | (surrogate & 0x3F))
    return bytes(out)


def decode_mutf8(data: bytes) -> str:
    """Decode MUTF-8 bytes (not NUL terminated) back to a Python string."""
    chars: list[str] = []
    i = 0
    length = len(data)
    pending_high: int | None = None

    def flush_pending() -> None:
        nonlocal pending_high
        if pending_high is not None:
            # Unpaired high surrogate: keep it as-is (lossy but total).
            chars.append(chr(pending_high))
            pending_high = None

    while i < length:
        byte = data[i]
        if byte & 0x80 == 0:
            flush_pending()
            chars.append(chr(byte))
            i += 1
        elif byte & 0xE0 == 0xC0:
            if i + 1 >= length:
                raise DexFormatError("truncated 2-byte mutf8 sequence")
            cp = ((byte & 0x1F) << 6) | (data[i + 1] & 0x3F)
            flush_pending()
            chars.append(chr(cp))
            i += 2
        elif byte & 0xF0 == 0xE0:
            if i + 2 >= length:
                raise DexFormatError("truncated 3-byte mutf8 sequence")
            cp = (
                ((byte & 0x0F) << 12)
                | ((data[i + 1] & 0x3F) << 6)
                | (data[i + 2] & 0x3F)
            )
            i += 3
            if 0xD800 <= cp <= 0xDBFF:
                flush_pending()
                pending_high = cp
            elif 0xDC00 <= cp <= 0xDFFF and pending_high is not None:
                combined = 0x10000 + ((pending_high - 0xD800) << 10) + (cp - 0xDC00)
                chars.append(chr(combined))
                pending_high = None
            else:
                flush_pending()
                chars.append(chr(cp))
        else:
            raise DexFormatError(f"invalid mutf8 lead byte {byte:#04x} at {i}")
    flush_pending()
    return "".join(chars)
