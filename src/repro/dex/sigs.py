"""Parsing of descriptor-language signatures.

``Lcom/test/Main;->normal(Ljava/lang/String;)V`` method signatures and
``Lcom/test/Main;->PHONE:Ljava/lang/String;`` field signatures are the
lingua franca between the assembler, the runtime and the analysis tools.
"""

from __future__ import annotations

from repro.dex.structures import FieldRef, MethodRef
from repro.errors import AssemblyError


def split_type_list(descriptors: str) -> tuple[str, ...]:
    """Split a concatenated descriptor list (``ILjava/lang/String;[B``)."""
    out: list[str] = []
    i = 0
    n = len(descriptors)
    while i < n:
        start = i
        while i < n and descriptors[i] == "[":
            i += 1
        if i >= n:
            raise AssemblyError(f"dangling array marker in {descriptors!r}")
        if descriptors[i] == "L":
            end = descriptors.find(";", i)
            if end < 0:
                raise AssemblyError(f"unterminated class descriptor in {descriptors!r}")
            i = end + 1
        elif descriptors[i] in "VZBSCIJFD":
            i += 1
        else:
            raise AssemblyError(
                f"bad descriptor character {descriptors[i]!r} in {descriptors!r}"
            )
        out.append(descriptors[start:i])
    return tuple(out)


def parse_method_signature(signature: str) -> MethodRef:
    """Parse ``Lcls;->name(params)ret`` into a :class:`MethodRef`."""
    try:
        class_desc, rest = signature.split("->", 1)
        name, rest = rest.split("(", 1)
        params, return_desc = rest.split(")", 1)
    except ValueError:
        raise AssemblyError(f"malformed method signature {signature!r}") from None
    if not class_desc.startswith(("L", "[")):
        raise AssemblyError(f"bad class descriptor in {signature!r}")
    return MethodRef(class_desc, name, split_type_list(params), return_desc)


def parse_field_signature(signature: str) -> FieldRef:
    """Parse ``Lcls;->name:type`` into a :class:`FieldRef`."""
    try:
        class_desc, rest = signature.split("->", 1)
        name, type_desc = rest.split(":", 1)
    except ValueError:
        raise AssemblyError(f"malformed field signature {signature!r}") from None
    if not class_desc.startswith(("L", "[")):
        raise AssemblyError(f"bad class descriptor in {signature!r}")
    return FieldRef(class_desc, name, type_desc)


def method_arg_width(ref: MethodRef, is_static: bool) -> int:
    """Number of argument register words an invoke of ``ref`` consumes."""
    width = 0 if is_static else 1
    for param in ref.param_descs:
        width += 2 if param in ("J", "D") else 1
    return width
