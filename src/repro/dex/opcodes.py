"""The Dalvik opcode table.

Each opcode is described by an :class:`OpcodeInfo`: its byte value, smali
mnemonic, instruction format (see :mod:`repro.dex.formats`) and the kind
of constant-pool index it references (if any).  The table covers the
classic Dalvik set used by application bytecode; exotic late additions
(``invoke-polymorphic`` and friends) are deliberately absent — see
DESIGN.md "Known deviations".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DexFormatError


class IndexKind(enum.Enum):
    """What a ``c``-format index operand points at."""

    NONE = "none"
    STRING = "string"
    TYPE = "type"
    FIELD = "field"
    METHOD = "method"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one opcode."""

    value: int
    name: str
    fmt: str
    index_kind: IndexKind = IndexKind.NONE

    @property
    def is_branch(self) -> bool:
        return self.name.startswith(("if-", "goto"))

    @property
    def is_conditional_branch(self) -> bool:
        return self.name.startswith("if-")

    @property
    def is_switch(self) -> bool:
        return self.name in ("packed-switch", "sparse-switch")

    @property
    def is_invoke(self) -> bool:
        return self.name.startswith("invoke-")

    @property
    def is_return(self) -> bool:
        return self.name.startswith("return")

    @property
    def is_throw(self) -> bool:
        return self.name == "throw"

    @property
    def can_continue(self) -> bool:
        """True if control may fall through to the next instruction."""
        return not (self.is_return or self.is_throw or self.name.startswith("goto"))


def _build_table() -> dict[int, OpcodeInfo]:
    entries: list[tuple[int, str, str, IndexKind]] = []
    none = IndexKind.NONE

    def add(value: int, name: str, fmt: str, kind: IndexKind = none) -> None:
        entries.append((value, name, fmt, kind))

    add(0x00, "nop", "10x")
    add(0x01, "move", "12x")
    add(0x02, "move/from16", "22x")
    add(0x03, "move/16", "32x")
    add(0x04, "move-wide", "12x")
    add(0x05, "move-wide/from16", "22x")
    add(0x06, "move-wide/16", "32x")
    add(0x07, "move-object", "12x")
    add(0x08, "move-object/from16", "22x")
    add(0x09, "move-object/16", "32x")
    add(0x0A, "move-result", "11x")
    add(0x0B, "move-result-wide", "11x")
    add(0x0C, "move-result-object", "11x")
    add(0x0D, "move-exception", "11x")
    add(0x0E, "return-void", "10x")
    add(0x0F, "return", "11x")
    add(0x10, "return-wide", "11x")
    add(0x11, "return-object", "11x")
    add(0x12, "const/4", "11n")
    add(0x13, "const/16", "21s")
    add(0x14, "const", "31i")
    add(0x15, "const/high16", "21h")
    add(0x16, "const-wide/16", "21s")
    add(0x17, "const-wide/32", "31i")
    add(0x18, "const-wide", "51l")
    add(0x19, "const-wide/high16", "21h")
    add(0x1A, "const-string", "21c", IndexKind.STRING)
    add(0x1B, "const-string/jumbo", "31c", IndexKind.STRING)
    add(0x1C, "const-class", "21c", IndexKind.TYPE)
    add(0x1D, "monitor-enter", "11x")
    add(0x1E, "monitor-exit", "11x")
    add(0x1F, "check-cast", "21c", IndexKind.TYPE)
    add(0x20, "instance-of", "22c", IndexKind.TYPE)
    add(0x21, "array-length", "12x")
    add(0x22, "new-instance", "21c", IndexKind.TYPE)
    add(0x23, "new-array", "22c", IndexKind.TYPE)
    add(0x24, "filled-new-array", "35c", IndexKind.TYPE)
    add(0x25, "filled-new-array/range", "3rc", IndexKind.TYPE)
    add(0x26, "fill-array-data", "31t")
    add(0x27, "throw", "11x")
    add(0x28, "goto", "10t")
    add(0x29, "goto/16", "20t")
    add(0x2A, "goto/32", "30t")
    add(0x2B, "packed-switch", "31t")
    add(0x2C, "sparse-switch", "31t")
    add(0x2D, "cmpl-float", "23x")
    add(0x2E, "cmpg-float", "23x")
    add(0x2F, "cmpl-double", "23x")
    add(0x30, "cmpg-double", "23x")
    add(0x31, "cmp-long", "23x")
    for i, cond in enumerate(("eq", "ne", "lt", "ge", "gt", "le")):
        add(0x32 + i, f"if-{cond}", "22t")
    for i, cond in enumerate(("eqz", "nez", "ltz", "gez", "gtz", "lez")):
        add(0x38 + i, f"if-{cond}", "21t")
    array_suffixes = ("", "-wide", "-object", "-boolean", "-byte", "-char", "-short")
    for i, suffix in enumerate(array_suffixes):
        add(0x44 + i, f"aget{suffix}", "23x")
    for i, suffix in enumerate(array_suffixes):
        add(0x4B + i, f"aput{suffix}", "23x")
    for i, suffix in enumerate(array_suffixes):
        add(0x52 + i, f"iget{suffix}", "22c", IndexKind.FIELD)
    for i, suffix in enumerate(array_suffixes):
        add(0x59 + i, f"iput{suffix}", "22c", IndexKind.FIELD)
    for i, suffix in enumerate(array_suffixes):
        add(0x60 + i, f"sget{suffix}", "21c", IndexKind.FIELD)
    for i, suffix in enumerate(array_suffixes):
        add(0x67 + i, f"sput{suffix}", "21c", IndexKind.FIELD)
    invoke_kinds = ("virtual", "super", "direct", "static", "interface")
    for i, kind in enumerate(invoke_kinds):
        add(0x6E + i, f"invoke-{kind}", "35c", IndexKind.METHOD)
    for i, kind in enumerate(invoke_kinds):
        add(0x74 + i, f"invoke-{kind}/range", "3rc", IndexKind.METHOD)
    unary = (
        "neg-int", "not-int", "neg-long", "not-long", "neg-float", "neg-double",
        "int-to-long", "int-to-float", "int-to-double", "long-to-int",
        "long-to-float", "long-to-double", "float-to-int", "float-to-long",
        "float-to-double", "double-to-int", "double-to-long", "double-to-float",
        "int-to-byte", "int-to-char", "int-to-short",
    )
    for i, name in enumerate(unary):
        add(0x7B + i, name, "12x")
    int_ops = ("add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr", "ushr")
    long_ops = int_ops
    float_ops = ("add", "sub", "mul", "div", "rem")
    for i, name in enumerate(int_ops):
        add(0x90 + i, f"{name}-int", "23x")
    for i, name in enumerate(long_ops):
        add(0x9B + i, f"{name}-long", "23x")
    for i, name in enumerate(float_ops):
        add(0xA6 + i, f"{name}-float", "23x")
    for i, name in enumerate(float_ops):
        add(0xAB + i, f"{name}-double", "23x")
    for i, name in enumerate(int_ops):
        add(0xB0 + i, f"{name}-int/2addr", "12x")
    for i, name in enumerate(long_ops):
        add(0xBB + i, f"{name}-long/2addr", "12x")
    for i, name in enumerate(float_ops):
        add(0xC6 + i, f"{name}-float/2addr", "12x")
    for i, name in enumerate(float_ops):
        add(0xCB + i, f"{name}-double/2addr", "12x")
    lit16_ops = ("add", "rsub", "mul", "div", "rem", "and", "or", "xor")
    for i, name in enumerate(lit16_ops):
        suffix = "" if name == "rsub" else "/lit16"
        add(0xD0 + i, f"{name}-int{suffix}", "22s")
    lit8_ops = ("add", "rsub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr", "ushr")
    for i, name in enumerate(lit8_ops):
        add(0xD8 + i, f"{name}-int/lit8", "22b")
    return {
        value: OpcodeInfo(value, name, fmt, kind) for value, name, fmt, kind in entries
    }


OPCODES: dict[int, OpcodeInfo] = _build_table()
OPCODES_BY_NAME: dict[str, OpcodeInfo] = {info.name: info for info in OPCODES.values()}

# 256-slot table indexed by opcode byte value (``None`` for unassigned
# values).  The interpreter fast path and the instruction decoder index
# this directly instead of probing the dict above on every fetch.
OPCODE_TABLE: list[OpcodeInfo | None] = [None] * 256
for _info in OPCODES.values():
    OPCODE_TABLE[_info.value] = _info
del _info

# Pseudo-opcodes marking inline data payloads.  They live in the code-unit
# stream but are data, not executable instructions; the low byte is `nop`.
PACKED_SWITCH_PAYLOAD = 0x0100
SPARSE_SWITCH_PAYLOAD = 0x0200
FILL_ARRAY_DATA_PAYLOAD = 0x0300
PAYLOAD_IDENTS = frozenset(
    {PACKED_SWITCH_PAYLOAD, SPARSE_SWITCH_PAYLOAD, FILL_ARRAY_DATA_PAYLOAD}
)


def opcode_for(name: str) -> OpcodeInfo:
    """Look up an opcode by its smali mnemonic."""
    try:
        return OPCODES_BY_NAME[name]
    except KeyError:
        raise DexFormatError(f"unknown opcode mnemonic {name!r}") from None


def opcode_at(units: list[int], pos: int) -> OpcodeInfo:
    """Look up the opcode of the code unit at ``pos``."""
    unit = units[pos]
    value = unit & 0xFF
    if value == 0 and unit in PAYLOAD_IDENTS:
        raise DexFormatError(f"code unit at {pos} is a data payload, not an opcode")
    info = OPCODE_TABLE[value]
    if info is None:
        raise DexFormatError(f"unknown opcode {value:#04x} at unit {pos}")
    return info
