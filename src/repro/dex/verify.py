"""Structural DEX verifier.

Checks the invariants a conforming consumer relies on: pool sort order,
index ranges, instruction decodability, branch targets landing on
instruction boundaries, register bounds and try-block sanity.  The
reassembler's output must pass this verifier (paper §IV-C: the
reassembled DEX "can be correctly processed by the state-of-the-art
static analysis tools").
"""

from __future__ import annotations

from repro.dex.constants import NO_INDEX
from repro.dex.instructions import Instruction
from repro.dex.opcodes import IndexKind
from repro.dex.payloads import decode_payload
from repro.dex.structures import CodeItem, DexFile
from repro.errors import VerificationError


def verify_dex(dex: DexFile) -> list[str]:
    """Verify ``dex``; returns a list of problem strings (empty = OK)."""
    problems: list[str] = []
    _check_pools(dex, problems)
    for class_def in dex.class_defs:
        descriptor = _safe_descriptor(dex, class_def.class_idx)
        if class_def.superclass_idx != NO_INDEX and not (
            0 <= class_def.superclass_idx < len(dex.type_ids)
        ):
            problems.append(f"{descriptor}: superclass index out of range")
        if len(class_def.static_values) > len(class_def.static_fields):
            problems.append(f"{descriptor}: more static values than static fields")
        for method in class_def.all_methods():
            if not 0 <= method.method_idx < len(dex.method_ids):
                problems.append(f"{descriptor}: method index out of range")
                continue
            ref = dex.method_ref(method.method_idx)
            if method.code is not None:
                _check_code(dex, f"{ref}", method.code, problems)
    return problems


def assert_valid(dex: DexFile) -> None:
    """Raise :class:`VerificationError` if the file has structural problems."""
    problems = verify_dex(dex)
    if problems:
        preview = "; ".join(problems[:5])
        raise VerificationError(
            f"DEX failed verification with {len(problems)} problem(s): {preview}"
        )


def _check_pools(dex: DexFile, problems: list[str]) -> None:
    if dex.strings != sorted(dex.strings):
        problems.append("string pool not sorted")
    if dex.type_ids != sorted(dex.type_ids):
        problems.append("type pool not sorted")
    for string_idx in dex.type_ids:
        if not 0 <= string_idx < len(dex.strings):
            problems.append("type id references missing string")
    proto_keys = [(p.return_type_idx, p.param_type_idxs) for p in dex.protos]
    if proto_keys != sorted(proto_keys):
        problems.append("proto pool not sorted")
    field_keys = [(f.class_idx, f.name_idx, f.type_idx) for f in dex.field_ids]
    if field_keys != sorted(field_keys):
        problems.append("field pool not sorted")
    method_keys = [(m.class_idx, m.name_idx, m.proto_idx) for m in dex.method_ids]
    if method_keys != sorted(method_keys):
        problems.append("method pool not sorted")
    seen_types: set[int] = set()
    for class_def in dex.class_defs:
        if class_def.class_idx in seen_types:
            problems.append(
                f"duplicate class def {_safe_descriptor(dex, class_def.class_idx)}"
            )
        seen_types.add(class_def.class_idx)
        if class_def.superclass_idx != NO_INDEX:
            parent = next(
                (c for c in dex.class_defs if c.class_idx == class_def.superclass_idx),
                None,
            )
            if parent is not None and dex.class_defs.index(parent) > dex.class_defs.index(class_def):
                problems.append(
                    f"class {_safe_descriptor(dex, class_def.class_idx)} "
                    "defined before its superclass"
                )


def _check_code(dex: DexFile, where: str, code: CodeItem, problems: list[str]) -> None:
    if code.ins_size > code.registers_size:
        problems.append(f"{where}: ins_size exceeds registers_size")
    try:
        instructions = code.instructions()
    except Exception as exc:
        problems.append(f"{where}: undecodable instructions ({exc})")
        return
    if not instructions:
        problems.append(f"{where}: empty instruction stream")
        return
    boundaries = {dex_pc for dex_pc, _ in instructions}
    for dex_pc, ins in instructions:
        _check_instruction(dex, where, code, dex_pc, ins, boundaries, problems)
    # Control must not fall off the end of the method.  Trailing nops are
    # alignment padding in front of switch/array payloads and are skipped.
    trailing = [ins for _pc, ins in instructions]
    while trailing and trailing[-1].name == "nop":
        trailing.pop()
    if trailing:
        last_ins = trailing[-1]
        if last_ins.opcode.can_continue and not last_ins.opcode.is_branch:
            problems.append(f"{where}: control can fall off the end")
    for try_block in code.tries:
        if try_block.start_addr not in boundaries:
            problems.append(f"{where}: try start {try_block.start_addr} misaligned")
        if try_block.end_addr > len(code.insns):
            problems.append(f"{where}: try end beyond code")
        for type_idx, addr in try_block.handlers:
            if not 0 <= type_idx < len(dex.type_ids):
                problems.append(f"{where}: catch type index out of range")
            if addr not in boundaries:
                problems.append(f"{where}: handler address {addr} misaligned")
        if try_block.catch_all is not None and try_block.catch_all not in boundaries:
            problems.append(f"{where}: catch-all address misaligned")


def _check_instruction(
    dex: DexFile,
    where: str,
    code: CodeItem,
    dex_pc: int,
    ins: Instruction,
    boundaries: set[int],
    problems: list[str],
) -> None:
    kind = ins.opcode.index_kind
    pools = {
        IndexKind.STRING: len(dex.strings),
        IndexKind.TYPE: len(dex.type_ids),
        IndexKind.FIELD: len(dex.field_ids),
        IndexKind.METHOD: len(dex.method_ids),
    }
    if kind is not IndexKind.NONE:
        if not 0 <= ins.pool_index < pools[kind]:
            problems.append(
                f"{where}@{dex_pc}: {ins.name} {kind.value} index "
                f"{ins.pool_index} out of range"
            )
    if ins.opcode.is_branch and not ins.opcode.is_switch:
        target = dex_pc + ins.branch_target
        if target not in boundaries:
            problems.append(
                f"{where}@{dex_pc}: branch target {target} not an instruction"
            )
    if ins.opcode.is_switch or ins.name == "fill-array-data":
        target = dex_pc + ins.branch_target
        try:
            payload = decode_payload(code.insns, target)
        except Exception as exc:
            problems.append(f"{where}@{dex_pc}: bad payload ({exc})")
            return
        if ins.opcode.is_switch:
            for rel in payload.targets:
                if dex_pc + rel not in boundaries:
                    problems.append(
                        f"{where}@{dex_pc}: switch target {dex_pc + rel} misaligned"
                    )
    _check_registers(where, code, dex_pc, ins, problems)


def _check_registers(
    where: str, code: CodeItem, dex_pc: int, ins: Instruction, problems: list[str]
) -> None:
    regs: list[int] = []
    fmt = ins.opcode.fmt
    if fmt in ("35c", "3rc"):
        regs = ins.invoke_registers
    elif fmt in ("12x", "11n", "22t", "22s", "22c"):
        count = {"12x": 2, "11n": 1, "22t": 2, "22s": 2, "22c": 2}[fmt]
        regs = list(ins.operands[:count])
    elif fmt in ("11x", "21t", "21s", "21h", "21c", "31i", "31t", "31c", "51l", "22x"):
        regs = [ins.operands[0]]
        if fmt == "22x":
            regs.append(ins.operands[1])
    elif fmt == "23x":
        regs = list(ins.operands)
    elif fmt == "22b":
        regs = list(ins.operands[:2])
    elif fmt == "32x":
        regs = list(ins.operands)
    for reg in regs:
        if reg >= code.registers_size:
            problems.append(
                f"{where}@{dex_pc}: {ins.name} uses v{reg} "
                f"but method has {code.registers_size} registers"
            )


def _safe_descriptor(dex: DexFile, type_idx: int) -> str:
    try:
        return dex.type_descriptor(type_idx)
    except Exception:
        return f"type@{type_idx}"
