"""Inline data payloads: switch tables and fill-array data.

Payloads live inside a method's code-unit array after the real
instructions.  ``packed-switch``/``sparse-switch``/``fill-array-data``
instructions carry a relative unit offset to their payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dex.opcodes import (
    FILL_ARRAY_DATA_PAYLOAD,
    PACKED_SWITCH_PAYLOAD,
    SPARSE_SWITCH_PAYLOAD,
)
from repro.errors import DexFormatError


def _s32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


@dataclass
class PackedSwitchPayload:
    """Contiguous-key switch table: ``first_key`` plus branch targets."""

    first_key: int
    targets: list[int] = field(default_factory=list)

    def unit_count(self) -> int:
        return 4 + 2 * len(self.targets)

    def encode(self) -> list[int]:
        units = [PACKED_SWITCH_PAYLOAD, len(self.targets)]
        key = self.first_key & 0xFFFFFFFF
        units += [key & 0xFFFF, key >> 16]
        for target in self.targets:
            value = target & 0xFFFFFFFF
            units += [value & 0xFFFF, value >> 16]
        return units

    @classmethod
    def decode(cls, units: list[int], pos: int) -> "PackedSwitchPayload":
        if units[pos] != PACKED_SWITCH_PAYLOAD:
            raise DexFormatError(f"not a packed-switch payload at {pos}")
        size = units[pos + 1]
        first_key = _s32(units[pos + 2] | (units[pos + 3] << 16))
        targets = []
        base = pos + 4
        for i in range(size):
            raw = units[base + 2 * i] | (units[base + 2 * i + 1] << 16)
            targets.append(_s32(raw))
        return cls(first_key, targets)

    def lookup(self, key: int) -> int | None:
        """Branch offset for ``key`` or None for fall-through."""
        index = key - self.first_key
        if 0 <= index < len(self.targets):
            return self.targets[index]
        return None


@dataclass
class SparseSwitchPayload:
    """Arbitrary-key switch table: sorted keys with parallel targets."""

    keys: list[int] = field(default_factory=list)
    targets: list[int] = field(default_factory=list)

    def unit_count(self) -> int:
        return 2 + 4 * len(self.keys)

    def encode(self) -> list[int]:
        if len(self.keys) != len(self.targets):
            raise DexFormatError("sparse switch keys/targets length mismatch")
        units = [SPARSE_SWITCH_PAYLOAD, len(self.keys)]
        for key in self.keys:
            value = key & 0xFFFFFFFF
            units += [value & 0xFFFF, value >> 16]
        for target in self.targets:
            value = target & 0xFFFFFFFF
            units += [value & 0xFFFF, value >> 16]
        return units

    @classmethod
    def decode(cls, units: list[int], pos: int) -> "SparseSwitchPayload":
        if units[pos] != SPARSE_SWITCH_PAYLOAD:
            raise DexFormatError(f"not a sparse-switch payload at {pos}")
        size = units[pos + 1]
        keys = []
        targets = []
        base = pos + 2
        for i in range(size):
            raw = units[base + 2 * i] | (units[base + 2 * i + 1] << 16)
            keys.append(_s32(raw))
        base += 2 * size
        for i in range(size):
            raw = units[base + 2 * i] | (units[base + 2 * i + 1] << 16)
            targets.append(_s32(raw))
        return cls(keys, targets)

    def lookup(self, key: int) -> int | None:
        """Branch offset for ``key`` or None for fall-through."""
        for k, target in zip(self.keys, self.targets):
            if k == key:
                return target
        return None


@dataclass
class FillArrayDataPayload:
    """Raw element data for ``fill-array-data``."""

    element_width: int
    data: bytes = b""

    @property
    def element_count(self) -> int:
        if self.element_width == 0:
            return 0
        return len(self.data) // self.element_width

    def unit_count(self) -> int:
        data_units = (len(self.data) + 1) // 2
        return 4 + data_units

    def encode(self) -> list[int]:
        count = self.element_count
        units = [
            FILL_ARRAY_DATA_PAYLOAD,
            self.element_width,
            count & 0xFFFF,
            (count >> 16) & 0xFFFF,
        ]
        padded = self.data + (b"\x00" if len(self.data) % 2 else b"")
        for i in range(0, len(padded), 2):
            units.append(padded[i] | (padded[i + 1] << 8))
        return units

    @classmethod
    def decode(cls, units: list[int], pos: int) -> "FillArrayDataPayload":
        if units[pos] != FILL_ARRAY_DATA_PAYLOAD:
            raise DexFormatError(f"not a fill-array-data payload at {pos}")
        width = units[pos + 1]
        count = units[pos + 2] | (units[pos + 3] << 16)
        byte_len = width * count
        raw = bytearray()
        base = pos + 4
        for i in range((byte_len + 1) // 2):
            unit = units[base + i]
            raw.append(unit & 0xFF)
            raw.append(unit >> 8)
        return cls(width, bytes(raw[:byte_len]))

    def elements(self, signed: bool = True) -> list[int]:
        """Decode the raw data into a list of integers."""
        out = []
        for i in range(self.element_count):
            chunk = self.data[i * self.element_width : (i + 1) * self.element_width]
            out.append(int.from_bytes(chunk, "little", signed=signed))
        return out


def decode_payload(units: list[int], pos: int):
    """Decode whichever payload type sits at ``pos``."""
    ident = units[pos]
    if ident == PACKED_SWITCH_PAYLOAD:
        return PackedSwitchPayload.decode(units, pos)
    if ident == SPARSE_SWITCH_PAYLOAD:
        return SparseSwitchPayload.decode(units, pos)
    if ident == FILL_ARRAY_DATA_PAYLOAD:
        return FillArrayDataPayload.decode(units, pos)
    raise DexFormatError(f"unknown payload ident {ident:#06x} at unit {pos}")


def payload_unit_count(units: list[int], pos: int) -> int:
    """Number of code units occupied by the payload at ``pos``."""
    ident = units[pos]
    if ident == PACKED_SWITCH_PAYLOAD:
        return 4 + 2 * units[pos + 1]
    if ident == SPARSE_SWITCH_PAYLOAD:
        return 2 + 4 * units[pos + 1]
    if ident == FILL_ARRAY_DATA_PAYLOAD:
        width = units[pos + 1]
        count = units[pos + 2] | (units[pos + 3] << 16)
        return 4 + (width * count + 1) // 2
    raise DexFormatError(f"unknown payload ident {ident:#06x} at unit {pos}")
