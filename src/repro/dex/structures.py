"""In-memory model of a DEX file.

A :class:`DexFile` holds the five constant pools (strings, types, protos,
fields, methods) plus class definitions.  Instructions inside code items
reference pools by index, exactly as in the binary format; the
``intern_*`` family adds pool entries on demand and the ``canonicalize``
pass sorts the pools into the order the binary format mandates, rewriting
every index reference (including those embedded in instructions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.dex.code_units import CodeUnits
from repro.dex.constants import NO_INDEX, AccessFlags, EncodedValueType, shorty_of
from repro.dex.instructions import Instruction, iter_instructions
from repro.dex.opcodes import IndexKind
from repro.errors import DexError


# ---------------------------------------------------------------------------
# Human-readable reference types
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class MethodRef:
    """Fully-qualified method reference (descriptor language)."""

    class_desc: str
    name: str
    param_descs: tuple[str, ...]
    return_desc: str

    # cached_property, not property: branch tracing and forced-path
    # matching read the signature once per conditional branch, which
    # made this f-string one of the hottest lines in force execution.
    @cached_property
    def signature(self) -> str:
        params = "".join(self.param_descs)
        return f"{self.class_desc}->{self.name}({params}){self.return_desc}"

    @property
    def shorty(self) -> str:
        return shorty_of(self.return_desc) + "".join(
            shorty_of(p) for p in self.param_descs
        )

    def __str__(self) -> str:
        return self.signature


@dataclass(frozen=True, order=True)
class FieldRef:
    """Fully-qualified field reference (descriptor language)."""

    class_desc: str
    name: str
    type_desc: str

    @cached_property
    def signature(self) -> str:
        return f"{self.class_desc}->{self.name}:{self.type_desc}"

    def __str__(self) -> str:
        return self.signature


# ---------------------------------------------------------------------------
# Pool entry structures (index based, like the binary format)
# ---------------------------------------------------------------------------


@dataclass
class DexProto:
    """Method prototype: return type and parameter types."""

    return_type_idx: int
    param_type_idxs: tuple[int, ...] = ()


@dataclass
class DexFieldId:
    class_idx: int
    type_idx: int
    name_idx: int


@dataclass
class DexMethodId:
    class_idx: int
    proto_idx: int
    name_idx: int


@dataclass
class EncodedValue:
    """A static-field initial value (subset of encoded_value)."""

    kind: EncodedValueType
    value: object = None

    @classmethod
    def of_int(cls, value: int) -> "EncodedValue":
        return cls(EncodedValueType.INT, value)

    @classmethod
    def of_string_idx(cls, idx: int) -> "EncodedValue":
        return cls(EncodedValueType.STRING, idx)

    @classmethod
    def null(cls) -> "EncodedValue":
        return cls(EncodedValueType.NULL, None)

    @classmethod
    def of_bool(cls, value: bool) -> "EncodedValue":
        return cls(EncodedValueType.BOOLEAN, bool(value))


@dataclass
class TryBlock:
    """One try region with its typed catch handlers.

    ``handlers`` pairs a type index with a handler address; ``catch_all``
    is the address of the ``catch-all`` handler, if any.
    """

    start_addr: int
    insn_count: int
    handlers: list[tuple[int, int]] = field(default_factory=list)
    catch_all: int | None = None

    @property
    def end_addr(self) -> int:
        return self.start_addr + self.insn_count

    def covers(self, dex_pc: int) -> bool:
        return self.start_addr <= dex_pc < self.end_addr


@dataclass
class CodeItem:
    """Executable body of a method: registers and the code-unit array.

    ``insns`` is always a generation-tracked
    :class:`~repro.dex.code_units.CodeUnits` array — plain lists are
    wrapped on assignment (including in ``__init__``), so the
    interpreter's predecode cache observes *every* way the live array
    can change: in-place patches bump the generation, and wholesale
    replacement swaps in a fresh array with a fresh cache.
    """

    registers_size: int
    ins_size: int
    outs_size: int
    insns: list[int] = field(default_factory=list)
    tries: list[TryBlock] = field(default_factory=list)

    def __setattr__(self, name: str, value) -> None:
        if name == "insns" and not isinstance(value, CodeUnits):
            value = CodeUnits(value)
        super().__setattr__(name, value)

    def instructions(self) -> list[tuple[int, Instruction]]:
        """Decode all (dex_pc, instruction) pairs, skipping payloads."""
        return iter_instructions(self.insns)

    def copy(self) -> "CodeItem":
        insns = self.insns
        return CodeItem(
            self.registers_size,
            self.ins_size,
            self.outs_size,
            # Copies share the decode store (content-validated on use),
            # so replay runtimes warm-start instead of re-decoding.
            insns.copy() if isinstance(insns, CodeUnits) else list(insns),
            [
                TryBlock(t.start_addr, t.insn_count, list(t.handlers), t.catch_all)
                for t in self.tries
            ],
        )


@dataclass
class EncodedField:
    field_idx: int
    access_flags: int = int(AccessFlags.PUBLIC)


@dataclass
class EncodedMethod:
    method_idx: int
    access_flags: int = int(AccessFlags.PUBLIC)
    code: CodeItem | None = None


@dataclass
class ClassDef:
    """One class definition with its members."""

    class_idx: int
    access_flags: int = int(AccessFlags.PUBLIC)
    superclass_idx: int = NO_INDEX
    interfaces: list[int] = field(default_factory=list)
    source_file_idx: int = NO_INDEX
    static_fields: list[EncodedField] = field(default_factory=list)
    instance_fields: list[EncodedField] = field(default_factory=list)
    direct_methods: list[EncodedMethod] = field(default_factory=list)
    virtual_methods: list[EncodedMethod] = field(default_factory=list)
    static_values: list[EncodedValue] = field(default_factory=list)

    def all_methods(self) -> list[EncodedMethod]:
        return list(self.direct_methods) + list(self.virtual_methods)

    def all_fields(self) -> list[EncodedField]:
        return list(self.static_fields) + list(self.instance_fields)


# ---------------------------------------------------------------------------
# The DexFile itself
# ---------------------------------------------------------------------------


class DexFile:
    """Mutable DEX model with pool interning helpers."""

    def __init__(self) -> None:
        self.strings: list[str] = []
        self.type_ids: list[int] = []  # -> string index
        self.protos: list[DexProto] = []
        self.field_ids: list[DexFieldId] = []
        self.method_ids: list[DexMethodId] = []
        self.class_defs: list[ClassDef] = []
        self._string_index: dict[str, int] = {}
        self._type_index: dict[int, int] = {}
        self._proto_index: dict[tuple[int, tuple[int, ...]], int] = {}
        self._field_index: dict[tuple[int, int, int], int] = {}
        self._method_index: dict[tuple[int, int, int], int] = {}
        # index -> resolved FieldRef/MethodRef, keyed ("f"/"m", idx);
        # dropped whenever canonicalize reorders the pools.
        self._ref_cache: dict[tuple[str, int], object] = {}

    # -- interning ---------------------------------------------------------

    def intern_string(self, value: str) -> int:
        idx = self._string_index.get(value)
        if idx is None:
            idx = len(self.strings)
            self.strings.append(value)
            self._string_index[value] = idx
        return idx

    def intern_type(self, descriptor: str) -> int:
        string_idx = self.intern_string(descriptor)
        idx = self._type_index.get(string_idx)
        if idx is None:
            idx = len(self.type_ids)
            self.type_ids.append(string_idx)
            self._type_index[string_idx] = idx
        return idx

    def intern_proto(self, return_desc: str, param_descs: tuple[str, ...]) -> int:
        ret_idx = self.intern_type(return_desc)
        param_idxs = tuple(self.intern_type(p) for p in param_descs)
        key = (ret_idx, param_idxs)
        idx = self._proto_index.get(key)
        if idx is None:
            idx = len(self.protos)
            self.protos.append(DexProto(ret_idx, param_idxs))
            self._proto_index[key] = idx
        return idx

    def intern_field(self, class_desc: str, name: str, type_desc: str) -> int:
        key = (
            self.intern_type(class_desc),
            self.intern_type(type_desc),
            self.intern_string(name),
        )
        idx = self._field_index.get(key)
        if idx is None:
            idx = len(self.field_ids)
            self.field_ids.append(DexFieldId(*key))
            self._field_index[key] = idx
        return idx

    def intern_method(
        self,
        class_desc: str,
        name: str,
        return_desc: str,
        param_descs: tuple[str, ...] = (),
    ) -> int:
        key = (
            self.intern_type(class_desc),
            self.intern_proto(return_desc, param_descs),
            self.intern_string(name),
        )
        idx = self._method_index.get(key)
        if idx is None:
            idx = len(self.method_ids)
            self.method_ids.append(DexMethodId(*key))
            self._method_index[key] = idx
        return idx

    def intern_method_ref(self, ref: MethodRef) -> int:
        return self.intern_method(
            ref.class_desc, ref.name, ref.return_desc, ref.param_descs
        )

    def intern_field_ref(self, ref: FieldRef) -> int:
        return self.intern_field(ref.class_desc, ref.name, ref.type_desc)

    # -- readable accessors -------------------------------------------------

    def string(self, idx: int) -> str:
        return self.strings[idx]

    def type_descriptor(self, idx: int) -> str:
        return self.strings[self.type_ids[idx]]

    def proto(self, idx: int) -> DexProto:
        return self.protos[idx]

    def proto_descs(self, idx: int) -> tuple[str, tuple[str, ...]]:
        proto = self.protos[idx]
        return (
            self.type_descriptor(proto.return_type_idx),
            tuple(self.type_descriptor(p) for p in proto.param_type_idxs),
        )

    # field_ref / method_ref memoise per index: the interpreter resolves
    # a ref on every field access and invoke, and interning only appends
    # (existing indices keep their meaning).  The memo is dropped by
    # ``_rebuild_indexes`` whenever ``canonicalize`` reorders the pools.

    def field_ref(self, idx: int) -> FieldRef:
        ref = self._ref_cache.get(("f", idx))
        if ref is not None:
            return ref
        fid = self.field_ids[idx]
        ref = FieldRef(
            self.type_descriptor(fid.class_idx),
            self.strings[fid.name_idx],
            self.type_descriptor(fid.type_idx),
        )
        self._ref_cache[("f", idx)] = ref
        return ref

    def method_ref(self, idx: int) -> MethodRef:
        ref = self._ref_cache.get(("m", idx))
        if ref is not None:
            return ref
        ref = self._build_method_ref(idx)
        self._ref_cache[("m", idx)] = ref
        return ref

    def _build_method_ref(self, idx: int) -> MethodRef:
        mid = self.method_ids[idx]
        return_desc, param_descs = self.proto_descs(mid.proto_idx)
        return MethodRef(
            self.type_descriptor(mid.class_idx),
            self.strings[mid.name_idx],
            param_descs,
            return_desc,
        )

    def class_descriptor(self, class_def: ClassDef) -> str:
        return self.type_descriptor(class_def.class_idx)

    def find_class(self, descriptor: str) -> ClassDef | None:
        for class_def in self.class_defs:
            if self.class_descriptor(class_def) == descriptor:
                return class_def
        return None

    def class_descriptors(self) -> list[str]:
        return [self.class_descriptor(c) for c in self.class_defs]

    def method_name(self, encoded: EncodedMethod) -> str:
        return self.method_ref(encoded.method_idx).name

    def iter_methods(self):
        """Yield ``(class_def, encoded_method, method_ref)`` triples."""
        for class_def in self.class_defs:
            for method in class_def.all_methods():
                yield class_def, method, self.method_ref(method.method_idx)

    def total_instruction_count(self) -> int:
        """Number of decoded instructions across all code items."""
        total = 0
        for _cls, method, _ref in self.iter_methods():
            if method.code is not None:
                total += len(method.code.instructions())
        return total

    # -- canonicalization ----------------------------------------------------

    def canonicalize(self) -> None:
        """Sort pools into binary-format order and remap all references.

        The DEX format requires: string_ids sorted by content, type_ids by
        string index, proto/field/method ids by their component indices and
        class_defs with superclasses before subclasses.
        """
        string_perm = _permutation(self.strings, key=lambda s: s)
        self.strings = _apply(self.strings, string_perm)
        self.type_ids = [string_perm[s] for s in self.type_ids]

        type_perm = _permutation(self.type_ids, key=lambda s: s)
        self.type_ids = _apply(self.type_ids, type_perm)

        for proto in self.protos:
            proto.return_type_idx = type_perm[proto.return_type_idx]
            proto.param_type_idxs = tuple(
                type_perm[p] for p in proto.param_type_idxs
            )
        proto_perm = _permutation(
            self.protos, key=lambda p: (p.return_type_idx, p.param_type_idxs)
        )
        self.protos = _apply(self.protos, proto_perm)

        for fid in self.field_ids:
            fid.class_idx = type_perm[fid.class_idx]
            fid.type_idx = type_perm[fid.type_idx]
            fid.name_idx = string_perm[fid.name_idx]
        field_perm = _permutation(
            self.field_ids, key=lambda f: (f.class_idx, f.name_idx, f.type_idx)
        )
        self.field_ids = _apply(self.field_ids, field_perm)

        for mid in self.method_ids:
            mid.class_idx = type_perm[mid.class_idx]
            mid.proto_idx = proto_perm[mid.proto_idx]
            mid.name_idx = string_perm[mid.name_idx]
        method_perm = _permutation(
            self.method_ids, key=lambda m: (m.class_idx, m.name_idx, m.proto_idx)
        )
        self.method_ids = _apply(self.method_ids, method_perm)

        for class_def in self.class_defs:
            class_def.class_idx = type_perm[class_def.class_idx]
            if class_def.superclass_idx != NO_INDEX:
                class_def.superclass_idx = type_perm[class_def.superclass_idx]
            class_def.interfaces = [type_perm[i] for i in class_def.interfaces]
            if class_def.source_file_idx != NO_INDEX:
                class_def.source_file_idx = string_perm[class_def.source_file_idx]
            for encoded in class_def.all_fields():
                encoded.field_idx = field_perm[encoded.field_idx]
            for encoded in class_def.all_methods():
                encoded.method_idx = method_perm[encoded.method_idx]
            # static_values parallels static_fields: permute them together.
            paired = sorted(
                zip(
                    class_def.static_fields,
                    class_def.static_values
                    + [EncodedValue.null()]
                    * (len(class_def.static_fields) - len(class_def.static_values)),
                ),
                key=lambda pair: pair[0].field_idx,
            )
            class_def.static_fields = [f for f, _ in paired]
            class_def.static_values = [v for _, v in paired]
            class_def.instance_fields.sort(key=lambda f: f.field_idx)
            class_def.direct_methods.sort(key=lambda m: m.method_idx)
            class_def.virtual_methods.sort(key=lambda m: m.method_idx)
            for value in class_def.static_values:
                if value.kind is EncodedValueType.STRING:
                    value.value = string_perm[value.value]
                elif value.kind is EncodedValueType.TYPE:
                    value.value = type_perm[value.value]
        self._sort_class_defs()

        remap = {
            IndexKind.STRING: string_perm,
            IndexKind.TYPE: type_perm,
            IndexKind.FIELD: field_perm,
            IndexKind.METHOD: method_perm,
        }
        for _cls, method, _ref in self.iter_methods():
            if method.code is not None:
                _remap_code(method.code, remap)
        self._rebuild_indexes()

    def _sort_class_defs(self) -> None:
        """Topologically order class_defs so superclasses come first."""
        by_type = {c.class_idx: c for c in self.class_defs}
        ordered: list[ClassDef] = []
        visiting: set[int] = set()
        done: set[int] = set()

        def visit(class_def: ClassDef) -> None:
            if class_def.class_idx in done:
                return
            if class_def.class_idx in visiting:
                raise DexError(
                    f"superclass cycle involving "
                    f"{self.class_descriptor(class_def)}"
                )
            visiting.add(class_def.class_idx)
            parents = list(class_def.interfaces)
            if class_def.superclass_idx != NO_INDEX:
                parents.append(class_def.superclass_idx)
            for parent_idx in parents:
                parent = by_type.get(parent_idx)
                if parent is not None:
                    visit(parent)
            visiting.discard(class_def.class_idx)
            done.add(class_def.class_idx)
            ordered.append(class_def)

        for class_def in sorted(self.class_defs, key=lambda c: c.class_idx):
            visit(class_def)
        self.class_defs = ordered

    def _rebuild_indexes(self) -> None:
        self._ref_cache.clear()  # pool order changed: indices mean new refs
        self._string_index = {s: i for i, s in enumerate(self.strings)}
        self._type_index = {s: i for i, s in enumerate(self.type_ids)}
        self._proto_index = {
            (p.return_type_idx, p.param_type_idxs): i
            for i, p in enumerate(self.protos)
        }
        self._field_index = {
            (f.class_idx, f.type_idx, f.name_idx): i
            for i, f in enumerate(self.field_ids)
        }
        self._method_index = {
            (m.class_idx, m.proto_idx, m.name_idx): i
            for i, m in enumerate(self.method_ids)
        }


def _permutation(items: list, key) -> list[int]:
    """Return ``perm`` such that ``perm[old_index] == new_index``."""
    order = sorted(range(len(items)), key=lambda i: key(items[i]))
    perm = [0] * len(items)
    for new_index, old_index in enumerate(order):
        perm[old_index] = new_index
    return perm


def _apply(items: list, perm: list[int]) -> list:
    out = [None] * len(items)
    for old_index, item in enumerate(items):
        out[perm[old_index]] = item
    return out


def _remap_code(code: CodeItem, remap: dict[IndexKind, list[int]]) -> None:
    """Rewrite pool indices embedded in a code item's instructions."""
    for dex_pc, ins in code.instructions():
        kind = ins.opcode.index_kind
        if kind is IndexKind.NONE:
            continue
        new_index = remap[kind][ins.pool_index]
        if new_index == ins.pool_index:
            continue
        encoded = ins.with_pool_index(new_index).encode()
        code.insns[dex_pc : dex_pc + len(encoded)] = encoded
    for try_block in code.tries:
        try_block.handlers = [
            (remap[IndexKind.TYPE][type_idx], addr)
            for type_idx, addr in try_block.handlers
        ]
