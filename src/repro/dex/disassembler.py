"""Disassembler: DexFile -> smali-like text.

The output round-trips through :mod:`repro.dex.assembler` (label names are
regenerated).  Used for debugging, the RQ1 manual-comparison experiment
and golden tests.
"""

from __future__ import annotations

from repro.dex.constants import NO_INDEX, AccessFlags
from repro.dex.instructions import Instruction
from repro.dex.opcodes import IndexKind
from repro.dex.payloads import (
    FillArrayDataPayload,
    PackedSwitchPayload,
    SparseSwitchPayload,
    decode_payload,
)
from repro.dex.structures import ClassDef, CodeItem, DexFile, EncodedMethod


def disassemble(dex: DexFile) -> str:
    """Render the whole DEX as smali-like text."""
    return "\n".join(disassemble_class(dex, class_def) for class_def in dex.class_defs)


def disassemble_class(dex: DexFile, class_def: ClassDef) -> str:
    lines: list[str] = []
    descriptor = dex.class_descriptor(class_def)
    lines.append(f".class {_access_words(class_def.access_flags)}{descriptor}")
    if class_def.superclass_idx != NO_INDEX:
        lines.append(f".super {dex.type_descriptor(class_def.superclass_idx)}")
    for interface_idx in class_def.interfaces:
        lines.append(f".implements {dex.type_descriptor(interface_idx)}")
    if class_def.source_file_idx != NO_INDEX:
        lines.append(f'.source "{dex.string(class_def.source_file_idx)}"')
    lines.append("")
    for encoded_field in class_def.all_fields():
        ref = dex.field_ref(encoded_field.field_idx)
        lines.append(
            f".field {_access_words(encoded_field.access_flags)}"
            f"{ref.name}:{ref.type_desc}"
        )
    if class_def.all_fields():
        lines.append("")
    for method in class_def.all_methods():
        lines.extend(_disassemble_method(dex, method))
        lines.append("")
    return "\n".join(lines)


def _disassemble_method(dex: DexFile, method: EncodedMethod) -> list[str]:
    ref = dex.method_ref(method.method_idx)
    params = "".join(ref.param_descs)
    header = (
        f".method {_access_words(method.access_flags)}"
        f"{ref.name}({params}){ref.return_desc}"
    )
    lines = [header]
    if method.code is not None:
        lines.extend(f"    {line}" for line in disassemble_code(dex, method.code))
    lines.append(".end method")
    return lines


def disassemble_code(dex: DexFile, code: CodeItem) -> list[str]:
    """Render one code item as instruction lines with labels."""
    lines = [f".registers {code.registers_size}"]
    instructions = code.instructions()
    labels = _collect_labels(code, instructions)
    payload_at: dict[int, object] = {}
    for dex_pc, ins in instructions:
        if ins.opcode.fmt == "31t":
            target = dex_pc + ins.branch_target
            payload_at[target] = decode_payload(code.insns, target)

    try_starts: dict[int, list[str]] = {}
    for try_block in code.tries:
        for type_idx, addr in try_block.handlers:
            try_starts.setdefault(try_block.start_addr, []).append(
                f".catch {dex.type_descriptor(type_idx)} "
                f"{{:L{try_block.start_addr} .. :L{try_block.end_addr}}} :L{addr}"
            )
        if try_block.catch_all is not None:
            try_starts.setdefault(try_block.start_addr, []).append(
                f".catchall {{:L{try_block.start_addr} .. "
                f":L{try_block.end_addr}}} :L{try_block.catch_all}"
            )
        labels.add(try_block.start_addr)
        labels.add(try_block.end_addr)

    for dex_pc, ins in instructions:
        if dex_pc in labels:
            lines.append(f":L{dex_pc}")
        for catch_line in try_starts.get(dex_pc, ()):
            lines.append(catch_line)
        lines.append(_render_instruction(dex, ins, dex_pc))
    end_pc = len(code.insns)
    if end_pc in labels and end_pc not in [pc for pc, _ in instructions]:
        lines.append(f":L{end_pc}")
    for target, payload in sorted(payload_at.items()):
        lines.append(f":P{target}")
        lines.extend(_render_payload(payload))
    return lines


def _collect_labels(code: CodeItem, instructions) -> set[int]:
    labels: set[int] = set()
    for dex_pc, ins in instructions:
        if ins.opcode.is_branch:
            labels.add(dex_pc + ins.branch_target)
        elif ins.opcode.is_switch:
            payload = decode_payload(code.insns, dex_pc + ins.branch_target)
            for target in payload.targets:
                labels.add(dex_pc + target)
    return labels


def _render_instruction(dex: DexFile, ins: Instruction, dex_pc: int) -> str:
    name = ins.name
    kind = ins.opcode.index_kind
    if ins.opcode.fmt in ("35c", "3rc"):
        regs = ins.invoke_registers
        reg_text = "{" + ", ".join(f"v{r}" for r in regs) + "}"
        if kind is IndexKind.METHOD:
            target = dex.method_ref(ins.pool_index).signature
        else:
            target = dex.type_descriptor(ins.pool_index)
        return f"{name} {reg_text}, {target}"
    if ins.opcode.is_switch or name == "fill-array-data":
        reg = ins.operands[0]
        return f"{name} v{reg}, :P{dex_pc + ins.branch_target}"
    if ins.opcode.is_branch:
        target = dex_pc + ins.branch_target
        regs = ins.operands[:-1] if not name.startswith("goto") else ()
        reg_text = "".join(f"v{r}, " for r in regs)
        base = "goto" if name.startswith("goto") else name
        return f"{base} {reg_text}:L{target}"
    parts: list[str] = []
    operands = list(ins.operands)
    if kind is not IndexKind.NONE:
        index = operands.pop()
        parts.extend(f"v{r}" for r in operands)
        if kind is IndexKind.STRING:
            parts.append(f'"{_escape(dex.string(index))}"')
        elif kind is IndexKind.TYPE:
            parts.append(dex.type_descriptor(index))
        elif kind is IndexKind.FIELD:
            parts.append(dex.field_ref(index).signature)
        else:
            parts.append(dex.method_ref(index).signature)
    elif name.startswith("const") or "/lit" in name or ins.opcode.fmt in ("11n", "22s", "22b"):
        literal = operands.pop()
        parts.extend(f"v{r}" for r in operands)
        parts.append(str(literal))
    else:
        parts.extend(f"v{r}" for r in operands)
    if parts:
        return f"{name} {', '.join(parts)}"
    return name


def _render_payload(payload) -> list[str]:
    if isinstance(payload, PackedSwitchPayload):
        lines = [f".packed-switch {payload.first_key}"]
        lines.extend(f"    :case_offset_{t}" for t in payload.targets)
        lines.append(".end packed-switch")
        return lines
    if isinstance(payload, SparseSwitchPayload):
        lines = [".sparse-switch"]
        lines.extend(
            f"    {k} -> :case_offset_{t}"
            for k, t in zip(payload.keys, payload.targets)
        )
        lines.append(".end sparse-switch")
        return lines
    assert isinstance(payload, FillArrayDataPayload)
    lines = [f".array-data {payload.element_width}"]
    lines.extend(f"    {v}" for v in payload.elements())
    lines.append(".end array-data")
    return lines


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


_ACCESS_ORDER = [
    (AccessFlags.PUBLIC, "public"),
    (AccessFlags.PRIVATE, "private"),
    (AccessFlags.PROTECTED, "protected"),
    (AccessFlags.STATIC, "static"),
    (AccessFlags.FINAL, "final"),
    (AccessFlags.ABSTRACT, "abstract"),
    (AccessFlags.NATIVE, "native"),
    (AccessFlags.SYNTHETIC, "synthetic"),
    (AccessFlags.CONSTRUCTOR, "constructor"),
]


def _access_words(access: int) -> str:
    words = [word for flag, word in _ACCESS_ORDER if access & flag]
    return " ".join(words) + (" " if words else "")
