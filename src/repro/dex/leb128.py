"""LEB128 variable-length integer codecs used throughout the DEX format.

The DEX container encodes most counts, offsets and index deltas as
unsigned LEB128 (``uleb128``), signed LEB128 (``sleb128``) or the odd
``uleb128p1`` (value plus one, so that -1 encodes as zero) — see the
Dalvik Executable format specification.
"""

from __future__ import annotations

from repro.errors import DexFormatError

_MAX_LEB_BYTES = 5  # DEX caps LEB128 values at 32 bits -> at most 5 bytes


def encode_uleb128(value: int) -> bytes:
    """Encode a non-negative integer as unsigned LEB128."""
    if value < 0:
        raise DexFormatError(f"uleb128 cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uleb128(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode unsigned LEB128 at ``offset``; return ``(value, new_offset)``."""
    result = 0
    shift = 0
    for i in range(_MAX_LEB_BYTES):
        if offset + i >= len(data):
            raise DexFormatError("truncated uleb128")
        byte = data[offset + i]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset + i + 1
        shift += 7
    raise DexFormatError("uleb128 longer than 5 bytes")


def encode_uleb128p1(value: int) -> bytes:
    """Encode ``value`` (>= -1) as uleb128 of ``value + 1``."""
    return encode_uleb128(value + 1)


def decode_uleb128p1(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode uleb128p1 at ``offset``; return ``(value, new_offset)``."""
    raw, new_offset = decode_uleb128(data, offset)
    return raw - 1, new_offset


def encode_sleb128(value: int) -> bytes:
    """Encode a signed integer as signed LEB128."""
    out = bytearray()
    more = True
    while more:
        byte = value & 0x7F
        value >>= 7
        sign_bit = bool(byte & 0x40)
        if (value == 0 and not sign_bit) or (value == -1 and sign_bit):
            more = False
        else:
            byte |= 0x80
        out.append(byte)
    return bytes(out)


def decode_sleb128(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode signed LEB128 at ``offset``; return ``(value, new_offset)``."""
    result = 0
    shift = 0
    for i in range(_MAX_LEB_BYTES):
        if offset + i >= len(data):
            raise DexFormatError("truncated sleb128")
        byte = data[offset + i]
        result |= (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            if byte & 0x40:  # sign extend
                result -= 1 << shift
            return result, offset + i + 1
    raise DexFormatError("sleb128 longer than 5 bytes")
