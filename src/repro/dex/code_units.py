"""Generation-tracked code-unit arrays.

:class:`CodeUnits` is the live, mutable 16-bit code-unit array behind
every :class:`~repro.dex.structures.CodeItem`.  It behaves exactly like
the plain ``list[int]`` it replaces — natives index it, slice it and
patch it in place — but every mutation bumps a monotonically increasing
``generation`` counter.

The interpreter uses the counter to keep a per-array predecode cache
(``pc -> decoded instruction``) that is *provably* coherent with live
fetch: a cached entry is only trusted while its recorded generation
matches the array's, and on mismatch it is revalidated against the raw
code units it was decoded from, so exactly the entries whose bytes a
self-modifying native actually rewrote get re-decoded.  Reads are
untouched list reads — the tracking costs nothing on the fetch path.
"""

from __future__ import annotations


class CodeUnits(list):
    """A ``list[int]`` of code units that counts its mutations.

    ``generation`` starts at 0 and increases on every mutating
    operation.  ``predecode`` is scratch space owned by the interpreter
    (pc -> cached decode entry); it lives here so the cache dies with
    the array it describes and can never outlive a wholesale
    replacement of the code units.

    ``shared`` is the cross-copy decode store: every copy of a code
    item (each replay runtime links its own live copy of every method)
    shares one ``pc -> decoded`` dict, so the first runtime to decode
    an instruction saves every later copy the work.  Adoption is
    content-validated — an entry is only reused after comparing the
    adopter's *own live bytes* against the raw units the entry was
    decoded from — so sharing can never leak a stale decode into a
    self-modified copy.  Writes race benignly (``setdefault``; all
    writers produce equivalent entries for equal bytes).
    """

    __slots__ = ("generation", "predecode", "shared")

    def __init__(self, iterable=(), shared: dict | None = None) -> None:
        super().__init__(iterable)
        self.generation = 0
        self.predecode: dict = {}
        self.shared: dict = {} if shared is None else shared

    # -- mutation tracking -------------------------------------------------
    # Every mutating list method bumps the generation.  Slice assignment
    # (the patch_code idiom) arrives through __setitem__.

    def __setitem__(self, index, value) -> None:
        list.__setitem__(self, index, value)
        self.generation += 1

    def __delitem__(self, index) -> None:
        list.__delitem__(self, index)
        self.generation += 1

    def __iadd__(self, other):
        result = list.__iadd__(self, other)
        self.generation += 1
        return result

    def __imul__(self, factor):
        result = list.__imul__(self, factor)
        self.generation += 1
        return result

    def append(self, value) -> None:
        list.append(self, value)
        self.generation += 1

    def extend(self, iterable) -> None:
        list.extend(self, iterable)
        self.generation += 1

    def insert(self, index, value) -> None:
        list.insert(self, index, value)
        self.generation += 1

    def pop(self, index=-1):
        value = list.pop(self, index)
        self.generation += 1
        return value

    def remove(self, value) -> None:
        list.remove(self, value)
        self.generation += 1

    def clear(self) -> None:
        list.clear(self)
        self.generation += 1

    def sort(self, **kwargs) -> None:
        list.sort(self, **kwargs)
        self.generation += 1

    def reverse(self) -> None:
        list.reverse(self)
        self.generation += 1

    # -- copying / pickling ------------------------------------------------

    def __reduce__(self):
        # Pickle as a fresh array (generation 0, empty caches): cached
        # decode entries hold non-picklable bound handlers, and a copy
        # in another process starts cold anyway.
        return (CodeUnits, (list(self),))

    def copy(self) -> "CodeUnits":
        """Same content, fresh generation — and the same shared decode
        store, so the copy warm-starts on untouched instructions."""
        return CodeUnits(self, shared=self.shared)
