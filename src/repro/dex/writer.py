"""Binary DEX writer.

Serialises a :class:`~repro.dex.structures.DexFile` into the binary DEX
container: 112-byte header, sorted index pools, and a data section holding
type lists, code items, string data, class data, encoded arrays and the
map list.  Checksum and signature are computed last, exactly like ``dx``.
"""

from __future__ import annotations

import struct

from repro.dex import checksums
from repro.dex.constants import (
    DEX_MAGIC,
    ENDIAN_CONSTANT,
    HEADER_SIZE,
    EncodedValueType,
    MapItemType,
)
from repro.dex.leb128 import encode_sleb128, encode_uleb128
from repro.dex.mutf8 import encode_mutf8
from repro.dex.structures import ClassDef, CodeItem, DexFile, EncodedValue
from repro.errors import DexEncodeError


def write_dex(dex: DexFile, canonicalize: bool = True) -> bytes:
    """Serialise ``dex`` to binary.  Canonicalizes pools by default."""
    # Shorty strings live in the string pool; intern them before layout so
    # offsets computed in the writer stay valid.
    from repro.dex.constants import shorty_of

    for i in range(len(dex.protos)):
        return_desc, param_descs = dex.proto_descs(i)
        shorty = shorty_of(return_desc) + "".join(shorty_of(p) for p in param_descs)
        dex.intern_string(shorty)
    if canonicalize:
        dex.canonicalize()
    return _Writer(dex).build()


class _Writer:
    def __init__(self, dex: DexFile) -> None:
        self.dex = dex
        self.data = bytearray()
        self.data_off = 0  # absolute file offset where data section starts
        self.map_entries: list[tuple[int, int, int]] = []  # (type, count, offset)

    # -- data section helpers ------------------------------------------------

    def _align(self, boundary: int) -> None:
        while (self.data_off + len(self.data)) % boundary:
            self.data.append(0)

    def _here(self) -> int:
        return self.data_off + len(self.data)

    # -- top level -------------------------------------------------------------

    def build(self) -> bytes:
        dex = self.dex
        counts = (
            len(dex.strings),
            len(dex.type_ids),
            len(dex.protos),
            len(dex.field_ids),
            len(dex.method_ids),
            len(dex.class_defs),
        )
        n_str, n_type, n_proto, n_field, n_method, n_class = counts
        if n_type > 0xFFFF or n_field > 0xFFFF or n_method > 0xFFFF or n_proto > 0xFFFF:
            raise DexEncodeError("pool too large for 16-bit instruction indices")

        string_ids_off = HEADER_SIZE
        type_ids_off = string_ids_off + 4 * n_str
        proto_ids_off = type_ids_off + 4 * n_type
        field_ids_off = proto_ids_off + 12 * n_proto
        method_ids_off = field_ids_off + 8 * n_field
        class_defs_off = method_ids_off + 8 * n_method
        self.data_off = class_defs_off + 32 * n_class

        type_list_offs = self._write_type_lists()
        code_offs = self._write_code_items()
        string_data_offs = self._write_string_data()
        class_data_offs = self._write_class_data(code_offs)
        static_value_offs = self._write_static_values()
        map_off = self._write_map_list(counts, string_ids_off)

        file_size = self.data_off + len(self.data)
        header = bytearray(HEADER_SIZE)
        header[0:8] = DEX_MAGIC
        struct.pack_into(
            "<IIIIII",
            header,
            32,
            file_size,
            HEADER_SIZE,
            ENDIAN_CONSTANT,
            0,  # link_size
            0,  # link_off
            map_off,
        )
        struct.pack_into(
            "<IIIIIIIIIIIIII",
            header,
            56,
            n_str,
            string_ids_off if n_str else 0,
            n_type,
            type_ids_off if n_type else 0,
            n_proto,
            proto_ids_off if n_proto else 0,
            n_field,
            field_ids_off if n_field else 0,
            n_method,
            method_ids_off if n_method else 0,
            n_class,
            class_defs_off if n_class else 0,
            len(self.data),
            self.data_off,
        )

        body = bytearray()
        body += header
        for off in string_data_offs:
            body += struct.pack("<I", off)
        for string_idx in dex.type_ids:
            body += struct.pack("<I", string_idx)
        for i, proto in enumerate(dex.protos):
            shorty = self._proto_shorty(i)
            body += struct.pack(
                "<III",
                dex.intern_string(shorty),
                proto.return_type_idx,
                type_list_offs.get(proto.param_type_idxs, 0),
            )
        for fid in dex.field_ids:
            body += struct.pack("<HHI", fid.class_idx, fid.type_idx, fid.name_idx)
        for mid in dex.method_ids:
            body += struct.pack("<HHI", mid.class_idx, mid.proto_idx, mid.name_idx)
        for i, class_def in enumerate(dex.class_defs):
            body += struct.pack(
                "<IIIIIIII",
                class_def.class_idx,
                class_def.access_flags,
                class_def.superclass_idx,
                type_list_offs.get(tuple(class_def.interfaces), 0),
                class_def.source_file_idx,
                0,  # annotations_off
                class_data_offs[i],
                static_value_offs[i],
            )
        body += self.data

        result = bytearray(body)
        checksums.patch_header_digests(result)
        return bytes(result)

    def _proto_shorty(self, proto_idx: int) -> str:
        return_desc, param_descs = self.dex.proto_descs(proto_idx)
        from repro.dex.constants import shorty_of

        return shorty_of(return_desc) + "".join(shorty_of(p) for p in param_descs)

    # -- sections ---------------------------------------------------------------

    def _write_type_lists(self) -> dict[tuple[int, ...], int]:
        """Write deduplicated type lists; return tuple -> absolute offset."""
        wanted: set[tuple[int, ...]] = set()
        for proto in self.dex.protos:
            if proto.param_type_idxs:
                wanted.add(tuple(proto.param_type_idxs))
        for class_def in self.dex.class_defs:
            if class_def.interfaces:
                wanted.add(tuple(class_def.interfaces))
        offs: dict[tuple[int, ...], int] = {}
        for type_list in sorted(wanted):
            self._align(4)
            offs[type_list] = self._here()
            self.data += struct.pack("<I", len(type_list))
            for type_idx in type_list:
                self.data += struct.pack("<H", type_idx)
        if wanted:
            self.map_entries.append(
                (MapItemType.TYPE_LIST, len(wanted), min(offs.values()))
            )
        return offs

    def _write_code_items(self) -> dict[int, int]:
        """Write code items; return id(CodeItem) -> absolute offset."""
        offs: dict[int, int] = {}
        count = 0
        first = None
        for _cls, method, _ref in self.dex.iter_methods():
            code = method.code
            if code is None or id(code) in offs:
                continue
            self._align(4)
            offset = self._here()
            offs[id(code)] = offset
            if first is None:
                first = offset
            self.data += self._encode_code_item(code)
            count += 1
        if count:
            self.map_entries.append((MapItemType.CODE_ITEM, count, first))
        return offs

    def _encode_code_item(self, code: CodeItem) -> bytes:
        out = bytearray()
        out += struct.pack(
            "<HHHHII",
            code.registers_size,
            code.ins_size,
            code.outs_size,
            len(code.tries),
            0,  # debug_info_off
            len(code.insns),
        )
        for unit in code.insns:
            out += struct.pack("<H", unit & 0xFFFF)
        if code.tries:
            if len(code.insns) % 2:
                out += b"\x00\x00"  # padding to 4-align try_items
            handler_blobs: list[bytes] = []
            handler_offsets: list[int] = []
            running = 0
            for try_block in code.tries:
                blob = bytearray()
                size = len(try_block.handlers)
                if try_block.catch_all is not None:
                    blob += encode_sleb128(-size)
                else:
                    blob += encode_sleb128(size)
                for type_idx, addr in try_block.handlers:
                    blob += encode_uleb128(type_idx)
                    blob += encode_uleb128(addr)
                if try_block.catch_all is not None:
                    blob += encode_uleb128(try_block.catch_all)
                handler_blobs.append(bytes(blob))
                handler_offsets.append(running)
                running += len(blob)
            list_header = encode_uleb128(len(code.tries))
            base = len(list_header)
            for try_block, rel in zip(code.tries, handler_offsets):
                out += struct.pack(
                    "<IHH",
                    try_block.start_addr,
                    try_block.insn_count,
                    base + rel,
                )
            out += list_header
            for blob in handler_blobs:
                out += blob
        return bytes(out)

    def _write_string_data(self) -> list[int]:
        offs = []
        first = None
        for value in self.dex.strings:
            offset = self._here()
            if first is None:
                first = offset
            offs.append(offset)
            self.data += encode_uleb128(_utf16_length(value))
            self.data += encode_mutf8(value)
            self.data.append(0)
        if offs:
            self.map_entries.append(
                (MapItemType.STRING_DATA_ITEM, len(offs), first)
            )
        return offs

    def _write_class_data(self, code_offs: dict[int, int]) -> list[int]:
        offs = []
        count = 0
        first = None
        for class_def in self.dex.class_defs:
            if not (class_def.all_fields() or class_def.all_methods()):
                offs.append(0)
                continue
            offset = self._here()
            if first is None:
                first = offset
            offs.append(offset)
            self.data += self._encode_class_data(class_def, code_offs)
            count += 1
        if count:
            self.map_entries.append((MapItemType.CLASS_DATA_ITEM, count, first))
        return offs

    def _encode_class_data(
        self, class_def: ClassDef, code_offs: dict[int, int]
    ) -> bytes:
        out = bytearray()
        out += encode_uleb128(len(class_def.static_fields))
        out += encode_uleb128(len(class_def.instance_fields))
        out += encode_uleb128(len(class_def.direct_methods))
        out += encode_uleb128(len(class_def.virtual_methods))
        for fields in (class_def.static_fields, class_def.instance_fields):
            prev = 0
            for encoded in fields:
                out += encode_uleb128(encoded.field_idx - prev)
                out += encode_uleb128(encoded.access_flags)
                prev = encoded.field_idx
        for methods in (class_def.direct_methods, class_def.virtual_methods):
            prev = 0
            for encoded in methods:
                out += encode_uleb128(encoded.method_idx - prev)
                out += encode_uleb128(encoded.access_flags)
                code_off = 0
                if encoded.code is not None:
                    code_off = code_offs[id(encoded.code)]
                out += encode_uleb128(code_off)
                prev = encoded.method_idx
        return bytes(out)

    def _write_static_values(self) -> list[int]:
        offs = []
        count = 0
        first = None
        for class_def in self.dex.class_defs:
            if not class_def.static_values:
                offs.append(0)
                continue
            offset = self._here()
            if first is None:
                first = offset
            offs.append(offset)
            self.data += encode_uleb128(len(class_def.static_values))
            for value in class_def.static_values:
                self.data += encode_encoded_value(value)
            count += 1
        if count:
            self.map_entries.append(
                (MapItemType.ENCODED_ARRAY_ITEM, count, first)
            )
        return offs

    def _write_map_list(
        self, counts: tuple[int, ...], string_ids_off: int
    ) -> int:
        n_str, n_type, n_proto, n_field, n_method, n_class = counts
        self._align(4)
        map_off = self._here()
        entries = [(MapItemType.HEADER_ITEM, 1, 0)]
        offset = string_ids_off
        for map_type, count, width in (
            (MapItemType.STRING_ID_ITEM, n_str, 4),
            (MapItemType.TYPE_ID_ITEM, n_type, 4),
            (MapItemType.PROTO_ID_ITEM, n_proto, 12),
            (MapItemType.FIELD_ID_ITEM, n_field, 8),
            (MapItemType.METHOD_ID_ITEM, n_method, 8),
            (MapItemType.CLASS_DEF_ITEM, n_class, 32),
        ):
            if count:
                entries.append((map_type, count, offset))
            offset += count * width
        entries += self.map_entries
        entries.append((MapItemType.MAP_LIST, 1, map_off))
        entries.sort(key=lambda e: e[2])
        self.data += struct.pack("<I", len(entries))
        for map_type, count, item_off in entries:
            self.data += struct.pack("<HHII", int(map_type), 0, count, item_off)
        return map_off


def encode_encoded_value(value: EncodedValue) -> bytes:
    """Encode one ``encoded_value`` (header byte + payload)."""
    kind = value.kind
    if kind is EncodedValueType.NULL:
        return bytes([int(kind)])
    if kind is EncodedValueType.BOOLEAN:
        arg = 1 if value.value else 0
        return bytes([(arg << 5) | int(kind)])
    if kind in (
        EncodedValueType.BYTE,
        EncodedValueType.SHORT,
        EncodedValueType.INT,
        EncodedValueType.LONG,
    ):
        payload = _trim_signed(int(value.value))
        return bytes([((len(payload) - 1) << 5) | int(kind)]) + payload
    if kind is EncodedValueType.CHAR:
        payload = _trim_unsigned(int(value.value))
        return bytes([((len(payload) - 1) << 5) | int(kind)]) + payload
    if kind is EncodedValueType.FLOAT:
        payload = struct.pack("<f", float(value.value))
        return bytes([(3 << 5) | int(kind)]) + payload
    if kind is EncodedValueType.DOUBLE:
        payload = struct.pack("<d", float(value.value))
        return bytes([(7 << 5) | int(kind)]) + payload
    if kind in (EncodedValueType.STRING, EncodedValueType.TYPE):
        payload = _trim_unsigned(int(value.value))
        return bytes([((len(payload) - 1) << 5) | int(kind)]) + payload
    raise DexEncodeError(f"cannot encode value kind {kind!r}")


def _trim_signed(value: int) -> bytes:
    for size in (1, 2, 4, 8):
        lo = -(1 << (size * 8 - 1))
        hi = (1 << (size * 8 - 1)) - 1
        if lo <= value <= hi:
            return value.to_bytes(size, "little", signed=True)
    raise DexEncodeError(f"integer {value} exceeds 64 bits")


def _trim_unsigned(value: int) -> bytes:
    for size in (1, 2, 4, 8):
        if value < (1 << (size * 8)):
            return value.to_bytes(size, "little")
    raise DexEncodeError(f"unsigned integer {value} exceeds 64 bits")


def _utf16_length(text: str) -> int:
    return sum(2 if ord(ch) > 0xFFFF else 1 for ch in text)
