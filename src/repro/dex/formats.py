"""Dalvik instruction formats: how operands pack into 16-bit code units.

Each format name follows the Dalvik convention: the first digit is the
number of 16-bit code units, the second the number of registers, and the
trailing letter the kind of extra operand (``x`` none, ``n`` nibble
literal, ``b`` byte literal, ``s`` short literal, ``i``/``l`` 32/64-bit
literal, ``h`` high16 literal, ``t`` branch target, ``c`` constant-pool
index).

The encoder/decoder here work on *operand tuples*; operand meaning is
defined by :mod:`repro.dex.opcodes`.
"""

from __future__ import annotations

from repro.errors import DexEncodeError, DexFormatError

# Format name -> number of 16-bit code units occupied.
FORMAT_UNITS: dict[str, int] = {
    "10x": 1,
    "12x": 1,
    "11n": 1,
    "11x": 1,
    "10t": 1,
    "20t": 2,
    "22x": 2,
    "21t": 2,
    "21s": 2,
    "21h": 2,
    "21c": 2,
    "23x": 2,
    "22b": 2,
    "22t": 2,
    "22s": 2,
    "22c": 2,
    "32x": 3,
    "30t": 3,
    "31i": 3,
    "31t": 3,
    "31c": 3,
    "35c": 3,
    "3rc": 3,
    "51l": 5,
}


def _check_range(name: str, value: int, lo: int, hi: int) -> None:
    if not lo <= value <= hi:
        raise DexEncodeError(f"{name} operand {value} out of range [{lo}, {hi}]")


def _u16(value: int) -> int:
    return value & 0xFFFF


def _s_of(value: int, bits: int) -> int:
    """Interpret ``value`` (unsigned, ``bits`` wide) as signed."""
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def encode(fmt: str, opcode: int, operands: tuple[int, ...]) -> list[int]:
    """Encode one instruction into its code units.

    ``operands`` layout per format (registers first, then literal/target/
    index), matching the order produced by :func:`decode`.
    """
    op = opcode & 0xFF
    if fmt == "10x":
        return [op]
    if fmt == "12x":
        a, b = operands
        _check_range(fmt, a, 0, 15)
        _check_range(fmt, b, 0, 15)
        return [op | (a << 8) | (b << 12)]
    if fmt == "11n":
        a, lit = operands
        _check_range(fmt, a, 0, 15)
        _check_range(fmt, lit, -8, 7)
        return [op | (a << 8) | ((lit & 0xF) << 12)]
    if fmt == "11x":
        (a,) = operands
        _check_range(fmt, a, 0, 255)
        return [op | (a << 8)]
    if fmt == "10t":
        (target,) = operands
        _check_range(fmt, target, -128, 127)
        return [op | ((target & 0xFF) << 8)]
    if fmt == "20t":
        (target,) = operands
        _check_range(fmt, target, -32768, 32767)
        return [op, _u16(target)]
    if fmt == "22x":
        a, b = operands
        _check_range(fmt, a, 0, 255)
        _check_range(fmt, b, 0, 65535)
        return [op | (a << 8), b]
    if fmt in ("21t", "21s"):
        a, lit = operands
        _check_range(fmt, a, 0, 255)
        _check_range(fmt, lit, -32768, 32767)
        return [op | (a << 8), _u16(lit)]
    if fmt == "21h":
        a, lit = operands
        _check_range(fmt, a, 0, 255)
        _check_range(fmt, lit, -32768, 32767)
        return [op | (a << 8), _u16(lit)]
    if fmt == "21c":
        a, index = operands
        _check_range(fmt, a, 0, 255)
        _check_range(fmt, index, 0, 65535)
        return [op | (a << 8), index]
    if fmt == "23x":
        a, b, c = operands
        for reg in (a, b, c):
            _check_range(fmt, reg, 0, 255)
        return [op | (a << 8), b | (c << 8)]
    if fmt == "22b":
        a, b, lit = operands
        _check_range(fmt, a, 0, 255)
        _check_range(fmt, b, 0, 255)
        _check_range(fmt, lit, -128, 127)
        return [op | (a << 8), b | ((lit & 0xFF) << 8)]
    if fmt in ("22t", "22s"):
        a, b, lit = operands
        _check_range(fmt, a, 0, 15)
        _check_range(fmt, b, 0, 15)
        _check_range(fmt, lit, -32768, 32767)
        return [op | (a << 8) | (b << 12), _u16(lit)]
    if fmt == "22c":
        a, b, index = operands
        _check_range(fmt, a, 0, 15)
        _check_range(fmt, b, 0, 15)
        _check_range(fmt, index, 0, 65535)
        return [op | (a << 8) | (b << 12), index]
    if fmt == "32x":
        a, b = operands
        _check_range(fmt, a, 0, 65535)
        _check_range(fmt, b, 0, 65535)
        return [op, a, b]
    if fmt == "30t":
        (target,) = operands
        _check_range(fmt, target, -(1 << 31), (1 << 31) - 1)
        value = target & 0xFFFFFFFF
        return [op, value & 0xFFFF, value >> 16]
    if fmt in ("31i", "31t", "31c"):
        a, lit = operands
        _check_range(fmt, a, 0, 255)
        if fmt == "31c":
            _check_range(fmt, lit, 0, 0xFFFFFFFF)
        else:
            _check_range(fmt, lit, -(1 << 31), (1 << 31) - 1)
        value = lit & 0xFFFFFFFF
        return [op | (a << 8), value & 0xFFFF, value >> 16]
    if fmt == "35c":
        index, regs = operands[0], operands[1:]
        count = len(regs)
        if count > 5:
            raise DexEncodeError(f"35c supports at most 5 registers, got {count}")
        _check_range(fmt, index, 0, 65535)
        for reg in regs:
            _check_range(fmt, reg, 0, 15)
        padded = list(regs) + [0] * (5 - count)
        g = padded[4]
        unit0 = op | (g << 8) | (count << 12)
        unit2 = padded[0] | (padded[1] << 4) | (padded[2] << 8) | (padded[3] << 12)
        return [unit0, index, unit2]
    if fmt == "3rc":
        index, first_reg, count = operands
        _check_range(fmt, index, 0, 65535)
        _check_range(fmt, first_reg, 0, 65535)
        _check_range(fmt, count, 0, 255)
        return [op | (count << 8), index, first_reg]
    if fmt == "51l":
        a, lit = operands
        _check_range(fmt, a, 0, 255)
        _check_range(fmt, lit, -(1 << 63), (1 << 63) - 1)
        value = lit & 0xFFFFFFFFFFFFFFFF
        return [
            op | (a << 8),
            value & 0xFFFF,
            (value >> 16) & 0xFFFF,
            (value >> 32) & 0xFFFF,
            (value >> 48) & 0xFFFF,
        ]
    raise DexEncodeError(f"unknown instruction format {fmt!r}")


# Per-format operand decoders.  Each takes ``(units, pos)`` and returns
# the operand tuple in the same layout :func:`encode` accepts; the opcode
# byte itself is ``units[pos] & 0xFF`` and is not returned.  They are
# selected *once* per opcode at dispatch-table build time (see
# :mod:`repro.dex.instructions`) instead of walking a chain of string
# comparisons on every interpreter step.  Decoders assume the caller has
# checked that ``FORMAT_UNITS`` code units are available at ``pos``.


def _decode_10x(units: list[int], pos: int) -> tuple[int, ...]:
    return ()


def _decode_12x(units: list[int], pos: int) -> tuple[int, ...]:
    u0 = units[pos]
    return ((u0 >> 8) & 0xF, (u0 >> 12) & 0xF)


def _decode_11n(units: list[int], pos: int) -> tuple[int, ...]:
    u0 = units[pos]
    return ((u0 >> 8) & 0xF, _s_of((u0 >> 12) & 0xF, 4))


def _decode_11x(units: list[int], pos: int) -> tuple[int, ...]:
    return ((units[pos] >> 8) & 0xFF,)


def _decode_10t(units: list[int], pos: int) -> tuple[int, ...]:
    return (_s_of((units[pos] >> 8) & 0xFF, 8),)


def _decode_20t(units: list[int], pos: int) -> tuple[int, ...]:
    return (_s_of(units[pos + 1], 16),)


def _decode_22x(units: list[int], pos: int) -> tuple[int, ...]:
    return ((units[pos] >> 8) & 0xFF, units[pos + 1])


def _decode_21t_21s_21h(units: list[int], pos: int) -> tuple[int, ...]:
    return ((units[pos] >> 8) & 0xFF, _s_of(units[pos + 1], 16))


def _decode_21c(units: list[int], pos: int) -> tuple[int, ...]:
    return ((units[pos] >> 8) & 0xFF, units[pos + 1])


def _decode_23x(units: list[int], pos: int) -> tuple[int, ...]:
    u1 = units[pos + 1]
    return ((units[pos] >> 8) & 0xFF, u1 & 0xFF, (u1 >> 8) & 0xFF)


def _decode_22b(units: list[int], pos: int) -> tuple[int, ...]:
    u1 = units[pos + 1]
    return ((units[pos] >> 8) & 0xFF, u1 & 0xFF, _s_of((u1 >> 8) & 0xFF, 8))


def _decode_22t_22s(units: list[int], pos: int) -> tuple[int, ...]:
    u0 = units[pos]
    return ((u0 >> 8) & 0xF, (u0 >> 12) & 0xF, _s_of(units[pos + 1], 16))


def _decode_22c(units: list[int], pos: int) -> tuple[int, ...]:
    u0 = units[pos]
    return ((u0 >> 8) & 0xF, (u0 >> 12) & 0xF, units[pos + 1])


def _decode_32x(units: list[int], pos: int) -> tuple[int, ...]:
    return (units[pos + 1], units[pos + 2])


def _decode_30t(units: list[int], pos: int) -> tuple[int, ...]:
    value = units[pos + 1] | (units[pos + 2] << 16)
    return (_s_of(value, 32),)


def _decode_31i_31t(units: list[int], pos: int) -> tuple[int, ...]:
    value = units[pos + 1] | (units[pos + 2] << 16)
    return ((units[pos] >> 8) & 0xFF, _s_of(value, 32))


def _decode_31c(units: list[int], pos: int) -> tuple[int, ...]:
    value = units[pos + 1] | (units[pos + 2] << 16)
    return ((units[pos] >> 8) & 0xFF, value)


def _decode_35c(units: list[int], pos: int) -> tuple[int, ...]:
    u0 = units[pos]
    count = (u0 >> 12) & 0xF
    g = (u0 >> 8) & 0xF
    index = units[pos + 1]
    u2 = units[pos + 2]
    all_regs = (u2 & 0xF, (u2 >> 4) & 0xF, (u2 >> 8) & 0xF, (u2 >> 12) & 0xF, g)
    return (index, *all_regs[:count])


def _decode_3rc(units: list[int], pos: int) -> tuple[int, ...]:
    count = (units[pos] >> 8) & 0xFF
    return (units[pos + 1], units[pos + 2], count)


def _decode_51l(units: list[int], pos: int) -> tuple[int, ...]:
    value = (
        units[pos + 1]
        | (units[pos + 2] << 16)
        | (units[pos + 3] << 32)
        | (units[pos + 4] << 48)
    )
    return ((units[pos] >> 8) & 0xFF, _s_of(value, 64))


DECODERS = {
    "10x": _decode_10x,
    "12x": _decode_12x,
    "11n": _decode_11n,
    "11x": _decode_11x,
    "10t": _decode_10t,
    "20t": _decode_20t,
    "22x": _decode_22x,
    "21t": _decode_21t_21s_21h,
    "21s": _decode_21t_21s_21h,
    "21h": _decode_21t_21s_21h,
    "21c": _decode_21c,
    "23x": _decode_23x,
    "22b": _decode_22b,
    "22t": _decode_22t_22s,
    "22s": _decode_22t_22s,
    "22c": _decode_22c,
    "32x": _decode_32x,
    "30t": _decode_30t,
    "31i": _decode_31i_31t,
    "31t": _decode_31i_31t,
    "31c": _decode_31c,
    "35c": _decode_35c,
    "3rc": _decode_3rc,
    "51l": _decode_51l,
}


def decoder_for(fmt: str):
    """The unbound operand decoder for ``fmt`` (no bounds checking)."""
    try:
        return DECODERS[fmt]
    except KeyError:
        raise DexFormatError(f"unknown instruction format {fmt!r}") from None


def decode(fmt: str, units: list[int], pos: int) -> tuple[int, ...]:
    """Decode the operands of an instruction at ``pos`` in ``units``.

    Returns the operand tuple in the same layout :func:`encode` accepts.
    The opcode byte itself is ``units[pos] & 0xFF`` and is not returned.
    """
    need = FORMAT_UNITS[fmt]
    if pos + need > len(units):
        raise DexFormatError(
            f"truncated {fmt} instruction at unit {pos} (need {need} units)"
        )
    return decoder_for(fmt)(units, pos)
