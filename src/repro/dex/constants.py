"""Constants of the DEX container format and class access flags."""

from __future__ import annotations

import enum

DEX_MAGIC = b"dex\n035\x00"
ENDIAN_CONSTANT = 0x12345678
HEADER_SIZE = 0x70
NO_INDEX = 0xFFFFFFFF


class AccessFlags(enum.IntFlag):
    """Java/Dalvik access flags for classes, fields and methods."""

    PUBLIC = 0x0001
    PRIVATE = 0x0002
    PROTECTED = 0x0004
    STATIC = 0x0008
    FINAL = 0x0010
    SYNCHRONIZED = 0x0020
    VOLATILE = 0x0040
    BRIDGE = 0x0040
    TRANSIENT = 0x0080
    VARARGS = 0x0080
    NATIVE = 0x0100
    INTERFACE = 0x0200
    ABSTRACT = 0x0400
    STRICT = 0x0800
    SYNTHETIC = 0x1000
    ANNOTATION = 0x2000
    ENUM = 0x4000
    CONSTRUCTOR = 0x10000
    DECLARED_SYNCHRONIZED = 0x20000


class MapItemType(enum.IntEnum):
    """``map_list`` item type codes (subset used by this implementation)."""

    HEADER_ITEM = 0x0000
    STRING_ID_ITEM = 0x0001
    TYPE_ID_ITEM = 0x0002
    PROTO_ID_ITEM = 0x0003
    FIELD_ID_ITEM = 0x0004
    METHOD_ID_ITEM = 0x0005
    CLASS_DEF_ITEM = 0x0006
    MAP_LIST = 0x1000
    TYPE_LIST = 0x1001
    CLASS_DATA_ITEM = 0x2000
    CODE_ITEM = 0x2001
    STRING_DATA_ITEM = 0x2002
    ENCODED_ARRAY_ITEM = 0x2005


class EncodedValueType(enum.IntEnum):
    """Type tags for ``encoded_value`` entries (static field initialisers)."""

    BYTE = 0x00
    SHORT = 0x02
    CHAR = 0x03
    INT = 0x04
    LONG = 0x06
    FLOAT = 0x10
    DOUBLE = 0x11
    STRING = 0x17
    TYPE = 0x18
    NULL = 0x1E
    BOOLEAN = 0x1F


# Primitive type descriptors in the Dalvik descriptor language.
PRIMITIVE_DESCRIPTORS = {
    "V": "void",
    "Z": "boolean",
    "B": "byte",
    "S": "short",
    "C": "char",
    "I": "int",
    "J": "long",
    "F": "float",
    "D": "double",
}

WIDE_DESCRIPTORS = frozenset({"J", "D"})


def is_wide_descriptor(descriptor: str) -> bool:
    """True for types occupying a register pair (long/double)."""
    return descriptor in WIDE_DESCRIPTORS


def is_reference_descriptor(descriptor: str) -> bool:
    """True for class and array types."""
    return descriptor.startswith(("L", "["))


def shorty_of(descriptor: str) -> str:
    """Map a full type descriptor to its shorty character."""
    if descriptor.startswith(("L", "[")):
        return "L"
    return descriptor[0]


def descriptor_to_human(descriptor: str) -> str:
    """Render ``Lcom/test/Main;`` as ``com.test.Main`` (arrays get ``[]``)."""
    depth = 0
    while descriptor.startswith("["):
        depth += 1
        descriptor = descriptor[1:]
    if descriptor in PRIMITIVE_DESCRIPTORS:
        base = PRIMITIVE_DESCRIPTORS[descriptor]
    elif descriptor.startswith("L") and descriptor.endswith(";"):
        base = descriptor[1:-1].replace("/", ".")
    else:
        base = descriptor
    return base + "[]" * depth
