"""Coverage, fuzzing and performance measurement tools."""

from repro.coverage.cfbench import (
    CfBenchScore,
    LaunchTiming,
    measure_launch_time,
    run_cfbench,
)
from repro.coverage.jacoco import CoverageCollector, CoverageReport, CoverageTotals
from repro.coverage.sapienz import EventSequence, FuzzReport, SapienzFuzzer

__all__ = [
    "CfBenchScore",
    "CoverageCollector",
    "CoverageReport",
    "CoverageTotals",
    "EventSequence",
    "FuzzReport",
    "LaunchTiming",
    "SapienzFuzzer",
    "measure_launch_time",
    "run_cfbench",
]
