"""Coverage measurement (the JaCoCo analogue, Table VII).

Tracks executed classes, methods, basic blocks ("lines" — the generated
apps carry no debug line tables, so blocks stand in; see DESIGN.md),
conditional-branch outcomes and instructions, against the static totals
of an APK's DEX files.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import ControlFlowGraph
from repro.dex.structures import DexFile
from repro.runtime.hooks import RuntimeListener


@dataclass
class CoverageTotals:
    classes: int = 0
    methods: int = 0
    lines: int = 0  # basic blocks
    branches: int = 0  # 2 per conditional-branch site
    instructions: int = 0


@dataclass
class CoverageReport:
    totals: CoverageTotals
    classes: float
    methods: float
    lines: float
    branches: float
    instructions: float

    def as_row(self) -> dict:
        return {
            "Class": f"{self.classes:.0%}",
            "Method": f"{self.methods:.0%}",
            "Line": f"{self.lines:.0%}",
            "Branch": f"{self.branches:.0%}",
            "Instruction": f"{self.instructions:.0%}",
        }


class CoverageCollector(RuntimeListener):
    """Accumulates dynamic coverage facts across any number of runs."""

    def __init__(self) -> None:
        self.executed_instructions: set[tuple[str, int]] = set()
        self.executed_methods: set[str] = set()
        self.executed_classes: set[str] = set()
        self.branch_outcomes: set[tuple[str, int, bool]] = set()

    def on_instruction(self, frame, dex_pc: int, ins) -> None:
        method = frame.method
        if method.declaring_class.source_dex is None:
            return
        signature = method.ref.signature
        self.executed_instructions.add((signature, dex_pc))

    def on_method_enter(self, frame) -> None:
        method = frame.method
        if method.declaring_class.source_dex is None:
            return
        self.executed_methods.add(method.ref.signature)
        self.executed_classes.add(method.declaring_class.descriptor)

    def on_branch(self, frame, dex_pc: int, ins, taken: bool) -> None:
        method = frame.method
        if method.declaring_class.source_dex is None:
            return
        self.branch_outcomes.add((method.ref.signature, dex_pc, taken))

    # -- reporting ----------------------------------------------------------

    def report(self, dex_files: list[DexFile] | DexFile) -> CoverageReport:
        if isinstance(dex_files, DexFile):
            dex_files = [dex_files]
        totals = CoverageTotals()
        covered_lines = 0
        covered_instructions = 0
        covered_branches = 0
        for dex in dex_files:
            for class_def in dex.class_defs:
                totals.classes += 1
                for method in class_def.all_methods():
                    totals.methods += 1
                    if method.code is None:
                        continue
                    signature = dex.method_ref(method.method_idx).signature
                    instructions = method.code.instructions()
                    totals.instructions += len(instructions)
                    covered_instructions += sum(
                        1
                        for pc, _ in instructions
                        if (signature, pc) in self.executed_instructions
                    )
                    cfg = ControlFlowGraph(method.code)
                    totals.lines += cfg.block_count()
                    for start_pc, block in cfg.blocks.items():
                        if any(
                            (signature, pc) in self.executed_instructions
                            for pc, _ in block.instructions
                        ):
                            covered_lines += 1
                    for site in cfg.conditional_branch_sites():
                        totals.branches += 2
                        for outcome in (True, False):
                            if (signature, site, outcome) in self.branch_outcomes:
                                covered_branches += 1
        covered_classes = sum(
            1
            for dex in dex_files
            for class_def in dex.class_defs
            if dex.class_descriptor(class_def) in self.executed_classes
        )
        covered_methods = sum(
            1
            for dex in dex_files
            for class_def in dex.class_defs
            for method in class_def.all_methods()
            if dex.method_ref(method.method_idx).signature in self.executed_methods
        )

        def ratio(part: int, whole: int) -> float:
            return part / whole if whole else 0.0

        return CoverageReport(
            totals=totals,
            classes=ratio(covered_classes, totals.classes),
            methods=ratio(covered_methods, totals.methods),
            lines=ratio(covered_lines, totals.lines),
            branches=ratio(covered_branches, totals.branches),
            instructions=ratio(covered_instructions, totals.instructions),
        )
