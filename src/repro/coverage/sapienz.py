"""Sapienz analogue: search-based event-sequence fuzzing.

Generates deterministic populations of event sequences (launch, clicks,
lifecycle churn, random-text intent extras) and replays the best-covering
ones — a laptop-scale stand-in for Sapienz's multi-objective search.
Random extras never hit the generated apps' magic gate strings, which is
precisely why fuzzing alone plateaus around a third of the instructions
(Table VII's first row).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import BudgetExceeded, VmCrash
from repro.runtime.apk import Apk
from repro.runtime.art import AndroidRuntime
from repro.runtime.device import NEXUS_5X, DeviceProfile
from repro.runtime.events import AppDriver
from repro.runtime.exceptions import VmThrow
from repro.runtime.hooks import RuntimeListener
from repro.runtime.values import VmObject, VmString

_EVENT_KINDS = ("click_all", "pause_resume", "relaunch", "stop_start")


@dataclass
class EventSequence:
    """One fuzzing individual: an intent extra plus UI events."""

    extra: str
    events: tuple[str, ...]


@dataclass
class FuzzReport:
    sequences_run: int = 0
    crashes: int = 0
    budget_exhausted: int = 0


class SapienzFuzzer:
    """Drives an APK with generated event sequences."""

    def __init__(
        self,
        population: int = 12,
        sequence_length: int = 4,
        seed: int = 1337,
        run_budget: int = 3_000_000,
        device: DeviceProfile = NEXUS_5X,
    ) -> None:
        self.population = population
        self.sequence_length = sequence_length
        self.seed = seed
        self.run_budget = run_budget
        self.device = device

    def generate_population(self) -> list[EventSequence]:
        rng = random.Random(self.seed)
        out = []
        for _ in range(self.population):
            extra = "".join(
                rng.choice("abcdefghijklmnopqrstuvwxyz0123456789")
                for _ in range(rng.randint(3, 10))
            )
            events = tuple(
                rng.choice(_EVENT_KINDS) for _ in range(self.sequence_length)
            )
            out.append(EventSequence(extra, events))
        return out

    def drive(
        self, apk: Apk, listeners: list[RuntimeListener]
    ) -> FuzzReport:
        """Run the whole population; listeners accumulate across runs."""
        report = FuzzReport()
        for sequence in self.generate_population():
            runtime = AndroidRuntime(self.device, max_steps=self.run_budget)
            for listener in listeners:
                runtime.add_listener(listener)
            driver = AppDriver(runtime, apk)
            try:
                self._run_sequence(runtime, driver, sequence)
            except BudgetExceeded:
                report.budget_exhausted += 1
            except (VmCrash, VmThrow):
                report.crashes += 1
            report.sequences_run += 1
        return report

    def _run_sequence(
        self, runtime: AndroidRuntime, driver: AppDriver, sequence: EventSequence
    ) -> None:
        driver.install()
        launch_report = driver.launch()
        if driver.activity is not None:
            self._attach_intent(runtime, driver.activity, sequence.extra)
            # Re-run onCreate so the extra is observable (monkey restarts).
            driver._call_if_defined(
                driver.activity, "onCreate", ("Landroid/os/Bundle;",),
                [driver.activity, None],
            )
        if not launch_report.launched:
            return
        for event in sequence.events:
            if event == "click_all":
                driver.click_all()
            elif event == "pause_resume":
                driver.pause_resume()
            elif event == "relaunch":
                driver.stop()
                driver.launch()
            elif event == "stop_start":
                driver.stop()
        driver.stop()

    def _attach_intent(
        self, runtime: AndroidRuntime, activity: VmObject, extra: str
    ) -> None:
        intent_klass = runtime.class_linker.lookup("Landroid/content/Intent;")
        intent = VmObject(intent_klass)
        intent.native_data = {"mode": VmString(extra)}
        activity.fields[("Landroid/app/Activity;", "intent")] = intent
