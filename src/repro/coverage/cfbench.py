"""CF-Bench analogue (Figure 6) and launch-time measurement (Table VIII).

*Java score*: throughput of a bytecode-interpreted arithmetic workload
(instructions per second, scaled).  *Native score*: throughput of the
same arithmetic executed inside a native (Python-level) method, which
instrumentation only touches at the call boundary.  *Overall score*: the
weighted mean CF-Bench reports.  The interesting quantity is the ratio
between an unmodified runtime and one with the DexLego collector
attached — Java work slows far more than native work, as in the paper.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass

from repro.dex.builder import DexBuilder
from repro.runtime.apk import Apk, register_native_library
from repro.runtime.art import AndroidRuntime
from repro.runtime.events import AppDriver
from repro.runtime.hooks import RuntimeListener

_BENCH_CLS = "Leu/chainfire/cfbench/Bench;"


def _build_bench_apk(java_iterations: int) -> Apk:
    builder = DexBuilder()
    cls = builder.add_class(_BENCH_CLS, superclass="Landroid/app/Activity;")

    mb = cls.method("javaWork", "I", ("I",), locals_count=4)
    mb.move(0, mb.p(1))
    mb.const(1, java_iterations)
    mb.label("loop")
    mb.raw("add-int/lit8", 0, 0, 13)
    mb.raw("xor-int/lit8", 0, 0, 55)
    mb.raw("mul-int/lit8", 0, 0, 3)
    mb.raw("and-int/lit8", 2, 0, 127)
    mb.raw("or-int/lit8", 0, 2, 1)
    mb.raw("add-int/lit8", 1, 1, -1)
    mb.if_zero("ne", 1, "loop")
    mb.ret(0)
    mb.build()

    cls.method("nativeWork", "I", ("I",), native=True).build()
    builder_apk = Apk(
        "eu.chainfire.cfbench", _BENCH_CLS, [builder.build()],
        native_libraries=["libcfbench"],
    )
    return builder_apk


def _native_work(ctx, this, iterations: int) -> int:
    value = 7
    for _ in range(iterations):
        value = ((value + 13) ^ 55) * 3 & 0xFFFF | 1
    return value


register_native_library(
    "libcfbench", {f"{_BENCH_CLS}->nativeWork(I)I": _native_work}
)


@dataclass
class CfBenchScore:
    java_score: float
    native_score: float

    @property
    def overall_score(self) -> float:
        # CF-Bench's overall blends both workloads; interpreted (Java)
        # throughput carries double weight, as in the original benchmark's
        # score mix where Java MIPS dominate the aggregate.
        return (2 * self.java_score + self.native_score) / 3


def run_cfbench(
    listeners: list[RuntimeListener] | None = None,
    java_iterations: int = 4_000,
    native_iterations: int = 120_000,
    runs: int = 5,
) -> CfBenchScore:
    """One CF-Bench measurement (median of ``runs``)."""
    apk = _build_bench_apk(java_iterations)
    java_rates = []
    native_rates = []
    for _ in range(runs):
        runtime = AndroidRuntime()
        for listener in listeners or []:
            runtime.add_listener(listener)
        runtime.install_apk(apk)
        bench_cls = runtime.class_linker.lookup(_BENCH_CLS)
        runtime.class_linker.ensure_initialized(bench_cls)
        from repro.runtime.values import VmObject

        bench = VmObject(bench_cls)

        start = time.perf_counter()
        runtime.call(f"{_BENCH_CLS}->javaWork(I)I", bench, 7)
        java_elapsed = time.perf_counter() - start
        java_rates.append((java_iterations * 7) / java_elapsed)

        start = time.perf_counter()
        runtime.call(f"{_BENCH_CLS}->nativeWork(I)I", bench, native_iterations)
        native_elapsed = time.perf_counter() - start
        native_rates.append(native_iterations / native_elapsed)
    # Normalisation constants put both scores on the same ~10^4 scale
    # (score units are arbitrary, as in CF-Bench itself; ratios matter).
    return CfBenchScore(
        java_score=statistics.median(java_rates) / 20.0,
        native_score=statistics.median(native_rates) / 400.0,
    )


@dataclass
class LaunchTiming:
    """Launch-time statistics over N launches (Table VIII)."""

    mean_ms: float
    std_ms: float


def measure_launch_time(
    apk: Apk,
    listeners_factory=None,
    launches: int = 30,
) -> LaunchTiming:
    """Wall-clock activity launch time, fresh runtime per launch."""
    times = []
    for _ in range(launches):
        runtime = AndroidRuntime()
        if listeners_factory is not None:
            for listener in listeners_factory():
                runtime.add_listener(listener)
        driver = AppDriver(runtime, apk)
        start = time.perf_counter()
        driver.launch()
        times.append((time.perf_counter() - start) * 1000.0)
    return LaunchTiming(
        mean_ms=statistics.fmean(times),
        std_ms=statistics.pstdev(times),
    )
