"""Deterministic, seeded fault injection at I/O and IPC boundaries.

The service layers promise exactly-once job completion and
byte-identical artifacts; those claims are only worth anything if they
survive the failures a real deployment sees — torn writes, truncated
journal lines, dropped connections, killed workers.  This module is the
single switchboard for *injecting* those failures deterministically so
the chaos suite can replay any schedule from its seed.

Design constraints, in order:

1. **Zero cost unarmed.**  Every injection point is a call to
   :func:`check` (or routes a write through :func:`atomic_write_bytes`
   / :func:`append_line`); with no plan armed those helpers hit a
   single module-global ``is None`` test and return.  The bench-smoke
   regression gate runs with nothing armed.
2. **Deterministic across processes.**  A :class:`FaultPlan` is seeded
   via :meth:`FaultPlan.seeded` with ``random.Random`` string seeding
   (which hashes bytes, not ``hash()``, so ``PYTHONHASHSEED`` is
   irrelevant) and ships to subprocess workers through
   :meth:`FaultPlan.to_dict`.  The same seed always yields the same
   schedule.
3. **Bounded.**  Every :class:`FaultRule` fires a finite number of
   times (``times``), so bounded-retry clients eventually succeed and
   chaos runs converge instead of starving.

Injection points are *named sites* (see :data:`SITE_KINDS`); a rule's
``site`` may be an exact name or an ``fnmatch`` pattern (``"jobstore.*"``).
Faults raise :class:`FaultInjected` — an ``OSError`` subclass, so the
production error handling that deals with real I/O failures handles
injected ones identically; timeout and connection-reset kinds also
subclass ``TimeoutError`` / ``ConnectionResetError`` so transport-level
``isinstance`` checks behave as they would for the real thing.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from fnmatch import fnmatchcase

# -- fault kinds --------------------------------------------------------------

FAULT_OS_ERROR = "os-error"              #: plain OSError from the call
FAULT_TORN_TMP = "torn-tmp"              #: half-written ``.tmp`` left behind
FAULT_TRUNCATED_LINE = "truncated-line"  #: partial JSONL line appended
FAULT_PARTIAL_REPLACE = "partial-replace"  #: ``.tmp`` durable, replace lost
FAULT_HTTP_500 = "http-500"              #: gateway answers 500
FAULT_HTTP_TIMEOUT = "http-timeout"      #: request never answered in time
FAULT_CONN_RESET = "conn-reset"          #: connection dropped mid-request
FAULT_DELAY = "delay"                    #: slow response / slow disk
FAULT_KILL = "kill"                      #: process dies on the spot

ALL_FAULT_KINDS = (
    FAULT_OS_ERROR,
    FAULT_TORN_TMP,
    FAULT_TRUNCATED_LINE,
    FAULT_PARTIAL_REPLACE,
    FAULT_HTTP_500,
    FAULT_HTTP_TIMEOUT,
    FAULT_CONN_RESET,
    FAULT_DELAY,
    FAULT_KILL,
)

#: Exit code used by :data:`FAULT_KILL` so a supervisor (or the chaos
#: suite) can tell an injected death from a genuine crash.
KILL_EXIT_CODE = 86

# -- injection sites ----------------------------------------------------------

#: Every named injection point, mapped to the fault kinds that make
#: sense there.  This is both documentation and the pool
#: :meth:`FaultPlan.seeded` draws from.  Atomic-write sites understand
#: the torn-tmp / partial-replace kinds; append sites understand
#: truncated-line; network sites understand the HTTP kinds; every site
#: accepts plain os-error and delay.
SITE_KINDS = {
    # job store (queue records, event journal, claim tokens)
    "jobstore.record.write": (FAULT_OS_ERROR, FAULT_TORN_TMP,
                              FAULT_PARTIAL_REPLACE, FAULT_DELAY),
    "jobstore.events.append": (FAULT_OS_ERROR, FAULT_TRUNCATED_LINE,
                               FAULT_DELAY),
    "jobstore.claim.token": (FAULT_OS_ERROR, FAULT_DELAY),
    # artifact store
    "artifacts.put": (FAULT_OS_ERROR, FAULT_TORN_TMP,
                      FAULT_PARTIAL_REPLACE, FAULT_DELAY),
    "artifacts.get": (FAULT_OS_ERROR, FAULT_DELAY),
    # corpus index / cluster store segments
    "index.segment.append": (FAULT_OS_ERROR, FAULT_TRUNCATED_LINE,
                             FAULT_DELAY),
    "index.body.write": (FAULT_OS_ERROR, FAULT_TORN_TMP,
                         FAULT_PARTIAL_REPLACE, FAULT_DELAY),
    "index.compact": (FAULT_OS_ERROR, FAULT_TORN_TMP,
                      FAULT_PARTIAL_REPLACE, FAULT_DELAY),
    "cluster.segment.append": (FAULT_OS_ERROR, FAULT_TRUNCATED_LINE,
                               FAULT_DELAY),
    "cluster.families.write": (FAULT_OS_ERROR, FAULT_TORN_TMP,
                               FAULT_PARTIAL_REPLACE, FAULT_DELAY),
    "cluster.compact": (FAULT_OS_ERROR, FAULT_TORN_TMP,
                        FAULT_PARTIAL_REPLACE, FAULT_DELAY),
    # reveal cache (disk backend)
    "cache.write": (FAULT_OS_ERROR, FAULT_TORN_TMP,
                    FAULT_PARTIAL_REPLACE, FAULT_DELAY),
    "cache.read": (FAULT_OS_ERROR, FAULT_DELAY),
    # collection archives
    "archive.save": (FAULT_OS_ERROR, FAULT_TORN_TMP, FAULT_DELAY),
    "archive.load": (FAULT_OS_ERROR, FAULT_DELAY),
    # HTTP boundary
    "gateway.request": (FAULT_HTTP_500, FAULT_CONN_RESET, FAULT_DELAY),
    "client.request": (FAULT_OS_ERROR, FAULT_HTTP_TIMEOUT,
                       FAULT_CONN_RESET, FAULT_DELAY),
    # worker loop
    "worker.claim": (FAULT_OS_ERROR, FAULT_DELAY, FAULT_KILL),
    "worker.heartbeat": (FAULT_OS_ERROR, FAULT_DELAY, FAULT_KILL),
    "worker.complete": (FAULT_OS_ERROR, FAULT_DELAY, FAULT_KILL),
}

KNOWN_SITES = tuple(sorted(SITE_KINDS))

#: Site groups the chaos suite composes schedules from.
STORE_SITES = tuple(s for s in KNOWN_SITES
                    if s.split(".", 1)[0] in
                    ("jobstore", "artifacts", "index", "cluster",
                     "cache", "archive"))
NETWORK_SITES = ("gateway.request", "client.request")
WORKER_SITES = ("worker.claim", "worker.heartbeat", "worker.complete")


# -- exceptions ---------------------------------------------------------------

class FaultInjected(OSError):
    """An injected fault.  Subclasses ``OSError`` deliberately: code
    hardened against real I/O failures must not need special cases for
    injected ones."""

    def __init__(self, site: str, kind: str) -> None:
        super().__init__(f"injected fault: {kind} at {site}")
        self.site = site
        self.kind = kind


class InjectedTimeout(FaultInjected, TimeoutError):
    """Injected request timeout (``isinstance(exc, TimeoutError)``)."""

    def __init__(self, site: str) -> None:
        FaultInjected.__init__(self, site, FAULT_HTTP_TIMEOUT)


class InjectedConnectionReset(FaultInjected, ConnectionResetError):
    """Injected connection reset (``isinstance(exc, ConnectionResetError)``)."""

    def __init__(self, site: str) -> None:
        FaultInjected.__init__(self, site, FAULT_CONN_RESET)


# -- rules and plans ----------------------------------------------------------

@dataclass
class FaultRule:
    """One scheduled fault: at matched hits ``after .. after+times-1``
    of ``site`` (exact name or fnmatch pattern), inject ``kind``."""

    site: str
    kind: str
    times: int = 1
    after: int = 0
    delay_s: float = 0.02

    def matches(self, site: str) -> bool:
        return self.site == site or fnmatchcase(site, self.site)

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "times": self.times,
            "after": self.after,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        return cls(
            site=data["site"],
            kind=data["kind"],
            times=int(data.get("times", 1)),
            after=int(data.get("after", 0)),
            delay_s=float(data.get("delay_s", 0.02)),
        )


class FaultPlan:
    """A deterministic schedule of faults.

    Each rule keeps its own matched-hit counter: the *n*-th time a site
    matching the rule is reached, the rule fires iff
    ``after <= n < after + times``.  Counters advance for every
    matching rule even when another rule fires first, so two rules on
    one site trigger at independent, predictable hits.  Thread-safe;
    ship to subprocess workers via :meth:`to_dict`.
    """

    def __init__(self, rules, seed: int = 0, name: str = "") -> None:
        self.rules = list(rules)
        self.seed = seed
        self.name = name
        self._lock = threading.Lock()
        self._hits = [0] * len(self.rules)
        #: Log of fired faults (site, kind, matched-hit index), for
        #: reproducing and reporting a chaos run.
        self.fired: list[dict] = []

    @classmethod
    def seeded(cls, seed: int, sites=None, faults: int = 4,
               max_skip: int = 2, name: str = "") -> "FaultPlan":
        """Generate a schedule from ``seed``: ``faults`` rules drawn
        from ``sites`` (default: every known site), each firing once
        after 0..``max_skip`` clean hits, with a kind valid for its
        site.  String seeding keeps this identical across processes
        regardless of ``PYTHONHASHSEED``."""
        rng = random.Random(f"repro.faults:{seed}")
        pool = tuple(sites) if sites else KNOWN_SITES
        rules = []
        for _ in range(max(0, faults)):
            site = rng.choice(pool)
            kinds = SITE_KINDS.get(site, (FAULT_OS_ERROR, FAULT_DELAY))
            rules.append(FaultRule(
                site=site,
                kind=rng.choice(kinds),
                times=1,
                after=rng.randrange(max_skip + 1),
            ))
        return cls(rules, seed=seed, name=name or f"seed-{seed}")

    def decide(self, site: str) -> FaultRule | None:
        """Advance every matching rule's counter; return the first rule
        whose window covers this hit (or ``None``)."""
        fired = None
        with self._lock:
            for i, rule in enumerate(self.rules):
                if not rule.matches(site):
                    continue
                hit = self._hits[i]
                self._hits[i] = hit + 1
                if fired is None and rule.after <= hit < rule.after + rule.times:
                    fired = rule
                    self.fired.append(
                        {"site": site, "kind": rule.kind, "hit": hit})
        return fired

    def exhausted(self) -> bool:
        """True once every rule's firing window has passed."""
        with self._lock:
            return all(hits >= rule.after + rule.times
                       for rule, hits in zip(self.rules, self._hits))

    def describe(self) -> str:
        """One line per rule — printed by the chaos suite on failure so
        any run reproduces from its seed."""
        head = f"FaultPlan {self.name!r} seed={self.seed}"
        lines = [f"  {r.site} -> {r.kind} (after={r.after}, times={r.times})"
                 for r in self.rules]
        return "\n".join([head] + lines)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "name": self.name,
            "rules": [r.to_dict() for r in self.rules],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            [FaultRule.from_dict(r) for r in data.get("rules", [])],
            seed=int(data.get("seed", 0)),
            name=data.get("name", ""),
        )


# -- arming and triggering ----------------------------------------------------

_armed: FaultPlan | None = None


def arm(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` process-wide.  Injection points are no-ops until
    this is called."""
    global _armed
    _armed = plan
    return plan


def disarm() -> FaultPlan | None:
    """Disarm; returns the plan that was armed (with its fired log)."""
    global _armed
    plan = _armed
    _armed = None
    return plan


def active() -> FaultPlan | None:
    return _armed


@contextmanager
def armed(plan: FaultPlan):
    """``with faults.armed(plan): ...`` — arm for the block, always
    disarm after."""
    arm(plan)
    try:
        yield plan
    finally:
        disarm()


def _trigger(site: str, rule: FaultRule) -> None:
    kind = rule.kind
    if kind == FAULT_DELAY:
        time.sleep(rule.delay_s)
        return
    if kind == FAULT_KILL:
        os._exit(KILL_EXIT_CODE)
    if kind == FAULT_HTTP_TIMEOUT:
        raise InjectedTimeout(site)
    if kind == FAULT_CONN_RESET:
        raise InjectedConnectionReset(site)
    raise FaultInjected(site, kind)


def check(site: str) -> None:
    """The generic injection point.  No plan armed: one ``is None``
    test and out."""
    plan = _armed
    if plan is None:
        return
    rule = plan.decide(site)
    if rule is not None:
        _trigger(site, rule)


def decide(site: str) -> FaultRule | None:
    """Consult the armed plan without triggering — for boundaries (the
    HTTP gateway, the client transport) that must translate a fault
    kind into their own wire behaviour."""
    plan = _armed
    if plan is None:
        return None
    return plan.decide(site)


# -- faultable I/O helpers ----------------------------------------------------
#
# These unify the ``.tmp`` + ``os.replace`` pattern used across the
# stores and mechanise the write-shaped fault kinds: torn-tmp stops
# half-way through the temp file, partial-replace persists the temp
# file but never publishes it.  Both leave exactly the debris a real
# crash at that instant would.

def atomic_write_bytes(path, data: bytes, site: str = "",
                       tmp=None) -> None:
    """Write ``data`` to ``path`` atomically (``tmp`` + ``os.replace``),
    subject to any armed fault at ``site``."""
    path = os.fspath(path)
    tmp = os.fspath(tmp) if tmp is not None else path + ".tmp"
    rule = _decide(site)
    if rule is not None and rule.kind == FAULT_TORN_TMP:
        with open(tmp, "wb") as handle:
            handle.write(data[: max(1, len(data) // 2)])
        raise FaultInjected(site, FAULT_TORN_TMP)
    if rule is not None and rule.kind != FAULT_PARTIAL_REPLACE:
        _trigger(site, rule)
    with open(tmp, "wb") as handle:
        handle.write(data)
    if rule is not None and rule.kind == FAULT_PARTIAL_REPLACE:
        raise FaultInjected(site, FAULT_PARTIAL_REPLACE)
    os.replace(tmp, path)


def atomic_write_text(path, text: str, site: str = "", tmp=None,
                      encoding: str = "utf-8") -> None:
    atomic_write_bytes(path, text.encode(encoding), site=site, tmp=tmp)


def atomic_write_json(path, payload, site: str = "", tmp=None,
                      **dumps_kwargs) -> None:
    atomic_write_text(path, json.dumps(payload, **dumps_kwargs),
                      site=site, tmp=tmp)


def append_line(handle, line: str, site: str = "") -> None:
    """Append one line to an open text handle, subject to the
    truncated-line fault (which flushes a torn prefix, exactly what a
    crash mid-append leaves)."""
    rule = _decide(site)
    if rule is not None and rule.kind == FAULT_TRUNCATED_LINE:
        handle.write(line[: max(1, len(line) // 2)])
        handle.flush()
        raise FaultInjected(site, FAULT_TRUNCATED_LINE)
    if rule is not None:
        _trigger(site, rule)
    handle.write(line)


def _decide(site: str) -> FaultRule | None:
    plan = _armed
    if plan is None or not site:
        return None
    return plan.decide(site)
