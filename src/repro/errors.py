"""Exception hierarchy for the DexLego reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch the whole family with one clause.  Subsystems raise the
narrower classes below; nothing in the package raises bare ``Exception``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DexError(ReproError):
    """Base class for DEX container and bytecode errors."""


class DexFormatError(DexError):
    """A binary DEX file is malformed (bad magic, checksum, offsets...)."""


class DexEncodeError(DexError):
    """A DEX model cannot be serialised (operand out of range, too large)."""


class AssemblyError(DexError):
    """Smali-like assembly text could not be parsed or resolved."""


class VerificationError(DexError):
    """A DEX file failed structural verification."""


class RuntimeVmError(ReproError):
    """Base class for errors inside the simulated Android Runtime."""


class ClassLinkError(RuntimeVmError):
    """A class, method or field could not be resolved or linked."""


class VmCrash(RuntimeVmError):
    """The simulated process died (unhandled VM exception or native crash)."""

    def __init__(self, message: str, vm_exception: object | None = None) -> None:
        super().__init__(message)
        self.vm_exception = vm_exception


class NativeCrash(VmCrash):
    """A native (JNI-analogue) method aborted the process."""


class BudgetExceeded(RuntimeVmError):
    """An execution budget (instruction count) was exhausted.

    Used to bound runaway loops during fuzzing and force execution; it is
    the analogue of the paper's wall-clock execution budget.
    """


class PackerError(ReproError):
    """A packing service failed or is unavailable."""


class PackerUnavailable(PackerError):
    """The packing service cannot be used (offline / rejected / silent)."""

    def __init__(self, service: str, reason: str) -> None:
        super().__init__(f"{service}: {reason}")
        self.service = service
        self.reason = reason


class AnalysisError(ReproError):
    """A static or dynamic analysis tool failed on an input."""


class CollectionError(ReproError):
    """The JIT collection layer hit an inconsistent state."""


class ReassemblyError(ReproError):
    """The offline reassembler could not produce a valid DEX."""


class ForceExecutionError(ReproError):
    """The force execution engine could not compute or follow a path."""


class StageError(ReproError):
    """A pipeline stage failed; names the stage and keeps the cause.

    Raised by the staged pipeline (:mod:`repro.core.stages`) so callers
    learn *where* a reveal died — ``collect``, ``reassemble``,
    ``verify`` or ``repack`` — without parsing messages.  ``cause`` is
    the original exception (e.g. a :class:`VerificationError` from the
    verify stage), also chained as ``__cause__``.
    """

    def __init__(self, stage: str, cause: BaseException) -> None:
        super().__init__(
            f"{stage} stage failed: {type(cause).__name__}: {cause}"
        )
        self.stage = stage
        self.cause = cause
